"""Arithmetic width-boundary edge cases, agreed across every executor.

Java arithmetic has a handful of corners where naive Python arithmetic
silently diverges: ``Integer.MIN_VALUE / -1`` wraps instead of raising,
``MIN_VALUE % -1`` is zero, shift counts are masked to the type width,
and float-to-int narrowing saturates.  These tests pin the ``jmath``
helpers on those corners and then drive whole programs built from the
same constants through the differential oracle, so the SafeTSA
interpreter, the optimiser's constant folder, the JIT and the bytecode
interpreter are all forced to agree bit-for-bit.
"""

from hypothesis import given, settings, strategies as st

from repro import jmath
from repro.fuzz.oracle import check_program

INT_EDGES = (jmath.INT_MIN, jmath.INT_MIN + 1, -2, -1, 0, 1, 2,
             jmath.INT_MAX - 1, jmath.INT_MAX)


class TestJavaWrapCorners:
    def test_int_min_div_minus_one_wraps(self):
        assert jmath.idiv(jmath.INT_MIN, -1) == jmath.INT_MIN

    def test_int_min_rem_minus_one_is_zero(self):
        assert jmath.irem(jmath.INT_MIN, -1) == 0

    def test_long_min_div_minus_one_wraps(self):
        assert jmath.idiv(jmath.LONG_MIN, -1, 64) == jmath.LONG_MIN

    def test_long_min_rem_minus_one_is_zero(self):
        assert jmath.irem(jmath.LONG_MIN, -1, 64) == 0

    def test_shift_boundary_counts(self):
        # counts 32/64 mask to zero; 33/65 mask to one
        assert jmath.ishl(5, 32, 32) == 5
        assert jmath.ishl(5, 33, 32) == 10
        assert jmath.ishr(-8, 32, 32) == -8
        assert jmath.iushr(-1, 32, 32) == -1
        assert jmath.ishl(5, 64, 64) == 5
        assert jmath.ishl(5, 65, 64) == 10
        assert jmath.iushr(-1, 64, 64) == -1

    def test_negative_shift_count_masks(self):
        # -1 & 31 == 31: Java treats negative counts as masked too
        assert jmath.ishl(1, -1, 32) == jmath.ishl(1, 31, 32)
        assert jmath.iushr(-1, -1, 32) == 1

    def test_min_times_minus_one_wraps(self):
        assert jmath.i32(jmath.INT_MIN * -1) == jmath.INT_MIN
        assert jmath.i64(jmath.LONG_MIN * -1) == jmath.LONG_MIN

    def test_d2i_boundaries(self):
        assert jmath.d2i(2147483647.0) == jmath.INT_MAX
        assert jmath.d2i(2147483648.0) == jmath.INT_MAX
        assert jmath.d2i(-2147483648.0) == jmath.INT_MIN
        assert jmath.d2i(-2147483649.0) == jmath.INT_MIN

    def test_d2l_boundaries(self):
        assert jmath.d2l(9.3e18) == jmath.LONG_MAX
        assert jmath.d2l(-9.3e18) == jmath.LONG_MIN


def agreed(source: str) -> None:
    """The whole agreement matrix must pass on ``source``."""
    result = check_program(source)
    assert not result.invalid, "program failed the front end"
    assert result.ok, str(result.divergence)


def edge_program(body: str) -> str:
    return f"""\
class Main {{
    static void main() {{
{body}
    }}
}}
"""


class TestExecutorAgreement:
    """Edge-constant programs through the full differential oracle.

    Constant operands make the optimiser fold at compile time while the
    interpreters evaluate at run time -- any executor that forgot Java
    wrap semantics prints a different number and the oracle reports the
    divergence.
    """

    def test_int_min_div_minus_one(self):
        agreed(edge_program("""\
        int m = -2147483648;
        int d = -1;
        System.out.println(m / d);
        System.out.println(m % d);
        System.out.println(m * d);
        System.out.println(-m);
"""))

    def test_overflow_wraps_in_all_executors(self):
        agreed(edge_program("""\
        int x = 2147483647;
        System.out.println(x + 1);
        System.out.println(x * 2);
        System.out.println(x + x);
"""))

    def test_shift_count_masking(self):
        agreed(edge_program("""\
        int one = 1;
        System.out.println(one << 31);
        System.out.println(one << 32);
        System.out.println(one << 33);
        System.out.println((0 - 8) >> 32);
        System.out.println((0 - 1) >>> 32);
        System.out.println((0 - 1) >>> 28);
"""))

    def test_division_truncates_toward_zero(self):
        agreed(edge_program("""\
        System.out.println((0 - 7) / 2);
        System.out.println((0 - 7) % 2);
        System.out.println(7 / (0 - 2));
        System.out.println(7 % (0 - 2));
"""))

    def test_division_by_zero_is_agreed_exception(self):
        agreed(edge_program("""\
        int z = 0;
        try { System.out.println(5 / z); }
        catch (ArithmeticException e) { System.out.println("caught"); }
        System.out.println(5 % (z | 1));
"""))

    def test_edge_constants_in_loops(self):
        # the loop tier must not change wrap semantics when an edge
        # constant flows round a loop-carried phi
        agreed(edge_program("""\
        int x = 2147483645;
        int i = 0;
        while (i < 6) { x = x + 1; i = i + 1; }
        System.out.println(x);
        int y = -2147483648;
        for (int j = 0; j < 3; j++) { y = y / (0 - 1); }
        System.out.println(y);
"""))


@settings(max_examples=25, deadline=None)
@given(a=st.sampled_from(INT_EDGES), b=st.sampled_from(INT_EDGES),
       shift=st.integers(min_value=-2, max_value=66))
def test_arith_agreement_on_edge_pairs(a, b, shift):
    """For edge-valued (a, b): every executor prints the same sums,
    products, shifts, and guarded quotients."""
    agreed(edge_program(f"""\
        int a = {'-2147483648' if a == jmath.INT_MIN else a};
        int b = {'-2147483648' if b == jmath.INT_MIN else b};
        System.out.println(a + b);
        System.out.println(a - b);
        System.out.println(a * b);
        System.out.println(a << {shift & 31});
        System.out.println(a >> {shift & 31});
        System.out.println(a >>> {shift & 31});
        System.out.println(a / (b | 1));
        System.out.println(a % (b | 1));
"""))
