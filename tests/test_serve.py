"""End-to-end conformance suite for the distribution service.

Four layers of gate, mirroring the serving stack:

* **unit** -- the content-addressed store (damaged shards read as
  absent), the hash-chained publish log (canonical JSON, dense
  sequence, signatures), and the quota meters under a manual clock;
* **protocol** -- every endpoint over real HTTP through the shared
  ``serve_client`` fixture, including the structured ``SERVE-*`` error
  envelopes and the coalescing bit-identity contract;
* **adversarial** -- a server whose publish log was edited after the
  fact (payload edit, ``prev`` splice, foreign signature) must be
  caught by the *auditing client*, not trusted;
* **reachability** -- every registered ``SERVE-*`` and ``DEC-*`` code
  is raised by at least one pinned fixture in this repository, and no
  raise site in ``src/`` uses an unregistered code.  Codes a hostile
  byte stream cannot reach (the bounded-alphabet reference encoding
  makes an out-of-range operand *unencodable* -- the paper's
  referential security by construction; a seeded search of 200k+
  mutations produced zero hits) are pinned as wrapper/contract tests
  against the exact internal surface that would raise them.

The full-corpus campaign is marked ``slow``; ``pytest -m "not slow"``
keeps the unit/protocol lanes fast.
"""

from __future__ import annotations

import base64
import json
import re
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest
from conftest import SERVE_TEST_KEY

from repro.analysis.diagnostics import STABLE_CODES
from repro.serve import (
    ManualClock,
    ModuleStore,
    PublishLog,
    QuotaManager,
    ServeClient,
    ServeError,
    ServeServer,
    ServeService,
    TenantLimits,
    audit_chain,
    canonical_json,
)
from repro.serve.log import entry_hash, sign_manifest
from repro.serve.store import is_digest, wire_digest

REPO = Path(__file__).resolve().parent.parent
ATTACKS_DIR = REPO / "tests" / "golden" / "attacks"

SOURCE = "class Main { static int main() { return 6 * 7; } }"
SOURCE_PRINT = ('class Main { static int main() '
                '{ System.out.println("hi"); return 1; } }')


def _wire(source: str = SOURCE, optimize: bool = False) -> bytes:
    from repro.encode.serializer import encode_module
    from repro.pipeline import compile_to_module
    return encode_module(compile_to_module(source, optimize=optimize))


# ======================================================================
# unit: the content-addressed store


class TestModuleStore:
    def test_put_is_idempotent_and_content_addressed(self):
        store = ModuleStore()
        wire = _wire()
        digest = store.put(wire)
        assert digest == wire_digest(wire) and is_digest(digest)
        assert store.put(wire) == digest
        assert len(store) == 1
        assert store.get(digest) == wire

    def test_absent_digest_is_none(self):
        assert ModuleStore().get("ab" * 32) is None

    def test_disk_shards_round_trip(self, tmp_path):
        store = ModuleStore(str(tmp_path))
        digest = store.put(_wire())
        shard = tmp_path / digest[:2] / f"{digest}.stsa"
        assert shard.is_file()
        # a fresh store over the same root serves the shard
        fresh = ModuleStore(str(tmp_path))
        assert fresh.get(digest) == _wire()

    def test_damaged_shard_is_absent_never_wrong(self, tmp_path):
        store = ModuleStore(str(tmp_path))
        digest = store.put(_wire())
        shard = tmp_path / digest[:2] / f"{digest}.stsa"
        shard.write_bytes(b"rotted" + shard.read_bytes())
        fresh = ModuleStore(str(tmp_path))
        assert fresh.get(digest) is None  # absent, not wrong


# ======================================================================
# unit: the hash-chained publish log


def _log_with(count: int, key: bytes = SERVE_TEST_KEY) -> PublishLog:
    log = PublishLog(key, clock=ManualClock())
    for index in range(count):
        log.append(name=f"m{index}", tenant="t", digest="ab" * 32,
                   format_version="stsa1", size=10 + index)
    return log


class TestPublishLog:
    def test_canonical_json_is_stable(self):
        assert canonical_json({"b": 1, "a": [2, {"z": 0, "y": 1}]}) \
            == b'{"a":[2,{"y":1,"z":0}],"b":1}'

    def test_chain_links_and_audits(self):
        log = _log_with(3)
        head = audit_chain(log.entries, key=SERVE_TEST_KEY,
                           head=log.head)
        assert head == log.head == entry_hash(log.entries[-1])
        assert log.audit() == head
        assert [entry["seq"] for entry in log.entries] == [0, 1, 2]

    def test_payload_edit_breaks_the_chain(self):
        log = _log_with(3)
        log.entries[1]["manifest"]["name"] = "evil"
        with pytest.raises(ServeError) as caught:
            audit_chain(log.entries, head=log.head)
        assert caught.value.code == "SERVE-CHAIN"

    def test_prev_splice_breaks_the_chain(self):
        log = _log_with(3)
        log.entries[2]["prev"] = entry_hash(log.entries[0])
        with pytest.raises(ServeError) as caught:
            audit_chain(log.entries)
        assert caught.value.code == "SERVE-CHAIN"

    def test_foreign_signature_is_rejected_with_key(self):
        log = _log_with(2)
        log.entries[1]["signature"] = sign_manifest(
            b"impostor", log.entries[1]["manifest"])
        # without the key the chain itself no longer verifies (the
        # signature is covered by the entry hash)
        with pytest.raises(ServeError):
            audit_chain(log.entries, head=log.head)
        # with the key, the signature check names the precise failure
        with pytest.raises(ServeError) as caught:
            audit_chain(log.entries, key=SERVE_TEST_KEY)
        assert caught.value.code == "SERVE-SIG"

    def test_jsonl_persistence_replays_the_chain(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = PublishLog(SERVE_TEST_KEY, clock=ManualClock(),
                         path=str(path))
        for index in range(2):
            log.append(name=f"m{index}", tenant="t", digest="cd" * 32,
                       format_version="stsa2", size=5)
        resumed = PublishLog(SERVE_TEST_KEY, clock=ManualClock(),
                             path=str(path))
        assert resumed.head == log.head and len(resumed) == 2
        # a tampered line is caught at construction, before serving
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"m0"', '"mX"')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ServeError) as caught:
            PublishLog(SERVE_TEST_KEY, clock=ManualClock(),
                       path=str(path))
        # the replay audits with the key, so the edited manifest is
        # caught by its signature before the next entry's prev link
        assert caught.value.code in ("SERVE-SIG", "SERVE-CHAIN")


# ======================================================================
# unit: quotas under a manual clock


class TestQuotas:
    def test_rate_window_fills_and_refills(self):
        clock = ManualClock()
        quotas = QuotaManager(
            TenantLimits(requests_per_window=2, window_seconds=60.0),
            clock=clock)
        quotas.check_rate("t")
        quotas.check_rate("t")
        with pytest.raises(ServeError) as caught:
            quotas.check_rate("t")
        assert caught.value.code == "SERVE-RATE"
        quotas.check_rate("other")  # windows are per tenant
        clock.advance(61.0)
        quotas.check_rate("t")  # the window rolled over

    def test_stored_bytes_meter(self):
        quotas = QuotaManager(TenantLimits(stored_bytes=100))
        quotas.charge_stored("t", 80)
        with pytest.raises(ServeError) as caught:
            quotas.charge_stored("t", 30)
        assert caught.value.code == "SERVE-QUOTA-BYTES"
        assert quotas.usage("t")["stored_bytes"] == 80  # not charged

    def test_compile_budget(self):
        quotas = QuotaManager(TenantLimits(compile_seconds=1.0))
        quotas.check_compile("t")
        quotas.charge_compile("t", 1.5)
        with pytest.raises(ServeError) as caught:
            quotas.check_compile("t")
        assert caught.value.code == "SERVE-QUOTA-COMPILE"


# ======================================================================
# protocol: endpoints over real HTTP


class TestEndpoints:
    def test_lifecycle_compile_publish_fetch_verify_run(
            self, serve_client):
        compiled = serve_client.compile(SOURCE, return_bytes=True)
        published = serve_client.publish("answer", source=SOURCE)
        assert published["digest"] == compiled["digest"]
        wire = serve_client.fetch(published["digest"])
        assert wire == compiled["wire"]
        verified = serve_client.verify(digest=published["digest"])
        assert verified["ok"] and verified["classes"] == 1
        result = serve_client.run(digest=published["digest"])
        assert result["value"] == 42 and result["exception"] is None

    def test_manifest_is_signed_and_auditable(self, serve_client):
        serve_client.publish("a", source=SOURCE)
        serve_client.publish("b", source=SOURCE_PRINT)
        head = serve_client.audit(key=SERVE_TEST_KEY)
        assert head == serve_client.healthz()["log_head"]
        entries = serve_client.log_entries()["entries"]
        assert [e["manifest"]["name"] for e in entries] == ["a", "b"]
        assert set(entries[0]["manifest"]) == {
            "digest", "format", "name", "published_at", "size",
            "tenant"}

    def test_v2_batch_shares_a_dictionary(self, serve_client):
        modules = [{"name": f"m{i}",
                    "source": SOURCE.replace("6 * 7", str(i))}
                   for i in range(4)]
        batch = serve_client.publish_batch(modules, wire_v2=True)
        assert len(batch["published"]) == 4
        for entry in batch["published"]:
            assert entry["entry"]["manifest"]["format"] == "stsa2"
            # each envelope round-trips through fetch + verify + run
            serve_client.fetch(entry["digest"])
            assert serve_client.verify(digest=entry["digest"])["ok"]
        values = [serve_client.run(digest=e["digest"])["value"]
                  for e in batch["published"]]
        assert values == [0, 1, 2, 3]
        for digest in batch["dictionaries"]:
            assert serve_client.fetch_dictionary(digest)

    def test_rejection_carries_the_decoder_code(self, serve_client):
        with pytest.raises(ServeError) as caught:
            serve_client.verify(wire=b"\x00" * 40)
        assert caught.value.code == "SERVE-REJECTED"
        assert caught.value.detail["code"] in STABLE_CODES

    def test_unknown_digest_and_endpoint(self, serve_client):
        with pytest.raises(ServeError) as caught:
            serve_client.fetch("ab" * 32)
        assert caught.value.code == "SERVE-NOT-FOUND"
        with pytest.raises(ServeError) as caught:
            serve_client.request("GET", "/v1/nope")
        assert caught.value.code == "SERVE-ENDPOINT"

    def test_stats_count_the_traffic(self, serve_client):
        serve_client.publish("m", source=SOURCE)
        serve_client.verify(digest=wire_digest(_wire()))
        stats = serve_client.stats()
        assert stats["counters"]["publishes"] == 1
        assert stats["counters"]["verifies"] == 1
        assert stats["log"]["entries"] == 1
        assert stats["store"]["entries"] == 1


class TestCoalescing:
    def test_identical_concurrent_compiles_are_bit_identical(
            self, serve_stack):
        service, server, _clock = serve_stack
        clients = 6
        barrier = threading.Barrier(clients)
        wires: list = [None] * clients

        def worker(index: int) -> None:
            client = ServeClient("127.0.0.1", server.port,
                                 tenant="coalesce")
            barrier.wait()
            result = client.compile(SOURCE_PRINT, optimize=True,
                                    return_bytes=True)
            wires[index] = result["wire"]

        with ThreadPoolExecutor(max_workers=clients) as pool:
            for _ in pool.map(worker, range(clients)):
                pass
        assert all(wire is not None for wire in wires)
        assert len({bytes(wire) for wire in wires}) == 1
        # one barrier fan-in costs at most two underlying compiles
        # (two only when a request lands after the winner settled)
        assert 1 <= service.counters["compiles_performed"] <= 2
        coalesced = service.counters["compiles_coalesced"]
        cache_hits = service.compile_cache.hits
        assert coalesced + cache_hits >= clients - 2

    def test_settled_compiles_hit_the_compilation_cache(
            self, serve_client, serve_stack):
        service, _server, _clock = serve_stack
        serve_client.compile(SOURCE)
        performed = service.counters["compiles_performed"]
        serve_client.compile(SOURCE)
        assert service.counters["compiles_performed"] == performed


# ======================================================================
# adversarial: the auditing client vs a lying server


class TestTamperDetection:
    def _published(self, serve_client, count: int = 3) -> list:
        for index in range(count):
            serve_client.publish(
                f"m{index}",
                source=SOURCE.replace("6 * 7", str(index + 10)))
        return serve_client.log_entries()["entries"]

    def test_honest_log_audits_clean(self, serve_client):
        self._published(serve_client)
        assert serve_client.audit(key=SERVE_TEST_KEY)

    def test_edited_payload_is_detected(self, serve_stack,
                                        serve_client):
        service, _server, _clock = serve_stack
        self._published(serve_client)
        pinned = serve_client.audit()
        # the server rewrites history: entry 0 now claims another size
        service.log.entries[0]["manifest"]["size"] = 1
        with pytest.raises(ServeError) as caught:
            serve_client.audit()
        assert caught.value.code == "SERVE-CHAIN"
        assert pinned  # the old head is simply no longer served

    def test_spliced_prev_is_detected(self, serve_stack, serve_client):
        service, _server, _clock = serve_stack
        self._published(serve_client)
        entries = service.log.entries
        entries[2]["prev"] = entries[1]["prev"]  # drop entry 1's edit
        with pytest.raises(ServeError) as caught:
            serve_client.audit()
        assert caught.value.code == "SERVE-CHAIN"

    def test_wholesale_rewrite_fails_the_pinned_head(
            self, serve_stack, serve_client):
        service, _server, clock = serve_stack
        self._published(serve_client, count=2)
        pinned = serve_client.audit(key=SERVE_TEST_KEY)
        # the server discards history and rebuilds a fresh, internally
        # consistent log -- every entry valid, every signature good
        service.log.entries.clear()
        service.log.head = "0" * 64
        service.log.append(name="rewritten", tenant="t",
                           digest="ee" * 32, format_version="stsa1",
                           size=9)
        assert serve_client.audit(key=SERVE_TEST_KEY)  # looks clean...
        with pytest.raises(ServeError) as caught:
            serve_client.audit(expect_head=pinned)  # ...until pinned
        assert caught.value.code == "SERVE-CHAIN"

    def test_store_serving_wrong_bytes_is_refused(self, serve_stack,
                                                  serve_client):
        service, _server, _clock = serve_stack
        digest = serve_client.publish("m", source=SOURCE)["digest"]
        service.store._memory[digest] = _wire(SOURCE_PRINT)
        with pytest.raises(ServeError) as caught:
            serve_client.fetch(digest)
        assert caught.value.code == "SERVE-CHAIN"


# ======================================================================
# quotas over the wire


class TestQuotaEnforcement:
    def test_rate_quota_returns_serve_rate(self):
        clock = ManualClock()
        service = ServeService(
            signing_key=SERVE_TEST_KEY, clock=clock,
            limits=TenantLimits(requests_per_window=3,
                                window_seconds=60.0))
        server = ServeServer(service).start()
        try:
            client = ServeClient("127.0.0.1", server.port, tenant="t")
            for _ in range(3):
                client.healthz()
            with pytest.raises(ServeError) as caught:
                client.healthz()
            assert caught.value.code == "SERVE-RATE"
            clock.advance(61.0)
            client.healthz()
        finally:
            server.stop()

    def test_storage_quota_returns_serve_quota_bytes(self):
        service = ServeService(signing_key=SERVE_TEST_KEY,
                               limits=TenantLimits(stored_bytes=10))
        with pytest.raises(ServeError) as caught:
            service.handle("POST", "/v1/publish",
                           {"name": "m", "source": SOURCE,
                            "tenant": "t"})
        assert caught.value.code == "SERVE-QUOTA-BYTES"

    def test_compile_quota_returns_serve_quota_compile(self):
        service = ServeService(signing_key=SERVE_TEST_KEY,
                               limits=TenantLimits(compile_seconds=0.0))
        with pytest.raises(ServeError) as caught:
            service.handle("POST", "/v1/compile",
                           {"source": SOURCE, "tenant": "t"})
        assert caught.value.code == "SERVE-QUOTA-COMPILE"


# ======================================================================
# reachability audit: every registered code has a pinned trigger


def _decode_code(fn) -> str:
    from repro.encode.deserializer import DecodeError
    try:
        fn()
    except DecodeError as error:
        return error.code
    raise AssertionError("stream was accepted")


def _v2_triggers() -> dict:
    """Handmade byte-level triggers, one per directly craftable code."""
    from repro.cache import DictionaryStore
    from repro.encode.deserializer import decode_module
    from repro.encode.format import (
        MAGIC_V2,
        MAX_DICTIONARIES,
        MAX_VARINT_BYTES,
        MODE_DELTA,
        MODE_FULL,
        _write_varint,
        blob_digest,
    )
    from repro.loader import load_module

    wire = _wire()
    store = DictionaryStore()
    base_digest = store.put(wire)

    over_count = bytearray(MAGIC_V2)
    over_count.append(MODE_FULL)
    _write_varint(over_count, MAX_DICTIONARIES + 1)

    overcopy = bytearray(MAGIC_V2)
    overcopy.append(MODE_DELTA)
    overcopy += base_digest
    _write_varint(overcopy, len(wire) + 7)  # copies past the base
    _write_varint(overcopy, 0)
    _write_varint(overcopy, 0)
    overcopy += blob_digest(b"unreached")

    return {
        "DEC-MAGIC": lambda: load_module(b"XXXX" + wire, cache=False),
        "DEC-IO": lambda: decode_module(wire[:-3]),
        "DEC-TRAILING": lambda: load_module(wire + b"\x01",
                                            cache=False),
        "DEC-LIMIT": lambda: load_module(bytes(over_count),
                                         cache=False),
        "DEC-DELTA": lambda: load_module(bytes(overcopy), store=store,
                                         cache=False),
    }


def _contract_pins() -> dict:
    """Codes a hostile byte stream cannot reach, pinned against the
    exact internal surface that raises them.

    ``DEC-REF`` guards the reference resolver's bookkeeping: the
    bounded-alphabet encoding makes an out-of-range operand
    *unencodable* (referential security by construction -- a seeded
    search over 200k+ byte mutations of branchy two-class programs
    produced zero DEC-REF rejections), so the pin drives the resolver
    with an entry count its scope chain cannot satisfy.
    ``DEC-WORLD`` / ``DEC-TABLE`` / ``DEC-VALUE`` are the decode
    boundary's wrapping contract for lower-layer validation errors:
    the pin raises each wrapped exception mid-decode and asserts the
    stable code surfaces.
    """
    from repro.encode import deserializer
    from repro.typesys.table import TypeTableError
    from repro.typesys.world import WorldError

    def dec_ref():
        decoder = deserializer._FunctionDecoder.__new__(
            deserializer._FunctionDecoder)

        class MaxSymbolReader:
            def read_bounded(self, alphabet):
                return alphabet - 1

        class Block:
            id = 0

        block = Block()
        decoder.reader = MaxSymbolReader()
        decoder._current_block = block
        decoder._entry_counts = {"int": 3}  # claims 3 inherited regs
        decoder._chain = {}                 # ...the chain holds none
        decoder.planes = {0: {}}
        decoder._resolve_ref(block, "int", 0)

    def wrapped(exception):
        def trigger(monkeypatch_wire=_wire()):
            def explode(self):
                raise exception("lower layer said no")
            original = deserializer._ModuleDecoder.decode
            deserializer._ModuleDecoder.decode = explode
            try:
                deserializer.decode_module(monkeypatch_wire)
            finally:
                deserializer._ModuleDecoder.decode = original
        return trigger

    return {
        "DEC-REF": dec_ref,
        "DEC-WORLD": wrapped(WorldError),
        "DEC-TABLE": wrapped(TypeTableError),
        "DEC-VALUE": wrapped(ValueError),
    }


def _serve_triggers() -> dict:
    """One transport-free trigger per SERVE code."""

    def with_service(limits, method, path, payload):
        def trigger():
            service = ServeService(signing_key=SERVE_TEST_KEY,
                                   limits=limits)
            service.handle(method, path, payload)
        return trigger

    def rate():
        service = ServeService(
            signing_key=SERVE_TEST_KEY, clock=ManualClock(),
            limits=TenantLimits(requests_per_window=1))
        service.handle("GET", "/v1/healthz", {"tenant": "t"})
        service.handle("GET", "/v1/healthz", {"tenant": "t"})

    def chain():
        log = _log_with(2)
        log.entries[0]["manifest"]["name"] = "edited"
        audit_chain(log.entries)

    def signature():
        audit_chain(_log_with(1).entries, key=b"not-the-publisher")

    generous = TenantLimits(requests_per_window=None,
                            stored_bytes=None, compile_seconds=None)
    garbage = base64.b64encode(b"\x00" * 30).decode("ascii")
    return {
        "SERVE-RATE": rate,
        "SERVE-QUOTA-BYTES": with_service(
            TenantLimits(stored_bytes=5), "POST", "/v1/publish",
            {"name": "m", "source": SOURCE, "tenant": "t"}),
        "SERVE-QUOTA-COMPILE": with_service(
            TenantLimits(compile_seconds=0.0), "POST", "/v1/compile",
            {"source": SOURCE, "tenant": "t"}),
        "SERVE-NOT-FOUND": with_service(
            generous, "GET", f"/v1/fetch/{'ab' * 32}", None),
        "SERVE-BAD-REQUEST": with_service(
            generous, "POST", "/v1/compile", {}),
        "SERVE-ENDPOINT": with_service(
            generous, "GET", "/v1/never-registered", None),
        "SERVE-COMPILE": with_service(
            generous, "POST", "/v1/compile",
            {"source": "class { syntax error"}),
        "SERVE-REJECTED": with_service(
            generous, "POST", "/v1/verify", {"wire_b64": garbage}),
        "SERVE-CHAIN": chain,
        "SERVE-SIG": signature,
    }


class TestCodeReachability:
    """Every registered code is raised by >=1 pinned fixture; no raise
    site uses an unregistered code."""

    def test_every_dec_code_is_reachable(self):
        manifest = json.loads((ATTACKS_DIR / "manifest.json")
                              .read_text())
        covered = {entry["code"] for entry in manifest.values()}
        for code, trigger in _v2_triggers().items():
            assert _decode_code(trigger) == code
            covered.add(code)
        from repro.encode.deserializer import DecodeError
        for code, trigger in _contract_pins().items():
            with pytest.raises(DecodeError) as caught:
                trigger()
            assert caught.value.code == code
            covered.add(code)
        registered = {code for code in STABLE_CODES
                      if code.startswith("DEC-")}
        assert covered >= registered, \
            f"unpinned decoder codes: {sorted(registered - covered)}"

    def test_every_serve_code_is_reachable(self):
        triggers = _serve_triggers()
        registered = {code for code in STABLE_CODES
                      if code.startswith("SERVE-")}
        assert set(triggers) == registered, \
            "trigger table out of sync with the registry"
        for code, trigger in sorted(triggers.items()):
            with pytest.raises(ServeError) as caught:
                trigger()
            assert caught.value.code == code, \
                f"{code} trigger raised {caught.value.code}"

    def test_no_raise_site_uses_an_unregistered_code(self):
        pattern = re.compile(
            r'"((?:DEC|SERVE)-[A-Z]+(?:-[A-Z0-9]+)*)"')
        unregistered = {}
        for path in sorted((REPO / "src").rglob("*.py")):
            for literal in pattern.findall(path.read_text()):
                if literal not in STABLE_CODES:
                    unregistered.setdefault(literal, path.name)
        assert not unregistered


# ======================================================================
# the CLI surface


class TestServeCli:
    def test_publish_then_fetch_round_trips(self, serve_stack,
                                            serve_client, tmp_path,
                                            capsys):
        from repro.cli import main
        _service, server, _clock = serve_stack
        url = f"http://127.0.0.1:{server.port}"
        java = tmp_path / "Demo.java"
        java.write_text(SOURCE_PRINT)
        assert main(["publish", str(java), "--name", "demo",
                     "--url", url]) == 0
        out = capsys.readouterr().out
        digest = re.search(r"digest ([0-9a-f]{64})", out).group(1)
        fetched = tmp_path / "demo.stsa"
        assert main(["fetch", digest, "--url", url,
                     "-o", str(fetched)]) == 0
        assert wire_digest(fetched.read_bytes()) == digest
        assert main(["fetch", digest, "--url", url, "--run"]) == 0
        assert "hi" in capsys.readouterr().out

    def test_fetch_unknown_digest_fails(self, serve_stack, capsys):
        from repro.cli import main
        _service, server, _clock = serve_stack
        url = f"http://127.0.0.1:{server.port}"
        assert main(["fetch", "ab" * 32, "--url", url]) == 1
        assert "SERVE-NOT-FOUND" in capsys.readouterr().err


class TestRunStream:
    """``repro-cc run - --stream``: the wire arrives on stdin in
    chunks through the incremental StreamingLoader."""

    def _cli(self, stdin_chunks, *args):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "run", "-",
             "--stream", *args],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, cwd=str(REPO),
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin"})
        for chunk in stdin_chunks:
            process.stdin.write(chunk)
            process.stdin.flush()
        process.stdin.close()
        out = process.stdout.read().decode()
        err = process.stderr.read().decode()
        return process.wait(), out, err

    def test_chunked_pipe_executes(self):
        wire = _wire(SOURCE_PRINT)
        chunks = [wire[i:i + 5] for i in range(0, len(wire), 5)]
        code, out, err = self._cli(chunks)
        assert code == 0, err
        assert out == "hi\n"

    def test_truncated_pipe_is_rejected(self):
        wire = _wire(SOURCE_PRINT)
        code, _out, err = self._cli([wire[:max(len(wire) // 2, 8)]])
        assert code == 1
        assert "REJECTED" in err and "DEC-" in err

    def test_tampered_pipe_is_rejected(self):
        wire = bytearray(_wire(SOURCE_PRINT))
        wire[-2] ^= 0xFF
        code, _out, err = self._cli([bytes(wire)])
        assert code == 1
        assert "REJECTED" in err


# ======================================================================
# docs stay in sync


class TestDocsSync:
    def test_serve_doc_lists_every_code(self):
        text = (REPO / "docs" / "SERVE.md").read_text()
        for code, (layer, _severity, description) in \
                STABLE_CODES.items():
            if layer != "serve":
                continue
            assert code in text, f"{code} missing from docs/SERVE.md"
            assert description in text, \
                f"{code} description drifted in docs/SERVE.md"

    def test_serve_doc_lists_every_endpoint(self):
        text = (REPO / "docs" / "SERVE.md").read_text()
        for endpoint in ("/v1/compile", "/v1/publish", "/v1/fetch",
                         "/v1/verify", "/v1/run", "/v1/log",
                         "/v1/dict", "/v1/stats", "/v1/healthz"):
            assert endpoint in text


# ======================================================================
# the full-corpus serving campaign (slow lane)


@pytest.mark.slow
class TestServingConformance:
    def test_corpus_over_http_with_concurrent_clients(
            self, serve_stack):
        from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
        service, server, _clock = serve_stack
        names = list(CORPUS_PROGRAMS)

        def lifecycle(item):
            index, name = item
            client = ServeClient("127.0.0.1", server.port,
                                 tenant=f"tenant-{index % 3}")
            source = corpus_source(name)
            plain = client.publish(name, source=source)
            opt = client.publish(f"{name}.opt", source=source,
                                 optimize=True, wire_v2=True)
            digests = []
            for entry, fmt in ((plain, "stsa1"), (opt, "stsa2")):
                assert entry["entry"]["manifest"]["format"] == fmt
                wire = client.fetch(entry["digest"])  # digest-checked
                assert wire_digest(wire) == entry["digest"]
                verdict = client.verify(digest=entry["digest"])
                assert verdict["ok"] and verdict["classes"] >= 1
                result = client.run(digest=entry["digest"],
                                    class_name=name)
                assert result["exception"] is None
                digests.append(entry["digest"])
            return name, digests

        with ThreadPoolExecutor(max_workers=5) as pool:
            results = dict(pool.map(lifecycle, enumerate(names)))
        assert len(results) == len(names)
        artifacts = {digest for _name, digests in results.items()
                     for digest in digests}
        assert len(artifacts) == 2 * len(names)  # all 20 distinct

        # one auditing client checks the whole interleaved history
        auditor = ServeClient("127.0.0.1", server.port,
                              tenant="auditor")
        head = auditor.audit(key=SERVE_TEST_KEY)
        entries = auditor.log_entries()["entries"]
        assert len(entries) == 2 * len(names)
        assert head == service.log.head
        published = {entry["manifest"]["digest"] for entry in entries}
        assert published == artifacts

        # determinism across the network: republishing yields the
        # same content addresses, and the store deduplicates
        stored_before = service.store.stats()["entries"]
        again = ServeClient("127.0.0.1", server.port,
                            tenant="replayer")
        for name in names[:3]:
            entry = again.publish(name, source=corpus_source(name))
            assert entry["digest"] in artifacts
        assert service.store.stats()["entries"] == stored_before
