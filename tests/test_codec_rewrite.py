"""The word-at-a-time codec rewrite: golden fixtures, differential
tests against the seed codec, the bit-I/O edge-case fixes, and the
compilation cache."""

import hashlib
import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.codec import (
    capture_corpus_trace,
    check_read_values,
    replay_read,
    replay_write,
)
from repro.bench.corpus import corpus_source
from repro.cache import CompilationCache
from repro.encode._bitio_reference import (
    ReferenceBitReader,
    ReferenceBitWriter,
)
from repro.encode.bitio import BitIOError, BitReader, BitWriter
from repro.encode.deserializer import DecodeError, decode_module
from repro.encode.serializer import encode_module
from repro.pipeline import compile_to_module, pipeline_cache_key

GOLDEN_DIR = Path(__file__).parent / "golden" / "wire"
MANIFEST = json.loads((GOLDEN_DIR / "MANIFEST.json").read_text())


class TestGoldenFixtures:
    """The rewrite must reproduce the seed codec's bytes exactly; the
    fixtures were captured before the rewrite."""

    @pytest.mark.parametrize("fixture", sorted(MANIFEST))
    def test_fixture_bytes_reproduced(self, fixture):
        program, form = fixture.rsplit(".", 1)
        source = corpus_source(program)
        if form == "plain":
            module = compile_to_module(source, prune_phis=False,
                                       cache=False)
        else:
            module = compile_to_module(source, optimize=True, cache=False)
        wire = encode_module(module)
        expected = MANIFEST[fixture]
        assert len(wire) == expected["bytes"]
        assert hashlib.sha256(wire).hexdigest() == expected["sha256"]
        assert wire == (GOLDEN_DIR / f"{fixture}.stsa").read_bytes()

    @pytest.mark.parametrize("fixture", sorted(MANIFEST))
    def test_fixture_bytes_decode_and_reencode(self, fixture):
        wire = (GOLDEN_DIR / f"{fixture}.stsa").read_bytes()
        module = decode_module(wire)
        assert encode_module(module) == wire


# one op of each primitive code, as (tag, *args) like the bench trace
_op = st.one_of(
    st.integers(0, 2**32 - 1).map(
        lambda v: ("bits", v, max(v.bit_length(), 1))),
    st.tuples(st.integers(2, 2**20), st.data()).map(
        lambda pair: ("bounded_draw", pair)),
    st.integers(0, 2**34).map(lambda v: ("gamma", v)),
    st.integers(-2**33, 2**33).map(lambda v: ("sgamma", v)),
    st.booleans().map(lambda b: ("flag", b)),
    st.binary(max_size=8).map(lambda data: ("bytes", data)),
)


def _resolve_ops(raw_ops):
    ops = []
    for op in raw_ops:
        if op[0] == "bounded_draw":
            alphabet, data = op[1]
            value = data.draw(st.integers(0, alphabet - 1))
            ops.append(("bounded", value, alphabet))
        else:
            ops.append(op)
    return ops


class TestDifferential:
    """Random op sequences through both codecs, byte for byte."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(_op, max_size=40))
    def test_writers_agree(self, raw_ops):
        ops = _resolve_ops(raw_ops)
        assert replay_write(BitWriter, ops) \
            == replay_write(ReferenceBitWriter, ops)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(_op, max_size=40))
    def test_readers_consume_identically(self, raw_ops):
        ops = _resolve_ops(raw_ops)
        stream = replay_write(BitWriter, ops)
        check_read_values(ops, stream)  # new reader returns the values
        replay_read(ReferenceBitReader, ops, stream)  # seed reader too

    def test_corpus_trace_agrees(self):
        # capture_corpus_trace asserts new == reference internally
        ops, stream = capture_corpus_trace(["BitSieve", "MiniVM"])
        check_read_values(ops, stream)

    def test_bit_length_matches_reference(self):
        for codec in (BitWriter, ReferenceBitWriter):
            writer = codec()
            writer.write_gamma(1000)
            writer.write_bounded(3, 5)
            assert writer.bit_length() == 22  # 19 gamma + 3 bounded


class TestWidthZeroRegression:
    """Seed bug: ``write_bits(value, width=0)`` dropped a nonzero value
    silently, so the stream decoded to different data than written."""

    def test_nonzero_value_in_zero_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(BitIOError):
            writer.write_bits(1, 0)
        with pytest.raises(BitIOError):
            writer.write_bits(255, 0)

    def test_zero_value_in_zero_width_is_a_no_op(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert writer.bit_length() == 0
        assert writer.getvalue() == b""

    def test_negative_width_and_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(BitIOError):
            writer.write_bits(0, -1)
        with pytest.raises(BitIOError):
            writer.write_bits(-1, 8)


class TestAtEnd:
    """Seed bug: ``at_end()`` compared the bit position to the full
    buffer length, so it could never be True after a mid-byte stop on a
    byte-padded stream.  The fixed contract: True iff only zero padding
    (< 8 bits) remains."""

    def test_true_after_mid_byte_stop_with_zero_padding(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        stream = writer.getvalue()  # one byte: 101 followed by 00000
        reader = BitReader(stream)
        assert reader.read_bits(3) == 0b101
        assert reader.bits_remaining() == 5
        assert reader.at_end()

    def test_false_while_data_remains(self):
        writer = BitWriter()
        writer.write_bits(0b10000001, 8)
        reader = BitReader(writer.getvalue())
        assert not reader.at_end()
        reader.read_bits(4)
        assert not reader.at_end()  # the final 1 bit is still unread

    def test_false_on_nonzero_padding(self):
        # a stream whose final partial byte carries a stray 1 bit
        reader = BitReader(bytes([0b10100100]))
        reader.read_bits(3)
        assert not reader.at_end()

    def test_true_at_exact_byte_boundary(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        assert reader.at_end()
        assert reader.bits_remaining() == 0
        assert BitReader(b"").at_end()

    def test_reference_reader_agrees(self):
        for data, consume, expected in [
                (bytes([0b10100000]), 3, True),
                (bytes([0b10100100]), 3, False),
                (b"\xff", 8, True),
                (b"\xff\x00", 8, False)]:
            new = BitReader(data)
            ref = ReferenceBitReader(data)
            new.read_bits(consume)
            ref.read_bits(consume)
            assert new.at_end() is expected
            assert ref.at_end() is expected
            assert new.bits_remaining() == ref.bits_remaining()


class TestPaddingRejection:
    """Nonzero padding must be rejected at both layers."""

    def test_deserializer_rejects_flipped_padding_bit(self):
        source = corpus_source("BitSieve")
        wire = bytearray(encode_module(
            compile_to_module(source, cache=False)))
        # the final byte's least significant bit is padding unless the
        # stream happens to end byte-aligned; find a fixture where the
        # flip changes only padding by checking it still decodes the
        # same prefix
        wire[-1] |= 0x01
        try:
            decode_module(bytes(wire))
        except DecodeError as err:
            assert "padding" in str(err) or "trailing" in str(err)
        else:
            # the stream ended byte-aligned: flipping the bit corrupted
            # real data, and that must not decode silently either
            pytest.fail("corrupted stream decoded without error")

    def test_at_end_distinguishes_padding_from_data(self):
        writer = BitWriter()
        writer.write_gamma(6)  # 00111 -> 5 bits, 3 bits zero padding
        clean = writer.getvalue()
        dirty = bytes([clean[0] | 0x01])
        clean_reader = BitReader(clean)
        dirty_reader = BitReader(dirty)
        assert clean_reader.read_gamma() == 6
        assert dirty_reader.read_gamma() == 6
        assert clean_reader.at_end()
        assert not dirty_reader.at_end()


BOUNDARY_ALPHABETS = sorted({1, 2} | {
    size for k in (1, 2, 3, 4, 7, 8, 15, 16, 20)
    for size in ((1 << k) - 1, 1 << k, (1 << k) + 1) if size >= 1})

INT_MIN, INT_MAX = -2**31, 2**31 - 1


class TestBoundaryRoundTrips:
    @pytest.mark.parametrize("alphabet", BOUNDARY_ALPHABETS)
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_bounded_round_trip_at_power_of_two_boundaries(
            self, alphabet, data):
        values = data.draw(st.lists(
            st.integers(0, alphabet - 1), max_size=16))
        writer = BitWriter()
        for value in values:
            writer.write_bounded(value, alphabet)
        reader = BitReader(writer.getvalue())
        for value in values:
            assert reader.read_bounded(alphabet) == value
        assert reader.at_end()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.one_of(
        st.just(INT_MIN), st.just(INT_MAX),
        st.just(INT_MIN + 1), st.just(INT_MAX - 1), st.just(0),
        st.integers(INT_MIN, INT_MAX)), min_size=1, max_size=12))
    def test_signed_gamma_int_extremes(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_signed_gamma(value)
        reader = BitReader(writer.getvalue())
        for value in values:
            assert reader.read_signed_gamma() == value
        assert reader.at_end()

    def test_signed_gamma_extremes_match_reference(self):
        for value in (INT_MIN, INT_MIN + 1, -1, 0, 1, INT_MAX - 1,
                      INT_MAX):
            new, ref = BitWriter(), ReferenceBitWriter()
            new.write_signed_gamma(value)
            ref.write_signed_gamma(value)
            assert new.getvalue() == ref.getvalue()

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**64 - 2))
    def test_gamma_full_range(self, value):
        writer = BitWriter()
        writer.write_gamma(value)
        reader = BitReader(writer.getvalue())
        assert reader.read_gamma() == value

    def test_overlong_gamma_rejected_by_both_readers(self):
        # 65 zeros then a stop bit: one zero too many
        stream = (1 << (64 + 65)).to_bytes(17, "big")[1:]
        for codec in (BitReader, ReferenceBitReader):
            with pytest.raises(BitIOError):
                codec(stream).read_gamma()

    def test_64_zero_gamma_still_accepted(self):
        writer = BitWriter()
        writer.write_gamma(2**64 - 2)  # exactly 64 leading zeros
        assert BitReader(writer.getvalue()).read_gamma() == 2**64 - 2


class TestCompilationCache:
    SOURCE = "class C { static int f() { return 41 + 1; } }"

    def test_miss_then_hit(self):
        cache = CompilationCache()
        key = pipeline_cache_key(cache, self.SOURCE)
        assert cache.get(key) is None
        module = compile_to_module(self.SOURCE, cache=cache)
        assert cache.get(key) == encode_module(module)
        assert cache.hits == 1 and cache.misses == 2
        assert 0 < cache.hit_rate < 1

    def test_hit_returns_equivalent_module(self):
        cache = CompilationCache()
        cold = compile_to_module(self.SOURCE, optimize=True, cache=cache)
        warm = compile_to_module(self.SOURCE, optimize=True, cache=cache)
        assert cache.hits == 1
        assert encode_module(warm) == encode_module(cold)

    def test_flags_partition_the_key_space(self):
        cache = CompilationCache()
        keys = {
            pipeline_cache_key(cache, self.SOURCE),
            pipeline_cache_key(cache, self.SOURCE, optimize=True),
            pipeline_cache_key(cache, self.SOURCE, prune_phis=False),
            pipeline_cache_key(cache, self.SOURCE + " "),
        }
        assert len(keys) == 4
        # explicit defaults hash identically to omitted flags
        assert pipeline_cache_key(cache, self.SOURCE) == \
            pipeline_cache_key(cache, self.SOURCE, optimize=False)

    def test_disk_persistence(self, tmp_path):
        first = CompilationCache(str(tmp_path))
        compile_to_module(self.SOURCE, cache=first)
        assert list(tmp_path.glob("*.stsa"))
        second = CompilationCache(str(tmp_path))
        key = pipeline_cache_key(second, self.SOURCE)
        assert second.get(key) is not None
        assert second.hits == 1
        module = compile_to_module(self.SOURCE, cache=second)
        assert encode_module(module) == second.get(key)

    def test_clear_empties_memory_and_disk(self, tmp_path):
        cache = CompilationCache(str(tmp_path))
        compile_to_module(self.SOURCE, cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert not list(tmp_path.glob("*.stsa"))
        assert cache.get(pipeline_cache_key(cache, self.SOURCE)) is None

    def test_corrupt_entry_fails_safely(self):
        cache = CompilationCache()
        key = pipeline_cache_key(cache, self.SOURCE)
        cache.put(key, b"\x00garbage")
        with pytest.raises(DecodeError):
            compile_to_module(self.SOURCE, cache=cache)

    def test_stage_seconds_recorded(self):
        cache = CompilationCache()
        stages: dict = {}
        compile_to_module(self.SOURCE, optimize=True, cache=cache,
                          stage_seconds=stages)
        assert set(stages) == {"parse", "ssa", "opt"}
        assert all(seconds >= 0 for seconds in stages.values())
        warm_stages: dict = {}
        compile_to_module(self.SOURCE, optimize=True, cache=cache,
                          stage_seconds=warm_stages)
        # a hit goes through the fused verifying loader
        assert set(warm_stages) == {"load"}
