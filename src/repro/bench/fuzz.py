"""Fuzzing benchmark: the numbers behind ``BENCH_fuzz.json``.

Runs one deterministic :func:`repro.fuzz.run_campaign` and reports

* generation + oracle throughput (programs/second, pipelines compared),
* mutation throughput (mutations/second),
* the rejection taxonomy: how many mutants each stable ``DEC-*`` /
  ``STSA-*`` code rejected, how many were accepted as equivalent, and
  the per-mutator hit counts,
* every finding (there should be none -- a finding fails the run).

The report is a superset of ``CampaignResult.report()``: it adds the
invariant verdict (``ok``) and the configuration, so CI can archive one
self-describing artifact per run.
"""

from __future__ import annotations

import os


def fuzz_report(seed: int = 0, budget: int = 10_000, mode: str = "all"):
    """Run one campaign; returns ``(json_report, CampaignResult)``."""
    from repro.fuzz import run_campaign
    result = run_campaign(seed=seed, budget=budget, mode=mode)
    report = result.report()
    report["ok"] = result.ok
    report["workers"] = os.cpu_count()
    return report, result
