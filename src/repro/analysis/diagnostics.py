"""Structured diagnostics for the verifier and the lint driver.

Every finding -- a verifier rejection, a suspicious-but-legal construct,
an optimisation opportunity the analyses can prove -- is reported as a
:class:`Diagnostic` with a stable machine-readable code, a severity, and
a (function, block, instruction) location.  The code space is split by
convention:

* ``STSA-XXX-0nn`` -- well-formedness *errors*: the module violates a
  SafeTSA property and must be rejected;
* ``STSA-XXX-1nn`` -- lint findings: warnings (legal but suspicious,
  e.g. untransmittable unreachable blocks) and informational findings
  (provably-redundant checks the producer could eliminate).

The full table lives in :data:`DIAGNOSTIC_CODES` and is documented in
``docs/ANALYSIS.md``; tests assert the two stay in sync.
"""

from __future__ import annotations

from typing import Iterable, Optional


class Severity:
    """Diagnostic severities, ordered from most to least severe."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    ORDER = (ERROR, WARNING, INFO)

    @staticmethod
    def rank(severity: str) -> int:
        return Severity.ORDER.index(severity)


#: code -> (severity, one-line description).  Stable: codes are never
#: renumbered, only appended.
DIAGNOSTIC_CODES: dict[str, tuple[str, str]] = {
    # -- control structure / CFG ---------------------------------------
    "STSA-CFG-001": (Severity.ERROR,
                     "the CST does not derive a consistent CFG"),
    "STSA-CFG-002": (Severity.ERROR, "block has no terminator"),
    "STSA-CFG-003": (Severity.ERROR,
                     "block mixes normal and exception predecessors"),
    # -- referential integrity -----------------------------------------
    "STSA-REF-001": (Severity.ERROR,
                     "operand used before its definition in the same "
                     "block"),
    "STSA-REF-002": (Severity.ERROR,
                     "operand defined in a non-dominating block"),
    "STSA-REF-003": (Severity.ERROR, "reference to an undefined value"),
    # -- phi discipline -------------------------------------------------
    "STSA-PHI-001": (Severity.ERROR,
                     "phi operand count does not match predecessor "
                     "count"),
    "STSA-PHI-002": (Severity.ERROR,
                     "phi operand on a different plane than the phi"),
    "STSA-PHI-003": (Severity.ERROR,
                     "phi operand unavailable at the end of its "
                     "predecessor"),
    # -- type separation -------------------------------------------------
    "STSA-TYP-001": (Severity.ERROR, "operand on the wrong register plane"),
    "STSA-TYP-002": (Severity.ERROR,
                     "operation unknown to the type's operation table"),
    "STSA-TYP-003": (Severity.ERROR, "wrong operand arity"),
    "STSA-TYP-004": (Severity.ERROR,
                     "result type absent from the type table"),
    "STSA-TYP-005": (Severity.ERROR, "branch condition is not a boolean"),
    "STSA-TYP-006": (Severity.ERROR,
                     "return value does not match the signature"),
    "STSA-TYP-007": (Severity.ERROR,
                     "throw operand not on the safe Throwable plane"),
    "STSA-TYP-008": (Severity.ERROR, "illegal downcast between planes"),
    "STSA-TYP-009": (Severity.ERROR,
                     "upcast must move between reference planes"),
    "STSA-TYP-010": (Severity.ERROR, "nullcheck of a non-reference type"),
    "STSA-TYP-011": (Severity.ERROR, "instanceof misuse"),
    # -- exception discipline --------------------------------------------
    "STSA-EXC-001": (Severity.ERROR,
                     "trapping instruction is not last in its subblock"),
    "STSA-EXC-002": (Severity.ERROR,
                     "missing exception edge to the dispatch block"),
    "STSA-EXC-003": (Severity.ERROR,
                     "subblock with a trapping tail must fall through"),
    "STSA-EXC-004": (Severity.ERROR,
                     "caughtexc outside a dispatch block"),
    "STSA-EXC-005": (Severity.ERROR,
                     "exception edge without an exception point"),
    "STSA-EXC-006": (Severity.ERROR, "exception edge escapes its try"),
    # -- structural placement --------------------------------------------
    "STSA-STR-001": (Severity.ERROR, "const outside the entry block"),
    "STSA-STR-002": (Severity.ERROR, "param outside the entry block"),
    "STSA-STR-003": (Severity.ERROR, "param index out of range"),
    "STSA-STR-004": (Severity.ERROR,
                     "only 'this' may be pre-loaded on a safe plane"),
    "STSA-STR-005": (Severity.ERROR,
                     "reference constant with a non-null value"),
    # -- memory safety ----------------------------------------------------
    "STSA-MEM-001": (Severity.ERROR,
                     "object operand not on the safe reference plane"),
    "STSA-MEM-002": (Severity.ERROR, "static/instance field misuse"),
    "STSA-MEM-003": (Severity.ERROR,
                     "field or method unreachable in the tamper-proof "
                     "tables"),
    "STSA-MEM-004": (Severity.ERROR, "setstatic of a final library field"),
    "STSA-MEM-005": (Severity.ERROR,
                     "array operand not a safe array reference"),
    "STSA-MEM-006": (Severity.ERROR,
                     "index not a safe index of the same array value"),
    "STSA-MEM-007": (Severity.ERROR, "idxcheck result plane mismatch"),
    # -- calls -------------------------------------------------------------
    "STSA-CALL-001": (Severity.ERROR, "xdispatch of a static method"),
    # -- lint findings -----------------------------------------------------
    "STSA-CFG-101": (Severity.WARNING,
                     "unreachable block: never executed and not "
                     "transmitted"),
    "STSA-PHI-101": (Severity.WARNING,
                     "dead phi: no observable use reaches it"),
    "STSA-NULL-101": (Severity.INFO,
                      "redundant nullcheck: the operand is provably "
                      "non-null on every path"),
    "STSA-IDX-101": (Severity.INFO,
                     "redundant idxcheck: the index is provably in "
                     "bounds on every path"),
    # -- pipeline ----------------------------------------------------------
    "STSA-PASS-001": (Severity.ERROR,
                      "optimisation pass left the function ill-formed"),
    # -- generic fallback --------------------------------------------------
    "STSA-GEN-001": (Severity.ERROR, "unclassified well-formedness error"),
}


class Diagnostic:
    """One structured finding.

    ``block`` and ``instr`` are the SafeTSA block id and value id (the
    ``B<n>`` / ``v<n>`` of the disassembly); either may be ``None`` for
    function- or block-level findings.
    """

    __slots__ = ("code", "severity", "message", "function", "block",
                 "instr")

    def __init__(self, code: str, message: str, *,
                 function: Optional[str] = None,
                 block: Optional[int] = None,
                 instr: Optional[int] = None,
                 severity: Optional[str] = None):
        if severity is None:
            severity = DIAGNOSTIC_CODES.get(
                code, (Severity.ERROR, ""))[0]
        self.code = code
        self.severity = severity
        self.message = message
        self.function = function
        self.block = block
        self.instr = instr

    # -- presentation ---------------------------------------------------

    def location(self) -> str:
        parts = []
        if self.function is not None:
            parts.append(self.function)
        if self.block is not None:
            parts.append(f"B{self.block}")
        if self.instr is not None:
            parts.append(f"v{self.instr}")
        return ":".join(parts) or "<module>"

    def as_dict(self) -> dict:
        """The stable machine-readable schema (key order is part of the
        contract; see docs/ANALYSIS.md)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "function": self.function,
            "block": self.block,
            "instr": self.instr,
            "message": self.message,
        }

    def __str__(self) -> str:
        return (f"{self.code} {self.severity} {self.location()}: "
                f"{self.message}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<diagnostic {self}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Diagnostic) \
            and self.as_dict() == other.as_dict()

    def __hash__(self) -> int:
        return hash((self.code, self.function, self.block, self.instr,
                     self.message))


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity == Severity.ERROR for d in diagnostics)


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    counts = {severity: 0 for severity in Severity.ORDER}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] = counts.get(diagnostic.severity, 0) + 1
    return counts


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Deterministic report order: severity, then location, then code."""
    return sorted(diagnostics, key=lambda d: (
        Severity.rank(d.severity),
        d.function or "",
        d.block if d.block is not None else -1,
        d.instr if d.instr is not None else -1,
        d.code,
        d.message,
    ))
