"""MiniJava++ front-end: lexer, parser, and semantic analysis.

This is the stand-in for the paper's Pizza-based Java front-end.  It
accepts a substantial Java subset (classes, single inheritance, overloaded
methods, constructors, arrays, the full statement grammar including
``try``/``catch``/``finally``, ``switch`` and labeled loops) and produces a
typed AST, from which :mod:`repro.uast` builds the Unified Abstract Syntax
Tree the SSA generator consumes.
"""

from repro.frontend.errors import CompileError, SourcePosition
from repro.frontend.lexer import Lexer, tokenize
from repro.frontend.parser import Parser, parse_compilation_unit
from repro.frontend.semantics import SemanticAnalyzer, analyze

__all__ = [
    "CompileError",
    "SourcePosition",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_compilation_unit",
    "SemanticAnalyzer",
    "analyze",
]
