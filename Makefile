# Convenience targets for the SafeTSA reproduction.

PYTHON ?= python3

# Targets work from a bare checkout too (no editable install needed).
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test bench bench-smoke bench-analysis bench-pipeline bench-load \
	bench-loops bench-wire fuzz-smoke lint-corpus tables examples all clean

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Small codec + cache throughput run; writes BENCH_codec.json (CI runs
# this after the test suite).
bench-smoke:
	$(PYTHON) -m repro.bench.runner codec --smoke

# Verify + lint cost over a corpus subset; writes BENCH_analysis.json.
bench-analysis:
	$(PYTHON) -m repro.bench.runner analysis --smoke

# Pass-pipeline benchmark: shared-analysis reuse, per-pass timing, and
# the parallel fan-out determinism check; writes BENCH_pipeline.json.
bench-pipeline:
	$(PYTHON) -m repro.bench.runner pipeline --smoke

# Consumer-side load cost: two-pass decode+verify vs the fused
# loader's cold/warm/parallel/lazy paths; writes BENCH_load.json and
# fails if the fused cold path stops beating the two-pass baseline.
bench-load:
	$(PYTHON) -m repro.bench.runner load --smoke

# Loop-tier benchmark: dynamic check counts per pipeline over the
# loop-heavy corpus; writes BENCH_loops.json and fails unless the loop
# tier (hoist_checks,licm) strictly reduces executed checks.
bench-loops:
	$(PYTHON) -m repro.bench.runner loops --smoke

# Wire-format v2 distribution benchmark: shared-dictionary and delta
# shipping ratios plus streaming vs eager time-to-first-execute on a
# simulated link; writes BENCH_wire.json and fails if any of the three
# guards regress.
bench-wire:
	$(PYTHON) -m repro.bench.runner wire --smoke

# Deterministic fuzzing smoke: differential oracle over generated
# programs + wire-stream mutation under a fixed seed (~30 s); writes
# BENCH_fuzz.json and fails on any reject-or-equivalent violation.
fuzz-smoke:
	$(PYTHON) -m repro.bench.runner fuzz --smoke

# Lint every corpus program with the structured-diagnostics driver;
# a non-zero exit (any error-severity diagnostic) fails the build.
lint-corpus:
	@set -e; for f in src/repro/bench/corpus/*.java; do \
		echo "== $$f"; $(PYTHON) -m repro.cli lint $$f; \
	done

tables:
	$(PYTHON) -m repro.bench.runner all

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

all: test bench tables

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +; rm -rf .pytest_cache .hypothesis
