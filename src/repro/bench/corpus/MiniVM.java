// Stand-in for the paper's "classes from the Java interpreter, java":
// a little stack-based virtual machine with a switch-dispatched inner
// loop -- the instruction-dispatch pattern dominating interpreter code.
class VMError extends RuntimeException {
    VMError(String message) { super(message); }
}

class MiniVM {
    // opcodes
    static final int PUSH = 0;    // operand: immediate
    static final int ADD = 1;
    static final int SUB = 2;
    static final int MUL = 3;
    static final int DIV = 4;
    static final int DUP = 5;
    static final int SWAP = 6;
    static final int JMP = 7;     // operand: target
    static final int JZ = 8;      // operand: target
    static final int LOAD = 9;    // operand: register
    static final int STORE = 10;  // operand: register
    static final int PRINT = 11;
    static final int HALT = 12;

    int[] code;
    int[] stack;
    int[] registers;
    int sp;
    int pc;
    int steps;
    String trace;

    MiniVM(int[] code) {
        this.code = code;
        stack = new int[64];
        registers = new int[8];
        trace = "";
    }

    void push(int value) {
        if (sp >= stack.length) throw new VMError("stack overflow");
        stack[sp] = value;
        sp = sp + 1;
    }

    int pop() {
        if (sp <= 0) throw new VMError("stack underflow");
        sp = sp - 1;
        return stack[sp];
    }

    int fetch() {
        if (pc >= code.length) throw new VMError("pc out of range");
        int value = code[pc];
        pc = pc + 1;
        return value;
    }

    int run(int maxSteps) {
        pc = 0;
        sp = 0;
        steps = 0;
        while (true) {
            steps = steps + 1;
            if (steps > maxSteps) throw new VMError("step limit");
            int op = fetch();
            switch (op) {
                case PUSH: push(fetch()); break;
                case ADD: { int r = pop(); push(pop() + r); break; }
                case SUB: { int r = pop(); push(pop() - r); break; }
                case MUL: { int r = pop(); push(pop() * r); break; }
                case DIV: {
                    int r = pop();
                    if (r == 0) throw new VMError("vm division by zero");
                    push(pop() / r);
                    break;
                }
                case DUP: { int v = pop(); push(v); push(v); break; }
                case SWAP: {
                    int a = pop();
                    int b = pop();
                    push(a);
                    push(b);
                    break;
                }
                case JMP: pc = fetch(); break;
                case JZ: { int t = fetch(); if (pop() == 0) pc = t; break; }
                case LOAD: push(registers[fetch()]); break;
                case STORE: registers[fetch()] = pop(); break;
                case PRINT: trace = trace + pop() + ";"; break;
                case HALT: return pop();
                default: throw new VMError("bad opcode " + op);
            }
        }
    }

    // a VM program: factorial(n) with a register loop
    static int[] factorialProgram() {
        int[] p = new int[64];
        int i = 0;
        // r0 = n (already set), r1 = 1 (accumulator)
        p[i++] = PUSH; p[i++] = 1;
        p[i++] = STORE; p[i++] = 1;
        // loop: if r0 == 0 goto end
        int loop = i;
        p[i++] = LOAD; p[i++] = 0;
        p[i++] = JZ; int patchEnd = i; p[i++] = 0;
        // r1 = r1 * r0
        p[i++] = LOAD; p[i++] = 1;
        p[i++] = LOAD; p[i++] = 0;
        p[i++] = MUL;
        p[i++] = STORE; p[i++] = 1;
        // r0 = r0 - 1
        p[i++] = LOAD; p[i++] = 0;
        p[i++] = PUSH; p[i++] = 1;
        p[i++] = SUB;
        p[i++] = STORE; p[i++] = 0;
        p[i++] = JMP; p[i++] = loop;
        // end: push r1; halt
        p[patchEnd] = i;
        p[i++] = LOAD; p[i++] = 1;
        p[i++] = PRINT;
        p[i++] = LOAD; p[i++] = 1;
        p[i++] = HALT;
        return p;
    }

    static void main() {
        MiniVM vm = new MiniVM(factorialProgram());
        vm.registers[0] = 10;
        int result = vm.run(10000);
        System.out.println("10! = " + result + " in " + vm.steps
                           + " steps");
        System.out.println("trace = " + vm.trace);

        // arithmetic program: ((6 * 7) - 2) / 4, with stack shuffling
        int[] calc = new int[32];
        int i = 0;
        calc[i++] = PUSH; calc[i++] = 2;
        calc[i++] = PUSH; calc[i++] = 6;
        calc[i++] = PUSH; calc[i++] = 7;
        calc[i++] = MUL;
        calc[i++] = SWAP;
        calc[i++] = SUB;           // 42 - 2? stack: [2,42] swap -> [42,2]
        calc[i++] = PUSH; calc[i++] = 4;
        calc[i++] = DIV;
        calc[i++] = DUP;
        calc[i++] = PRINT;
        calc[i++] = HALT;
        MiniVM vm2 = new MiniVM(calc);
        System.out.println("calc = " + vm2.run(1000)
                           + " trace=" + vm2.trace);

        // error paths
        int[] bad = new int[4];
        bad[0] = PUSH; bad[1] = 1;
        bad[2] = PUSH; bad[3] = 99;  // runs off the end
        MiniVM vm3 = new MiniVM(bad);
        try {
            vm3.run(100);
        } catch (VMError e) {
            System.out.println("vm error: " + e.getMessage());
        }

        int[] div0 = new int[16];
        i = 0;
        div0[i++] = PUSH; div0[i++] = 8;
        div0[i++] = PUSH; div0[i++] = 0;
        div0[i++] = DIV;
        div0[i++] = HALT;
        MiniVM vm4 = new MiniVM(div0);
        try {
            vm4.run(100);
        } catch (VMError e) {
            System.out.println("vm error: " + e.getMessage());
        }
    }
}
