"""Loop tier tests: natural loops, preheaders, LICM, check hoisting.

Every transform test also checks *behavior*: the optimised module must
verify and print exactly what the unoptimised one printed.
"""

import pytest

from repro.analysis.loops import (
    ensure_preheader,
    existing_preheader,
    find_loops,
)
from repro.analysis.range import RangeFact, _RangeAnalysis
from repro.driver import parse_pass_spec
from repro.encode.deserializer import decode_module
from repro.encode.serializer import encode_module
from repro.interp.interpreter import Interpreter
from repro.opt.hoist_checks import run_hoist_checks
from repro.opt.licm import run_licm
from repro.opt.pipeline import optimize_module
from repro.pipeline import compile_to_module
from repro.ssa.cst import derive_cfg
from repro.tsa.verifier import verify_module

LOOP_PIPELINE = "constprop,safephi,hoist_checks,cse,licm,dce,cleanup"


def compiled(source: str, cls: str, method: str):
    module = compile_to_module(source)
    return module, module.function_named(cls, method)


def count(function, opcode: str) -> int:
    return sum(1 for b in function.reachable_blocks()
               for i in b.all_instrs() if i.opcode == opcode)


def in_loop_count(function, loop, opcode: str) -> int:
    return sum(1 for b in function.blocks if b.id in loop.blocks
               for i in b.all_instrs() if i.opcode == opcode)


def run(module, cls="Main", max_steps=2_000_000):
    interp = Interpreter(module, max_steps=max_steps)
    result = interp.run_main(cls)
    assert result.completed, result.exception_name()
    return result.stdout, dict(interp.check_counts)


def edge_snapshot(function):
    return [
        ([(p.id, k) for p, k in b.preds], [(s.id, k) for s, k in b.succs])
        for b in function.blocks
    ]


WHILE_SUM = """
class T {
    static int f(int n) {
        int s = 0; int i = 0;
        while (i < n) { s = s + i; i = i + 1; }
        return s;
    }
}
"""

NESTED_FOR = """
class T {
    static int f(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < i; j++) { s = s + j; }
        }
        return s;
    }
}
"""


class TestLoopDetection:
    def test_while_is_one_natural_loop(self):
        _, fn = compiled(WHILE_SUM, "T", "f")
        forest = find_loops(fn)
        assert len(forest.loops) == 1
        loop = forest.loops[0]
        assert len(loop.latches) == 1
        assert loop.header.id in loop.blocks
        assert loop.latches[0].id in loop.blocks
        assert loop.depth == 1 and loop.parent is None

    def test_nested_loops_nest(self):
        _, fn = compiled(NESTED_FOR, "T", "f")
        forest = find_loops(fn)
        assert len(forest.loops) == 2
        outer, inner = forest.loops  # outermost-first by header RPO
        assert inner.parent is outer
        assert outer.children == [inner]
        assert (outer.depth, inner.depth) == (1, 2)
        assert inner.blocks < outer.blocks
        assert forest.innermost_first()[0] is inner

    def test_loop_of_returns_innermost(self):
        _, fn = compiled(NESTED_FOR, "T", "f")
        forest = find_loops(fn)
        outer, inner = forest.loops
        assert forest.loop_of(inner.header) is inner
        assert forest.loop_of(outer.header) is outer

    def test_do_while_detected(self):
        _, fn = compiled(
            "class T { static int f(int n) { int s = 0; int i = 0;"
            " do { s = s + i; i = i + 1; } while (i < n); return s; } }",
            "T", "f")
        forest = find_loops(fn)
        assert len(forest.loops) == 1

    def test_continue_keeps_single_loop(self):
        # continue adds a second back edge path, not a second loop
        _, fn = compiled(
            "class T { static int f(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) {"
            " if (i == 2) { continue; } s = s + i; } return s; } }",
            "T", "f")
        forest = find_loops(fn)
        assert len(forest.loops) == 1


class TestInductionVariables:
    def test_for_index_recognised(self):
        _, fn = compiled(WHILE_SUM, "T", "f")
        forest = find_loops(fn)
        loop = forest.loops[0]
        ivs = forest.induction_variables(loop)
        assert any(iv.op == "add" and getattr(iv.step, "value", None) == 1
                   for iv in ivs)

    def test_stride_two(self):
        _, fn = compiled(
            "class T { static int f(int n) { int s = 0; int i = 0;"
            " while (i < n) { s = s + i; i = i + 2; } return s; } }",
            "T", "f")
        forest = find_loops(fn)
        ivs = forest.induction_variables(forest.loops[0])
        assert any(iv.op == "add" and getattr(iv.step, "value", None) == 2
                   for iv in ivs)


class TestPreheader:
    def test_reuses_structural_preheader(self):
        # the frontend's loop-init block is already a preheader: single
        # outside pred, fall-through, header its only successor
        module = compile_to_module(WHILE_SUM)
        fn = module.function_named("T", "f")
        forest = find_loops(fn)
        loop = forest.loops[0]
        blocks_before = len(fn.blocks)
        pre = ensure_preheader(fn, loop, forest)
        assert pre is not None
        assert len(fn.blocks) == blocks_before  # reused, not inserted
        assert pre.id not in loop.blocks

    def test_insert_preserves_everything(self):
        # two entry predecessors: no structural preheader exists, so one
        # must be inserted and the header phis split
        source = """
class Main {
    static int f(int n, boolean c) {
        int s;
        if (c) { s = 1; } else { s = 2; }
        while (s < n) { s = s + 3; }
        return s;
    }
    static void main() { System.out.println(f(20, true)); }
}
"""
        baseline, _ = run(compile_to_module(source))
        module = compile_to_module(source)
        fn = module.function_named("Main", "f")
        forest = find_loops(fn)
        loop = forest.loops[0]
        blocks_before = len(fn.blocks)
        pre = ensure_preheader(fn, loop, forest)
        assert pre is not None
        assert len(fn.blocks) == blocks_before + 1
        assert loop.preheader is pre
        assert pre.succs == [(loop.header, "norm")]
        # edges were rewired by hand; the canonical CST walk must agree
        snapshot = edge_snapshot(fn)
        derive_cfg(fn)
        assert edge_snapshot(fn) == snapshot
        verify_module(module)
        assert run(module)[0] == baseline
        # idempotent: a second request returns the same block
        assert ensure_preheader(fn, loop, forest) is pre
        assert len(fn.blocks) == blocks_before + 1

    def test_multiple_entry_preds_split_phis(self):
        source = """
class Main {
    static int f(int n, boolean c) {
        int s;
        if (c) { s = 1; } else { s = 2; }
        int i = 0;
        while (i < n) { s = s + i; i = i + 1; }
        return s;
    }
    static void main() {
        System.out.println(f(5, true) + f(5, false));
    }
}
"""
        baseline, _ = run(compile_to_module(source))
        module = compile_to_module(source)
        fn = module.function_named("Main", "f")
        forest = find_loops(fn)
        pre = ensure_preheader(fn, forest.loops[0], forest)
        assert pre is not None
        verify_module(module)
        assert run(module)[0] == baseline

    def test_wire_round_trip_after_insertion(self):
        module = compile_to_module(WHILE_SUM)
        fn = module.function_named("T", "f")
        forest = find_loops(fn)
        assert ensure_preheader(fn, forest.loops[0], forest) is not None
        wire = encode_module(module)
        decoded = decode_module(wire)
        verify_module(decoded)
        assert encode_module(decoded) == wire

    def test_structural_detection(self):
        module = compile_to_module(WHILE_SUM)
        fn = module.function_named("T", "f")
        forest = find_loops(fn)
        loop = forest.loops[0]
        assert existing_preheader(loop) is None or \
            existing_preheader(loop).id not in loop.blocks
        pre = ensure_preheader(fn, loop, forest)
        fresh = find_loops(fn)
        assert existing_preheader(fresh.loops[0]).id == pre.id


LICM_INVARIANT = """
class Main {
    static int f(int x, int y, int n) {
        int s = 0; int i = 0;
        while (i < n) { s = s + x * y; i = i + 1; }
        return s;
    }
    static void main() { System.out.println(f(3, 4, 5)); }
}
"""


class TestLicm:
    def test_hoists_invariant_arithmetic(self):
        baseline, _ = run(compile_to_module(LICM_INVARIANT))
        module = compile_to_module(LICM_INVARIANT)
        fn = module.function_named("Main", "f")
        forest = find_loops(fn)
        loop = forest.loops[0]
        assert in_loop_count(fn, loop, "primitive") > 0
        stats = run_licm(fn, forest)
        assert stats["licm_hoisted"] >= 1
        # the frontend's init block was reused, none inserted
        assert stats["preheaders"] == 0
        # the multiply left the loop body
        mults = [i for b in fn.blocks if b.id in loop.blocks
                 for i in b.instrs
                 if i.opcode == "primitive" and i.operation.name == "mul"]
        assert mults == []
        verify_module(module)
        assert run(module)[0] == baseline

    def test_does_not_hoist_load_past_call(self):
        # g() may store T.a, so t.a must reload every iteration
        source = """
class T { int a;
    static void g(T t) { t.a = t.a + 1; }
    static int f(T t, int n) {
        int s = 0; int i = 0;
        while (i < n) { g(t); s = s + t.a; i = i + 1; }
        return s;
    }
}
"""
        _, fn = compiled(source, "T", "f")
        forest = find_loops(fn)
        loop = forest.loops[0]
        before = in_loop_count(fn, loop, "getfield")
        stats = run_licm(fn, forest)
        assert in_loop_count(fn, loop, "getfield") == before
        assert stats["licm_hoisted"] == 0

    def test_does_not_hoist_load_past_same_field_store(self):
        source = """
class T { int a;
    static int f(T t, int n) {
        int s = 0; int i = 0;
        while (i < n) { s = s + t.a; t.a = i; i = i + 1; }
        return s;
    }
}
"""
        _, fn = compiled(source, "T", "f")
        forest = find_loops(fn)
        loop = forest.loops[0]
        before = in_loop_count(fn, loop, "getfield")
        run_licm(fn, forest)
        assert in_loop_count(fn, loop, "getfield") == before

    def test_guarded_load_needs_the_check_hoist_cascade(self):
        # every getfield reads a nullcheck result; while that check sits
        # in the loop the load's operand is not invariant, so licm alone
        # must refuse -- only the hoist_checks -> cse -> licm cascade
        # (the ALL_PASSES slot order) can migrate the load out
        source = """
class Main { int a;
    static int f(int n) {
        Main t = new Main();
        t.a = 5;
        int s = 0; int i = 0;
        while (i < n) { s = s + t.a; i = i + 1; }
        return s;
    }
    static void main() { System.out.println(f(4)); }
}
"""
        module = compile_to_module(source)
        fn = module.function_named("Main", "f")
        forest = find_loops(fn)
        assert run_licm(fn, forest)["licm_hoisted"] == 0

        baseline, _ = run(compile_to_module(source))
        module = compile_to_module(source)
        fn = module.function_named("Main", "f")
        flat = optimize_module(module, passes="hoist_checks,cse,licm",
                               check_after_each_pass=True)
        stats = {}
        for row in flat:
            for key, value in row.items():
                if isinstance(value, int) and not isinstance(value, bool):
                    stats[key] = stats.get(key, 0) + value
        assert stats["checks_hoisted_null"] >= 1
        assert stats["licm_hoisted"] >= 1
        loop = find_loops(fn).loops[0]
        assert in_loop_count(fn, loop, "getfield") == 0
        assert in_loop_count(fn, loop, "nullcheck") == 0
        verify_module(module)
        assert run(module)[0] == baseline

    def test_never_hoists_trapping_division(self):
        # d could be zero: the division must stay under the loop guard
        source = """
class T {
    static int f(int d, int n) {
        int s = 0; int i = 0;
        while (i < n) { s = s + 100 / d; i = i + 1; }
        return s;
    }
}
"""
        _, fn = compiled(source, "T", "f")
        forest = find_loops(fn)
        loop = forest.loops[0]

        def in_loop_divs():
            return len([
                i for b in fn.blocks if b.id in loop.blocks
                for i in b.instrs
                if i.opcode == "xprimitive" and i.operation.name == "div"])

        assert in_loop_divs() == 1
        run_licm(fn, forest)
        assert in_loop_divs() == 1


class TestHoistChecks:
    def test_case_a_provable_nullcheck(self):
        # the array is freshly constructed before the loop: nonnull is a
        # must-fact at the header entry, so the in-loop nullcheck of a
        # constant-index access provably passes
        source = """
class Main {
    static int f(int n) {
        int[] a = new int[4];
        a[0] = 7;
        int s = 0; int i = 0;
        while (i < n) { s = s + a[0]; i = i + 1; }
        return s;
    }
    static void main() { System.out.println(f(3)); }
}
"""
        baseline, base_checks = run(compile_to_module(source))
        module = compile_to_module(source)
        fn = module.function_named("Main", "f")
        stats = run_hoist_checks(fn)
        assert stats["checks_hoisted_null"] + stats["checks_hoisted_idx"] > 0
        verify_module(module)
        out, checks = run(module)
        assert out == baseline
        assert sum(checks.values()) < sum(base_checks.values())

    def test_case_b_guaranteed_first_trip(self):
        # a is a parameter (nullness unknown) but the loop provably runs
        # its first iteration (0 < 4) and reaches the checks before any
        # side effect: trapping in the preheader is observably identical
        source = """
class T {
    static int f(int[] a) {
        int s = 0; int i = 0;
        while (i < 4) { s = s + a[0]; i = i + 1; }
        return s;
    }
}
"""
        _, fn = compiled(source, "T", "f")
        forest = find_loops(fn)
        loop = forest.loops[0]
        assert in_loop_count(fn, loop, "nullcheck") == 1
        stats = run_hoist_checks(fn, forest)
        assert stats["checks_hoisted_null"] == 1
        assert in_loop_count(fn, loop, "nullcheck") == 0

    def test_zero_trip_hazard_not_hoisted(self):
        # with n = 0 the body never runs; hoisting the nullcheck would
        # make f(null, 0) throw where the original returns 0
        source = """
class Main {
    static int f(int[] a, int n) {
        int s = 0; int i = 0;
        while (i < n) { s = s + a[2]; i = i + 1; }
        return s;
    }
    static void main() { System.out.println(f(null, 0)); }
}
"""
        module = compile_to_module(source)
        fn = module.function_named("Main", "f")
        stats = run_hoist_checks(fn)
        assert stats["checks_hoisted_null"] == 0
        assert stats["checks_hoisted_idx"] == 0
        verify_module(module)
        assert run(module)[0] == "0\n"

    def test_loop_inside_try_skipped(self):
        # a hoisted trap would need an exception edge from the preheader
        source = """
class T {
    static int f(int[] a, int n) {
        int s = 0;
        try {
            int i = 0;
            while (i < 4) { s = s + a[0]; i = i + 1; }
        } catch (NullPointerException e) { s = -1; }
        return s;
    }
}
"""
        _, fn = compiled(source, "T", "f")
        stats = run_hoist_checks(fn)
        assert stats["checks_hoisted_null"] == 0
        assert stats["checks_hoisted_idx"] == 0

    def test_trap_still_raises_after_hoist(self):
        # Case B moves the trap to the preheader; the observable
        # exception must be unchanged
        source = """
class Main {
    static int f(int[] a) {
        int s = 0; int i = 0;
        while (i < 4) { s = s + a[0]; i = i + 1; }
        return s;
    }
    static void main() {
        try { System.out.println(f(null)); }
        catch (NullPointerException e) { System.out.println("npe"); }
    }
}
"""
        baseline, _ = run(compile_to_module(source))
        assert baseline == "npe\n"
        module = compile_to_module(source)
        stats = run_hoist_checks(module.function_named("Main", "f"))
        assert stats["checks_hoisted_null"] == 1
        verify_module(module)
        assert run(module)[0] == "npe\n"


LOOP_HEAVY = """
class Main {
    static void main() {
        int[] a = new int[8];
        int k = 3;
        for (int i = 0; i < 8; i++) { a[i] = i; }
        int s = 0;
        for (int r = 0; r < 50; r++) { s = s + a[k] + a.length; }
        System.out.println(s);
    }
}
"""


class TestPipelineIntegration:
    def test_spec_order_is_slot_order(self):
        assert parse_pass_spec("licm,hoist_checks") == \
            ("hoist_checks", "licm")
        assert parse_pass_spec("licm,cse,hoist_checks") == \
            ("hoist_checks", "cse", "licm")

    def test_full_pipeline_reduces_dynamic_checks(self):
        baseline, base_checks = run(compile_to_module(LOOP_HEAVY))
        module = compile_to_module(LOOP_HEAVY)
        optimize_module(module, passes=LOOP_PIPELINE,
                        check_after_each_pass=True)
        verify_module(module)
        out, checks = run(module)
        assert out == baseline
        assert sum(checks.values()) < sum(base_checks.values())

    def test_tier_alone_reduces_dynamic_checks(self):
        baseline, base_checks = run(compile_to_module(LOOP_HEAVY))
        module = compile_to_module(LOOP_HEAVY)
        optimize_module(module, passes="hoist_checks,licm",
                        check_after_each_pass=True)
        verify_module(module)
        out, checks = run(module)
        assert out == baseline
        assert sum(checks.values()) < sum(base_checks.values())

    @pytest.mark.slow
    def test_loop_pipeline_round_trips_on_corpus(self):
        from repro.bench.corpus import corpus_source
        source = corpus_source("BitSieve")
        baseline, _ = run(compile_to_module(source), "BitSieve",
                          max_steps=50_000_000)
        module = compile_to_module(source)
        optimize_module(module, passes=LOOP_PIPELINE,
                        check_after_each_pass=True)
        verify_module(module)
        wire = encode_module(module)
        decoded = decode_module(wire)
        verify_module(decoded)
        out, _ = run(decoded, "BitSieve", max_steps=50_000_000)
        assert out == baseline

    def test_loops_analysis_registered(self):
        from repro.analysis.manager import AnalysisManager
        module = compile_to_module(WHILE_SUM)
        fn = module.function_named("T", "f")
        manager = AnalysisManager()
        forest = manager.get("loops", fn)
        assert len(forest.loops) == 1
        assert manager.get("loops", fn) is forest  # cached


class TestWidenRegression:
    def _analysis(self):
        module = compile_to_module(WHILE_SUM)
        return _RangeAnalysis(module.function_named("T", "f"))

    def test_widen_intersects_below_sets(self):
        # taking new.below verbatim would keep a bound that only held on
        # the latest path; widening must intersect like join() does
        analysis = self._analysis()
        old = RangeFact({}, {7: frozenset({1, 2})})
        new = RangeFact({}, {7: frozenset({2, 3})})
        widened = analysis.widen(old, new)
        assert widened.below == {7: frozenset({2})}

    def test_widen_drops_disjoint_below_sets(self):
        analysis = self._analysis()
        old = RangeFact({}, {7: frozenset({1})})
        new = RangeFact({}, {7: frozenset({2})})
        assert analysis.widen(old, new).below == {}

    def test_widen_ranges_monotone(self):
        from repro.jmath import INT_MAX
        analysis = self._analysis()
        old = RangeFact({5: (0, 10)}, {})
        grown = analysis.widen(old, RangeFact({5: (0, 12)}, {}))
        assert grown.ranges[5] == (0, INT_MAX)
        stable = analysis.widen(old, RangeFact({5: (2, 10)}, {}))
        assert stable.ranges[5] == (0, 10)
