"""Symbolic JVM instructions with real encoded byte sizes.

Instructions are kept symbolic (mnemonic + operands) so the interpreter
and verifier can work directly on them; :func:`insn_size` gives the byte
length each instruction has in a real class file, which the size model
and branch-offset layout use.
"""

from __future__ import annotations

from typing import Optional


class Insn:
    """One JVM instruction.

    ``args`` depends on the mnemonic: local slot index, constant value,
    label id (branches), or a symbolic member reference (a constant-pool
    citizen).
    """

    __slots__ = ("op", "args", "offset")

    def __init__(self, op: str, *args):
        self.op = op
        self.args = args
        #: byte offset in the method's code array (assigned at layout)
        self.offset = -1

    def __repr__(self) -> str:  # pragma: no cover
        rendered = " ".join(str(a) for a in self.args)
        return f"<{self.op} {rendered}>".replace(" >", ">")


#: one-byte instructions
_SIZE1 = frozenset("""
    nop aconst_null
    iaload laload faload daload aaload baload caload saload
    iastore lastore fastore dastore aastore bastore castore sastore
    pop pop2 dup dup_x1 dup_x2 dup2 swap
    iadd ladd fadd dadd isub lsub fsub dsub imul lmul fmul dmul
    idiv ldiv fdiv ddiv irem lrem frem drem ineg lneg fneg dneg
    ishl lshl ishr lshr iushr lushr iand land ior lor ixor lxor
    i2l i2f i2d l2i l2f l2d f2i f2l f2d d2i d2l d2f i2b i2c i2s
    lcmp fcmpl fcmpg dcmpl dcmpg
    ireturn lreturn freturn dreturn areturn return
    arraylength athrow monitorenter monitorexit
""".split())

#: three-byte instructions (opcode + 2-byte operand)
_SIZE3 = frozenset("""
    sipush ldc_w ldc2_w
    ifeq ifne iflt ifge ifgt ifle
    if_icmpeq if_icmpne if_icmplt if_icmpge if_icmpgt if_icmple
    if_acmpeq if_acmpne ifnull ifnonnull goto jsr
    getstatic putstatic getfield putfield
    invokevirtual invokespecial invokestatic
    new anewarray checkcast instanceof
""".split())


def insn_size(insn: Insn) -> int:
    """Encoded size in bytes (wide forms for large local indices)."""
    op = insn.op
    if op == "iconst":
        value = insn.args[0]
        if -1 <= value <= 5:
            return 1  # iconst_<n>
        if -128 <= value <= 127:
            return 2  # bipush
        if -32768 <= value <= 32767:
            return 3  # sipush
        return 2  # ldc (cp index < 256 assumed for the model)
    if op == "lconst":
        return 1 if insn.args[0] in (0, 1) else 3  # lconst_<n> / ldc2_w
    if op == "fconst":
        return 1 if insn.args[0] in (0.0, 1.0, 2.0) else 2
    if op == "dconst":
        return 1 if insn.args[0] in (0.0, 1.0) else 3
    if op == "ldc_string":
        return 2
    if op in ("iload", "lload", "fload", "dload", "aload",
              "istore", "lstore", "fstore", "dstore", "astore"):
        slot = insn.args[0]
        if slot <= 3:
            return 1  # iload_<n>
        if slot <= 255:
            return 2
        return 4  # wide
    if op == "iinc":
        return 3 if insn.args[0] <= 255 and -128 <= insn.args[1] <= 127 \
            else 6
    if op == "newarray":
        return 2
    if op == "multianewarray":
        return 4
    if op in _SIZE1:
        return 1
    if op in _SIZE3:
        return 3
    raise ValueError(f"unknown mnemonic {op}")


#: mnemonic -> real JVM opcode byte (for class-file emission); variable
#: forms are resolved during emission
OPCODE_BYTES = {
    "nop": 0x00, "aconst_null": 0x01,
    "bipush": 0x10, "sipush": 0x11, "ldc": 0x12, "ldc_w": 0x13,
    "ldc2_w": 0x14,
    "iload": 0x15, "lload": 0x16, "fload": 0x17, "dload": 0x18,
    "aload": 0x19,
    "iaload": 0x2E, "laload": 0x2F, "faload": 0x30, "daload": 0x31,
    "aaload": 0x32, "baload": 0x33, "caload": 0x34, "saload": 0x35,
    "istore": 0x36, "lstore": 0x37, "fstore": 0x38, "dstore": 0x39,
    "astore": 0x3A,
    "iastore": 0x4F, "lastore": 0x50, "fastore": 0x51, "dastore": 0x52,
    "aastore": 0x53, "bastore": 0x54, "castore": 0x55, "sastore": 0x56,
    "pop": 0x57, "pop2": 0x58, "dup": 0x59, "dup_x1": 0x5A,
    "dup_x2": 0x5B, "dup2": 0x5C, "swap": 0x5F,
    "iadd": 0x60, "ladd": 0x61, "fadd": 0x62, "dadd": 0x63,
    "isub": 0x64, "lsub": 0x65, "fsub": 0x66, "dsub": 0x67,
    "imul": 0x68, "lmul": 0x69, "fmul": 0x6A, "dmul": 0x6B,
    "idiv": 0x6C, "ldiv": 0x6D, "fdiv": 0x6E, "ddiv": 0x6F,
    "irem": 0x70, "lrem": 0x71, "frem": 0x72, "drem": 0x73,
    "ineg": 0x74, "lneg": 0x75, "fneg": 0x76, "dneg": 0x77,
    "ishl": 0x78, "lshl": 0x79, "ishr": 0x7A, "lshr": 0x7B,
    "iushr": 0x7C, "lushr": 0x7D,
    "iand": 0x7E, "land": 0x7F, "ior": 0x80, "lor": 0x81,
    "ixor": 0x82, "lxor": 0x83, "iinc": 0x84,
    "i2l": 0x85, "i2f": 0x86, "i2d": 0x87, "l2i": 0x88, "l2f": 0x89,
    "l2d": 0x8A, "f2i": 0x8B, "f2l": 0x8C, "f2d": 0x8D, "d2i": 0x8E,
    "d2l": 0x8F, "d2f": 0x90, "i2b": 0x91, "i2c": 0x92, "i2s": 0x93,
    "lcmp": 0x94, "fcmpl": 0x95, "fcmpg": 0x96, "dcmpl": 0x97,
    "dcmpg": 0x98,
    "ifeq": 0x99, "ifne": 0x9A, "iflt": 0x9B, "ifge": 0x9C,
    "ifgt": 0x9D, "ifle": 0x9E,
    "if_icmpeq": 0x9F, "if_icmpne": 0xA0, "if_icmplt": 0xA1,
    "if_icmpge": 0xA2, "if_icmpgt": 0xA3, "if_icmple": 0xA4,
    "if_acmpeq": 0xA5, "if_acmpne": 0xA6,
    "goto": 0xA7,
    "ireturn": 0xAC, "lreturn": 0xAD, "freturn": 0xAE, "dreturn": 0xAF,
    "areturn": 0xB0, "return": 0xB1,
    "getstatic": 0xB2, "putstatic": 0xB3, "getfield": 0xB4,
    "putfield": 0xB5,
    "invokevirtual": 0xB6, "invokespecial": 0xB7, "invokestatic": 0xB8,
    "new": 0xBB, "newarray": 0xBC, "anewarray": 0xBD,
    "arraylength": 0xBE, "athrow": 0xBF, "checkcast": 0xC0,
    "instanceof": 0xC1,
    "multianewarray": 0xC5, "ifnull": 0xC6, "ifnonnull": 0xC7,
}

#: newarray atype codes (JVM spec table)
NEWARRAY_ATYPE = {
    "boolean": 4, "char": 5, "float": 6, "double": 7,
    "byte": 8, "short": 9, "int": 10, "long": 11,
}

#: branch mnemonics (their single argument is a label id)
BRANCHES = frozenset("""
    ifeq ifne iflt ifge ifgt ifle
    if_icmpeq if_icmpne if_icmplt if_icmpge if_icmpgt if_icmple
    if_acmpeq if_acmpne ifnull ifnonnull goto
""".split())
