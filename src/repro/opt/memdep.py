"""Memory dependence via the ``Mem`` pseudo-variable (paper Section 8).

SSA hides the ordering between field/array stores and loads.  The paper
threads a special variable ``Mem`` through the program: every store and
every call produces a new value of ``Mem``, loads take the current value
as an extra (virtual) operand, and joins whose incoming ``Mem`` values
differ introduce a ``Mem`` phi.  The mechanism exists only during
optimisation and is never transmitted.

This module computes, for every instruction, the *memory version* in
effect just before it: two loads with equal keys and equal memory
versions are guaranteed to see the same memory state on every path, which
is exactly the licence CSE needs.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.ssa import ir
from repro.ssa.ir import Block, Function, Instr

#: instructions that define a new value of Mem
_STORE_TYPES = (ir.SetField, ir.SetElt, ir.SetStatic, ir.Call)

#: the partition every access belongs to in unified mode
UNIFIED = ("mem",)


def _clobbers_memory(instr: Instr) -> bool:
    return isinstance(instr, _STORE_TYPES)


def partition_of(instr: Instr):
    """The memory partition an access touches (field analysis, Section 8:
    "partitioning Mem by field name"; arrays partition by element type as
    in type-based alias analysis [12])."""
    if isinstance(instr, (ir.GetField, ir.SetField)):
        return ("field", instr.field.qualified_name)
    if isinstance(instr, (ir.GetStatic, ir.SetStatic)):
        return ("field", instr.field.qualified_name)
    if isinstance(instr, (ir.GetElt, ir.SetElt)):
        return ("array", str(instr.array_type.element))
    return None


def _clobbers_partition(instr: Instr, partition) -> bool:
    if isinstance(instr, ir.Call):
        return True  # no interprocedural analysis: calls clobber all
    if not isinstance(instr, _STORE_TYPES):
        return False
    return partition_of(instr) == partition


class MemDep:
    """Memory versions for one function.

    Versions are opaque integers; equality means "provably the same
    memory state".  Joins are handled optimistically with a fixpoint:
    a block whose predecessors all agree inherits their version, any
    disagreement mints a fresh phi version for that block.
    """

    def __init__(self, function: Function, partitioned: bool = False):
        self.function = function
        #: True => field analysis: separate Mem per field / element type
        self.partitioned = partitioned
        self.entry_version: dict[int, int] = {}
        self.exit_version: dict[int, int] = {}
        #: version in effect just before each instruction
        self.before: dict[int, int] = {}
        self._next = 1
        self._phi_versions: dict[int, int] = {}
        self._store_versions: dict[int, int] = {}
        if partitioned:
            self._compute_partitioned()
        else:
            self._compute()

    def _fresh(self) -> int:
        self._next += 1
        return self._next

    def _phi_version(self, block: Block) -> int:
        version = self._phi_versions.get(block.id)
        if version is None:
            version = self._fresh()
            self._phi_versions[block.id] = version
        return version

    def _store_version(self, instr: Instr) -> int:
        version = self._store_versions.get(instr.id)
        if version is None:
            version = self._fresh()
            self._store_versions[instr.id] = version
        return version

    def _compute(self) -> None:
        blocks = self.function.reachable_blocks()
        entry = self.function.entry
        self.entry_version[entry.id] = 0
        changed = True
        while changed:
            changed = False
            for block in blocks:
                if block is entry:
                    incoming: Optional[int] = 0
                else:
                    seen: set[int] = set()
                    unknown = False
                    for pred, _kind in block.preds:
                        version = self.exit_version.get(pred.id)
                        if version is None:
                            unknown = True
                        else:
                            seen.add(version)
                    if not seen:
                        continue  # all preds unknown so far
                    if len(seen) == 1 and not unknown:
                        incoming = seen.pop()
                    elif len(seen) == 1 and unknown:
                        # optimistic: assume agreement until proven wrong
                        incoming = next(iter(seen))
                    else:
                        incoming = self._phi_version(block)
                if self.entry_version.get(block.id) != incoming:
                    self.entry_version[block.id] = incoming
                    changed = True
                current = incoming
                for instr in block.all_instrs():
                    if _clobbers_memory(instr):
                        current = self._store_version(instr)
                if self.exit_version.get(block.id) != current:
                    self.exit_version[block.id] = current
                    changed = True
        # final per-instruction pass
        for block in blocks:
            current = self.entry_version.get(block.id, 0)
            for instr in block.all_instrs():
                self.before[instr.id] = current
                if _clobbers_memory(instr):
                    current = self._store_version(instr)

    def version_before(self, instr: Instr) -> int:
        return self.before.get(instr.id, 0)

    # ------------------------------------------------------------------
    # partitioned (field-analysis) mode

    def _compute_partitioned(self) -> None:
        """One version lattice per partition; loads record the version of
        their own partition only."""
        partitions = set()
        blocks = self.function.reachable_blocks()
        for block in blocks:
            for instr in block.all_instrs():
                partition = partition_of(instr)
                if partition is not None:
                    partitions.add(partition)
        for partition in sorted(partitions):
            self._compute_one_partition(blocks, partition)

    def _compute_one_partition(self, blocks, partition) -> None:
        entry_version: dict[int, int] = {}
        exit_version: dict[int, int] = {}
        entry = self.function.entry
        entry_version[entry.id] = 0
        changed = True
        while changed:
            changed = False
            for block in blocks:
                if block is entry:
                    incoming: Optional[int] = 0
                else:
                    seen: set[int] = set()
                    for pred, _kind in block.preds:
                        version = exit_version.get(pred.id)
                        if version is not None:
                            seen.add(version)
                    if not seen:
                        continue
                    if len(seen) == 1:
                        incoming = next(iter(seen))
                    else:
                        incoming = self._phi_version_for(block, partition)
                if entry_version.get(block.id) != incoming:
                    entry_version[block.id] = incoming
                    changed = True
                current = incoming
                for instr in block.all_instrs():
                    if _clobbers_partition(instr, partition):
                        current = self._store_version(instr)
                if exit_version.get(block.id) != current:
                    exit_version[block.id] = current
                    changed = True
        for block in blocks:
            current = entry_version.get(block.id, 0)
            for instr in block.all_instrs():
                if partition_of(instr) == partition:
                    self.before[instr.id] = current
                if _clobbers_partition(instr, partition):
                    current = self._store_version(instr)

    def _phi_version_for(self, block: Block, partition) -> int:
        key = hash((block.id, partition))
        version = self._phi_versions.get(key)
        if version is None:
            version = self._fresh()
            self._phi_versions[key] = version
        return version
