"""Reusable static analysis over the SafeTSA IR.

The paper's central claim is that safety is a *checkable property of the
representation*; this package turns that check into a reusable analysis
layer instead of a monolithic fail-fast verifier:

* :mod:`repro.analysis.diagnostics` -- structured diagnostics with stable
  error codes, severities and (function, block, instruction) locations;
* :mod:`repro.analysis.dataflow` -- a generic forward/backward worklist
  solver over the CFG (lattice protocol, per-edge refinement, merges at
  joins including exception edges, widening at loop heads);
* :mod:`repro.analysis.nullness` -- which safe-ref facts already hold on
  each edge (forward must-analysis);
* :mod:`repro.analysis.range` -- interval analysis of ``int``-plane
  values with array lengths as symbolic bounds;
* :mod:`repro.analysis.liveness` -- backward liveness plus SSA-graph
  observability;
* :mod:`repro.analysis.lint` -- the rule registry and lint driver that
  combines verifier diagnostics with analysis-backed lint rules.

The submodules that depend on :mod:`repro.tsa.verifier` (``lint``) are
imported lazily to keep ``repro.tsa.verifier -> repro.analysis.
diagnostics`` cycle-free; import them explicitly.
"""

from repro.analysis.diagnostics import (  # noqa: F401
    DIAGNOSTIC_CODES,
    Diagnostic,
    Severity,
    has_errors,
)

__all__ = ["DIAGNOSTIC_CODES", "Diagnostic", "Severity", "has_errors"]
