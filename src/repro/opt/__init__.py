"""Producer-side optimisations (paper Section 8).

Passes: constant propagation, common subexpression elimination over a
``Mem``-threaded memory dependence structure, check elimination enabled by
type separation, and dead-code elimination.  All passes run on the SSA
form and preserve the invariant that every operand dominates its use on
the correct register plane.
"""

from repro.opt.pipeline import optimize_module, optimize_function

__all__ = ["optimize_module", "optimize_function"]
