// Stand-in for sun.math.BitSieve: a sieve of Eratosthenes over a packed
// int[] bit set; shift/mask-heavy integer code.
class BitSieve {
    int[] bits;
    int limit;

    BitSieve(int limit) {
        this.limit = limit;
        bits = new int[(limit >> 5) + 1];
    }

    void set(int index) {
        bits[index >> 5] = bits[index >> 5] | (1 << (index & 31));
    }

    boolean get(int index) {
        return (bits[index >> 5] & (1 << (index & 31))) != 0;
    }

    void sieve() {
        set(0);
        if (limit > 1) set(1);
        for (int p = 2; p * p <= limit; p++) {
            if (!get(p)) {
                for (int multiple = p * p; multiple <= limit;
                     multiple += p) {
                    set(multiple);
                }
            }
        }
    }

    int countPrimes() {
        int count = 0;
        for (int i = 2; i <= limit; i++) {
            if (!get(i)) count++;
        }
        return count;
    }

    int nthPrime(int n) {
        int seen = 0;
        for (int i = 2; i <= limit; i++) {
            if (!get(i)) {
                seen++;
                if (seen == n) return i;
            }
        }
        return -1;
    }

    static void main() {
        BitSieve sieve = new BitSieve(20000);
        sieve.sieve();
        System.out.println("primes=" + sieve.countPrimes());
        System.out.println("p100=" + sieve.nthPrime(100));
        System.out.println("p1000=" + sieve.nthPrime(1000));
        long sum = 0;
        for (int i = 2; i <= 1000; i++) {
            if (!sieve.get(i)) sum += i;
        }
        System.out.println("sum1000=" + sum);
        // twin primes below 10000
        int twins = 0;
        for (int i = 3; i + 2 <= 10000; i++) {
            if (!sieve.get(i) && !sieve.get(i + 2)) twins++;
        }
        System.out.println("twins=" + twins);
    }
}
