"""Renderers for the paper's evaluation artifacts.

``figure5`` prints the size / instruction-count comparison (paper
Figure 5), ``figure6`` the phi / null-check / array-check reductions
(paper Figure 6), and the ablation/pruning tables back experiments
E3 and E4 (see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.metrics import ClassMetrics


def _fmt_delta(before: int, after: int) -> str:
    if before == 0:
        return "N/A"
    return f"{round(100 * (after - before) / before):+d}%"


def figure5_table(rows: list[ClassMetrics]) -> str:
    """Figure 5: file sizes and instruction counts, per class."""
    header = (f"{'Class Name':24} | {'Bytecode':>9} {'SafeTSA':>9} "
              f"{'TSA-opt':>9} | {'Bytecode':>9} {'SafeTSA':>9} "
              f"{'TSA-opt':>9}")
    ruler = "-" * len(header)
    lines = [
        f"{'':24} | {'file size (bytes)':^29} | "
        f"{'number of instructions':^29}",
        header,
        ruler,
    ]
    program = None
    for row in rows:
        if row.program != program:
            program = row.program
            lines.append(f"{program}")
        lines.append(
            f"  {row.class_name:22} | {row.bytecode_size:9} "
            f"{row.tsa_size:9} {row.tsa_opt_size:9} | "
            f"{row.bytecode_insns:9} {row.tsa_insns:9} "
            f"{row.tsa_opt_insns:9}")
    total = _totals(rows)
    lines.append(ruler)
    lines.append(
        f"  {'TOTAL':22} | {total['bytecode_size']:9} "
        f"{total['tsa_size']:9} {total['tsa_opt_size']:9} | "
        f"{total['bytecode_insns']:9} {total['tsa_insns']:9} "
        f"{total['tsa_opt_insns']:9}")
    ratio_plain = total["tsa_insns"] / max(total["bytecode_insns"], 1)
    ratio_size = total["tsa_size"] / max(total["bytecode_size"], 1)
    opt_gain = 1 - total["tsa_opt_insns"] / max(total["tsa_insns"], 1)
    lines.append("")
    lines.append(f"SafeTSA / bytecode instructions: {ratio_plain:.2f}  "
                 f"(paper Figure 5 rows: ~0.60-0.75)")
    lines.append(f"SafeTSA / bytecode file size:    {ratio_size:.2f}  "
                 f"(paper: usually smaller)")
    lines.append(f"optimisation instruction gain:   {opt_gain:.1%}  "
                 f"(paper: >10% in most cases)")
    return "\n".join(lines)


def _totals(rows: list[ClassMetrics]) -> dict:
    keys = ("bytecode_size", "tsa_size", "tsa_opt_size",
            "bytecode_insns", "tsa_insns", "tsa_opt_insns",
            "phis_before", "phis_after", "nullchecks_before",
            "nullchecks_after", "idxchecks_before", "idxchecks_after")
    return {key: sum(getattr(row, key) for row in rows) for key in keys}


def figure6_table(rows: list[ClassMetrics]) -> str:
    """Figure 6: check/phi counts before and after optimisation."""
    header = (f"{'Class Name':24} | {'Phi Instructions':^20} | "
              f"{'Null-Checks':^20} | {'Array-Checks':^20}")
    sub = (f"{'':24} | {'Before':>6} {'After':>6} {'d%':>5} | "
           f"{'Before':>6} {'After':>6} {'d%':>5} | "
           f"{'Before':>6} {'After':>6} {'d%':>5}")
    ruler = "-" * len(sub)
    lines = [header, sub, ruler]
    program = None
    for row in rows:
        if row.program != program:
            program = row.program
            lines.append(f"{program}")
        lines.append(
            f"  {row.class_name:22} | "
            f"{row.phis_before:6} {row.phis_after:6} "
            f"{_fmt_delta(row.phis_before, row.phis_after):>5} | "
            f"{row.nullchecks_before:6} {row.nullchecks_after:6} "
            f"{_fmt_delta(row.nullchecks_before, row.nullchecks_after):>5} | "
            f"{row.idxchecks_before:6} {row.idxchecks_after:6} "
            f"{_fmt_delta(row.idxchecks_before, row.idxchecks_after):>5}")
    total = _totals(rows)
    lines.append(ruler)
    lines.append(
        f"  {'TOTAL':22} | "
        f"{total['phis_before']:6} {total['phis_after']:6} "
        f"{_fmt_delta(total['phis_before'], total['phis_after']):>5} | "
        f"{total['nullchecks_before']:6} {total['nullchecks_after']:6} "
        f"{_fmt_delta(total['nullchecks_before'], total['nullchecks_after']):>5} | "
        f"{total['idxchecks_before']:6} {total['idxchecks_after']:6} "
        f"{_fmt_delta(total['idxchecks_before'], total['idxchecks_after']):>5}")
    return "\n".join(lines)


def phi_pruning_table(results: list[tuple[str, int, int]]) -> str:
    """E3: phi counts with and without Briggs pruning, per program."""
    lines = [f"{'Program':16} {'unpruned':>9} {'pruned':>8} {'d%':>6}",
             "-" * 42]
    total_unpruned = 0
    total_pruned = 0
    for name, unpruned, pruned in results:
        total_unpruned += unpruned
        total_pruned += pruned
        lines.append(f"{name:16} {unpruned:9} {pruned:8} "
                     f"{_fmt_delta(unpruned, pruned):>6}")
    lines.append("-" * 42)
    lines.append(f"{'TOTAL':16} {total_unpruned:9} {total_pruned:8} "
                 f"{_fmt_delta(total_unpruned, total_pruned):>6} "
                 f"(paper: -31% on average)")
    return "\n".join(lines)


def ablation_table(results: list[tuple[str, dict[str, int]]]) -> str:
    """E4: per-pass instruction-count contribution."""
    passes = ("none", "constprop", "cse", "dce", "all")
    header = f"{'Program':16}" + "".join(f"{p:>11}" for p in passes)
    lines = [header, "-" * len(header)]
    for name, counts in results:
        lines.append(f"{name:16}" + "".join(
            f"{counts[p]:11}" for p in passes))
    return "\n".join(lines)
