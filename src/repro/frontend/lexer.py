"""Hand-written lexer for MiniJava++."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.frontend.errors import CompileError, SourcePosition

KEYWORDS = frozenset({
    "abstract", "boolean", "break", "case", "catch", "char", "class",
    "continue", "default", "do", "double", "else", "extends", "final",
    "finally", "float", "for", "if", "instanceof", "int", "long", "new",
    "null", "package", "private", "protected", "public", "return", "static",
    "super", "switch", "this", "throw", "throws", "try", "void", "while",
    "true", "false", "import",
})

#: multi-character operators, longest first so maximal munch works
OPERATORS = (
    ">>>=", "<<=", ">>=", ">>>",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", ".", "(", ")", "{", "}", "[", "]", "@",
)


class Token:
    """A lexical token: ``kind`` is 'ident', 'int', 'long', 'float', 'double',
    'char', 'string', 'keyword', 'op' or 'eof'."""

    __slots__ = ("kind", "text", "value", "pos")

    def __init__(self, kind: str, text: str, value: object,
                 pos: SourcePosition):
        self.kind = kind
        self.text = text
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind!r}, {self.text!r})"


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f",
    "'": "'", '"': '"', "\\": "\\", "0": "\0",
}


class Lexer:
    """Converts MiniJava++ source text into a token stream."""

    def __init__(self, source: str, filename: str = "<source>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------

    def _position(self) -> SourcePosition:
        return SourcePosition(self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _error(self, message: str) -> CompileError:
        return CompileError(message, self._position())

    # ------------------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        while True:
            token = self.next_token()
            yield token
            if token.kind == "eof":
                return

    def next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        pos = self._position()
        ch = self._peek()
        if not ch:
            return Token("eof", "", None, pos)
        if ch.isalpha() or ch == "_" or ch == "$":
            return self._lex_word(pos)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(pos)
        if ch == "'":
            return self._lex_char(pos)
        if ch == '"':
            return self._lex_string(pos)
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, op, pos)
        raise self._error(f"unexpected character {ch!r}")

    def _skip_whitespace_and_comments(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._peek() and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if not self._peek():
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    def _lex_word(self, pos: SourcePosition) -> Token:
        start = self.pos
        while self._peek() and (self._peek().isalnum() or self._peek() in "_$"):
            self._advance()
        text = self.source[start:self.pos]
        if text in KEYWORDS:
            return Token("keyword", text, text, pos)
        return Token("ident", text, text, pos)

    def _lex_number(self, pos: SourcePosition) -> Token:
        start = self.pos
        is_hex = False
        if self._peek() == "0" and self._peek(1) in "xX":
            is_hex = True
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
        is_float = False
        if not is_hex:
            if self._peek() == "." and self._peek(1).isdigit():
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in "eE" and (
                    self._peek(1).isdigit()
                    or (self._peek(1) in "+-" and self._peek(2).isdigit())):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        text = self.source[start:self.pos]
        suffix = self._peek()
        if suffix and suffix in "lL" and not is_float:
            self._advance()
            value = int(text, 16) if is_hex else int(text)
            if value >= 2**63:
                raise self._error(f"long literal too large: {text}")
            return Token("long", text + suffix, value, pos)
        if suffix and suffix in "fF":
            self._advance()
            return Token("float", text + suffix, float(text), pos)
        if suffix and suffix in "dD":
            self._advance()
            return Token("double", text + suffix, float(text), pos)
        if is_float:
            return Token("double", text, float(text), pos)
        value = int(text, 16) if is_hex else int(text)
        if is_hex and value >= 2**31:
            value -= 2**32  # 0xFFFFFFFF is a valid negative int literal
        if value > 2**31:
            # 2147483648 is permitted only as the operand of unary minus;
            # the parser folds that case, so reject anything larger here.
            raise self._error(f"int literal too large: {text}")
        return Token("int", text, value, pos)

    def _lex_char(self, pos: SourcePosition) -> Token:
        self._advance()
        ch = self._peek()
        if not ch:
            raise self._error("unterminated char literal")
        if ch == "\\":
            self._advance()
            value = self._escape()
        else:
            value = ch
            self._advance()
        if self._peek() != "'":
            raise self._error("unterminated char literal")
        self._advance()
        return Token("char", value, ord(value), pos)

    def _lex_string(self, pos: SourcePosition) -> Token:
        self._advance()
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise self._error("unterminated string literal")
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                chars.append(self._escape())
            else:
                chars.append(ch)
                self._advance()
        value = "".join(chars)
        return Token("string", value, value, pos)

    def _escape(self) -> str:
        ch = self._peek()
        if ch == "u":
            self._advance()
            digits = ""
            for _ in range(4):
                digits += self._peek()
                self._advance()
            try:
                return chr(int(digits, 16))
            except ValueError:
                raise self._error(f"bad unicode escape \\u{digits}") from None
        mapped = _ESCAPES.get(ch)
        if mapped is None:
            raise self._error(f"unknown escape sequence \\{ch}")
        self._advance()
        return mapped


def tokenize(source: str, filename: str = "<source>") -> list[Token]:
    """Tokenize ``source`` into a list ending with an ``eof`` token."""
    return list(Lexer(source, filename).tokens())
