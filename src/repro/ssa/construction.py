"""SSA construction: UAST -> SafeTSA form, in a single pass.

This adapts the Brandis/Moessenboeck single-pass algorithm (the paper's
choice, [6]) to the UAST, using sealed-block incomplete phis for loop
headers.  Following the paper:

* phi instructions are inserted *eagerly* at join points for every
  variable assigned in the joined region (Section 7; the dead ones are
  later removed by Briggs-style pruning, reported as a ~31% reduction);
* inside ``try`` bodies, basic blocks are split after every potentially
  trapping instruction and an exception edge is added from the split
  point to the try's dispatch block, so the dispatch phis observe the
  variable values at the exception point (Section 7);
* constants and parameters are pre-loaded in the entry block (Section 5);
* every memory access takes its object operand from a safe-ref plane and
  its index operand from the array value's safe-index plane, inserting
  explicit ``nullcheck``/``idxcheck`` instructions (Section 4);
* ``this``, allocation results and caught exceptions are intrinsically
  non-null and are deposited directly on safe-ref planes.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend.ast import LocalVar
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    ClassType,
    PrimitiveType,
    Type,
    VOID,
)
from repro.typesys.world import ClassInfo, MethodInfo, World
from repro.ssa import ir
from repro.ssa.cst import (
    RBasic,
    RDoWhile,
    RIf,
    RLabeled,
    RLoop,
    RSeq,
    RTry,
    RWhile,
    Region,
)
from repro.ssa.ir import (
    ArrayLen,
    Block,
    Call,
    CaughtExc,
    Const,
    Downcast,
    Function,
    GetElt,
    GetField,
    GetStatic,
    IdxCheck,
    InstanceOf,
    Instr,
    New,
    NewArray,
    NullCheck,
    Param,
    Phi,
    Plane,
    Prim,
    RefCmp,
    SetElt,
    SetField,
    SetStatic,
    Term,
    Upcast,
)
from repro.uast import nodes as u

THROWABLE = ClassType("java.lang.Throwable")


class ConstructionError(Exception):
    """Internal invariant violation while building SSA (compiler bug or a
    program the front-end should have rejected)."""


class _Breakable:
    """A break/continue context during construction."""

    __slots__ = ("break_ids", "continue_ids", "continue_target",
                 "break_edges", "is_loop")

    def __init__(self, break_ids: set[int], continue_ids: set[int],
                 continue_target: Optional[Block], is_loop: bool):
        self.break_ids = break_ids
        self.continue_ids = continue_ids
        self.continue_target = continue_target
        self.break_edges: list[tuple[Block, str]] = []
        self.is_loop = is_loop


def _var_plane(var: LocalVar) -> Plane:
    if var.is_this:
        return Plane.safe(var.type)
    return Plane.of_type(var.type)


class SsaBuilder:
    """Builds one :class:`~repro.ssa.ir.Function` from a UAST method."""

    def __init__(self, world: World, class_info: ClassInfo,
                 umethod: u.UMethod, eager_phis: bool = True):
        self.world = world
        self.class_info = class_info
        self.umethod = umethod
        self.function = Function(umethod.method, class_info)
        #: insert B&M-style eager phis at joins (off = pruned-by-demand SSA)
        self.eager_phis = eager_phis

        self.current: Optional[Block] = None
        self.pending: list[tuple[Block, str]] = []
        self.defs: dict[LocalVar, dict[Block, Optional[Instr]]] = {}
        self.sealed: set[int] = set()
        self.incomplete: dict[int, dict[LocalVar, Phi]] = {}
        self.const_pool: dict[tuple, Const] = {}
        self._region_stack: list[list[Region]] = []
        self._breakables: list[_Breakable] = []
        self._exc_stack: list[Optional[Block]] = [None]
        self._pending_eager: set[LocalVar] = set()
        #: id(node) -> (node, assigned vars).  The node itself is kept
        #: in the entry: lowering builds throwaway synthetic UAST nodes
        #: (do-while/for wrappers), and without the pin a collected
        #: node's id can be recycled by a later synthetic node, making
        #: the memo return the *previous* node's variable set.
        self._assigned_memo: dict[int, tuple[u.UStmt, frozenset]] = {}

    # ==================================================================
    # top level

    def build(self) -> Function:
        entry = self.function.new_block()
        self.function.entry = entry
        self.sealed.add(entry.id)
        self.current = entry
        self._region_stack.append([])
        self._emit_params()
        self._build_stmt(self.umethod.body)
        self._finish_method()
        self.function.cst = RSeq(self._region_stack.pop())
        self.function.phi_count_unpruned = sum(
            len(b.phis) for b in self.function.blocks)
        return self.function

    def _emit_params(self) -> None:
        method = self.umethod.method
        index = 0
        for var in self.umethod.locals:
            if not var.is_param:
                continue
            is_this = (index == 0 and not method.is_static)
            param = Param(index, var.type, var.name, is_this=is_this)
            self.current.append(param)
            self.function.params.append(param)
            self._write(var, param)
            index += 1

    def _finish_method(self) -> None:
        if self.current is None and not self.pending:
            return
        self._ensure_block()
        if self.umethod.method.return_type is VOID:
            self._finish_leaf("return", None)
        else:
            # semantics guarantees non-void methods cannot complete
            # normally; a reachable fall-off here is a front-end bug
            self._finish_leaf("unreachable", None)

    # ==================================================================
    # block plumbing

    def _ensure_block(self) -> Block:
        if self.current is None:
            block = self.function.new_block()
            for source, kind in self.pending:
                block.add_pred(source, kind)
            self.pending = []
            self.sealed.add(block.id)
            self.current = block
            block.exc_target = self._exc_stack[-1]
            if self._pending_eager:
                eager, self._pending_eager = self._pending_eager, set()
                self._insert_eager_phis(block, eager)
        return self.current

    def _new_unsealed_block(self) -> Block:
        """Open a block that will receive additional preds later."""
        if self.current is not None:
            self._finish_leaf("fall", None)
        block = self.function.new_block()
        for source, kind in self.pending:
            block.add_pred(source, kind)
        self.pending = []
        block.exc_target = self._exc_stack[-1]
        self.incomplete.setdefault(block.id, {})
        self._pending_eager = set()
        return block

    def _finish_leaf(self, kind: str, value: Optional[Instr],
                     depth: int = 0, exc: bool = False) -> Block:
        block = self._ensure_block()
        block.term = Term(kind, value, depth)
        if kind == "throw" and self._exc_stack[-1] is not None:
            # a throw inside a try body is an exception point: it reaches
            # the enclosing dispatch block, not the caller
            self._exc_stack[-1].add_pred(block, "exc")
            exc = True
        self._region_stack[-1].append(RBasic(block, exc=exc))
        self.current = None
        self.pending = [(block, "norm")] if kind == "fall" else []
        return block

    def _capture_cond_block(self, cond_value: Instr) -> Block:
        """Turn the current block into a branch block (owned by RIf etc.)."""
        block = self._ensure_block()
        block.term = Term("branch", cond_value)
        self.current = None
        self.pending = []
        return block

    def _push_region(self) -> None:
        self._region_stack.append([])

    def _pop_region(self) -> Region:
        regions = self._region_stack.pop()
        return regions[0] if len(regions) == 1 else RSeq(regions)

    # ==================================================================
    # value emission

    def emit(self, instr: Instr) -> Instr:
        block = self._ensure_block()
        block.append(instr)
        if instr.traps and self._exc_stack[-1] is not None:
            dispatch = self._exc_stack[-1]
            dispatch.add_pred(block, "exc")
            # split the subblock at the exception point (paper Section 7)
            self._finish_leaf("fall", None, exc=True)
        return instr

    def const(self, type: Type, value: object) -> Const:
        """Constants are pre-loaded (and shared) in the entry block."""
        # repr() keeps -0.0 distinct from 0.0 and True distinct from 1
        key = (type, value.__class__.__name__, repr(value))
        cached = self.const_pool.get(key)
        if cached is None:
            cached = Const(type, value)
            self.function.entry.append(cached)
            self.const_pool[key] = cached
        return cached

    # ------------------------------------------------------------------
    # variables (sealed-block SSA)

    def _write(self, var: LocalVar, value: Instr) -> None:
        self.defs.setdefault(var, {})[self._ensure_block()] = value

    def _read(self, var: LocalVar, block: Optional[Block] = None) -> Instr:
        if block is None:
            block = self._ensure_block()
        value = self._read_opt(var, block)
        if value is None:
            raise ConstructionError(
                f"read of unassigned variable {var.name!r} in "
                f"{self.function.name}")
        return value

    def _read_opt(self, var: LocalVar, block: Block) -> Optional[Instr]:
        value = self.defs.get(var, {}).get(block)
        if value is not None:
            value = _resolve(value)
            self.defs[var][block] = value
            return value
        if block in self.defs.get(var, {}):
            return None  # cached undefined
        return self._read_recursive(var, block)

    def _read_recursive(self, var: LocalVar, block: Block) -> Optional[Instr]:
        if block.id not in self.sealed:
            phi = Phi(_var_plane(var), var)
            block.phis.insert(0, phi)
            phi.block = block
            self.incomplete.setdefault(block.id, {})[var] = phi
            value: Optional[Instr] = phi
        elif not block.preds:
            value = None
        elif len(block.preds) == 1:
            value = self._read_opt(var, block.preds[0][0])
        else:
            phi = Phi(_var_plane(var), var)
            block.phis.append(phi)
            phi.block = block
            self.defs.setdefault(var, {})[block] = phi  # break cycles
            operands = [self._read_opt(var, pred) for pred, _ in block.preds]
            if any(op is None for op in operands):
                block.phis.remove(phi)
                value = None
            else:
                for op in operands:
                    phi.add_operand(op)
                value = _resolve(self._try_remove_trivial(phi))
        self.defs.setdefault(var, {})[block] = value
        return value

    def _seal(self, block: Block) -> None:
        for var, phi in self.incomplete.pop(block.id, {}).items():
            operands = [self._read_opt(var, pred) for pred, _ in block.preds]
            if any(op is None for op in operands):
                if phi.is_eager and not phi.users:
                    # the variable is not defined before the loop after
                    # all; retract the speculative header phi
                    block.phis.remove(phi)
                    phi.removed = True
                    if self.defs.get(var, {}).get(block) is phi:
                        del self.defs[var][block]
                    continue
                raise ConstructionError(
                    f"variable {var.name!r} undefined on a path into "
                    f"B{block.id} in {self.function.name}")
            for op in operands:
                phi.add_operand(op)
            if phi.is_eager:
                continue  # B&M keeps it; Briggs pruning may remove it
            resolved = _resolve(self._try_remove_trivial(phi))
            if self.defs.get(var, {}).get(block) is phi:
                self.defs[var][block] = resolved
        self.sealed.add(block.id)

    def _try_remove_trivial(self, phi: Phi) -> Instr:
        same: Optional[Instr] = None
        for operand in phi.operands:
            operand = _resolve(operand)
            if operand is phi or operand is same:
                continue
            if same is not None:
                return phi  # two distinct operands: not trivial
            same = operand
        if same is None:
            return phi  # self-referential only; unreachable loop artifact
        users = sorted((user for user in phi.users
                        if isinstance(user, Phi) and user is not phi
                        and not user.is_eager),
                       key=lambda user: user.id)
        phi.replace_all_uses(same)
        phi.removed = True
        phi.replacement = same
        if phi in phi.block.phis:
            phi.block.phis.remove(phi)
        phi.drop_operands()
        for user in users:
            if not user.removed:
                self._try_remove_trivial(user)
        # the recursion above may have removed `same` itself
        return _resolve(same)

    def _is_defined(self, var: LocalVar, block: Block,
                    seen: Optional[set] = None) -> bool:
        """Side-effect-free probe: does ``var`` reach ``block``?

        Unlike ``_read_opt`` this never creates phis, so eager insertion
        can test definedness without poisoning unsealed loop headers.
        Cycles (loop back edges) are judged optimistically, matching the
        incomplete-phi semantics.
        """
        if seen is None:
            seen = set()
        per_block = self.defs.get(var, {})
        if block in per_block:
            return per_block[block] is not None
        if block.id in seen:
            return True
        seen.add(block.id)
        if not block.preds:
            return False
        return all(self._is_defined(var, pred, seen)
                   for pred, _ in block.preds)

    def _insert_eager_phis(self, block: Block, vars: set[LocalVar]) -> None:
        """B&M-style eager phis at a sealed join block."""
        if not self.eager_phis or len(block.preds) < 2:
            return
        for var in sorted(vars, key=lambda v: (v.index, v.name)):
            if self.defs.get(var, {}).get(block) is not None:
                continue
            if not all(self._is_defined(var, pred)
                       for pred, _ in block.preds):
                continue  # not defined on all paths; cannot merge
            operands = [self._read_opt(var, pred) for pred, _ in block.preds]
            if any(op is None for op in operands):
                continue
            phi = Phi(_var_plane(var), var, is_eager=True)
            block.phis.append(phi)
            phi.block = block
            for op in operands:
                phi.add_operand(op)
            self.defs.setdefault(var, {})[block] = phi

    def _assigned_vars(self, node: u.UStmt) -> frozenset:
        memo = self._assigned_memo.get(id(node))
        if memo is not None:
            return memo[1]
        out: set[LocalVar] = set()
        if isinstance(node, u.SBlock):
            for inner in node.stmts:
                out |= self._assigned_vars(inner)
        elif isinstance(node, u.SLocalWrite):
            out.add(node.local)
        elif isinstance(node, u.SIf):
            out |= self._assigned_vars(node.then_body)
            if node.else_body is not None:
                out |= self._assigned_vars(node.else_body)
        elif isinstance(node, (u.SWhile, u.SDoWhile, u.SLabeled)):
            out |= self._assigned_vars(node.body)
        elif isinstance(node, u.STry):
            out |= self._assigned_vars(node.body)
            for catch in node.catches:
                out.add(catch.local)
                out |= self._assigned_vars(catch.body)
        result = frozenset(out)
        self._assigned_memo[id(node)] = (node, result)
        return result

    # ==================================================================
    # plane adaptation

    def as_plane(self, value: Instr, plane: Plane) -> Instr:
        if value.plane == plane:
            return value
        source = value.plane
        if source.kind in ("ref", "safe") and plane.kind in ("ref", "safe"):
            if plane.kind == "safe" and source.kind == "ref":
                raise ConstructionError(
                    f"cannot statically move {source} to {plane}")
            if not self.world.is_subtype(source.type, plane.type):
                raise ConstructionError(f"bad downcast {source} -> {plane}")
            return self.emit(Downcast(plane, value))
        raise ConstructionError(f"cannot adapt {source} to {plane}")

    def ensure_safe(self, value: Instr) -> Instr:
        """Null-check a reference value onto its safe plane (or reuse)."""
        if value.plane.kind == "safe":
            return value
        if value.plane.kind != "ref":
            raise ConstructionError(f"nullcheck of non-reference {value!r}")
        return self.emit(NullCheck(value.type, value))

    def _safe_receiver(self, value: Instr, base: ClassInfo) -> Instr:
        safe = self.ensure_safe(value)
        return self.as_plane(safe, Plane.safe(base.type))

    # ==================================================================
    # statements

    def _build_stmt(self, stmt: u.UStmt) -> None:
        handler = getattr(self, "_stmt_" + type(stmt).__name__.lower(), None)
        if handler is None:
            raise ConstructionError(
                f"unsupported UAST statement {type(stmt).__name__}")
        handler(stmt)

    def _stmt_sblock(self, stmt: u.SBlock) -> None:
        for inner in stmt.stmts:
            if self.current is None and not self.pending:
                return  # unreachable tail (e.g. after return)
            self._build_stmt(inner)

    def _stmt_slocalwrite(self, stmt: u.SLocalWrite) -> None:
        value = self.eval(stmt.value)
        self._write(stmt.local, self.as_plane(value, _var_plane(stmt.local)))

    def _stmt_sfieldwrite(self, stmt: u.SFieldWrite) -> None:
        obj = self.eval(stmt.obj)
        base = self._class_of_value(obj)
        safe = self._safe_receiver(obj, base)
        value = self.eval(stmt.value)
        value = self.as_plane(value, Plane.of_type(stmt.field.type))
        self.emit(SetField(base, safe, stmt.field, value))

    def _stmt_sstaticwrite(self, stmt: u.SStaticWrite) -> None:
        value = self.eval(stmt.value)
        value = self.as_plane(value, Plane.of_type(stmt.field.type))
        self.emit(SetStatic(stmt.field, value))

    def _stmt_sarraywrite(self, stmt: u.SArrayWrite) -> None:
        array = self.eval(stmt.array)
        array_type = array.type
        if not isinstance(array_type, ArrayType):
            raise ConstructionError("array write to non-array")
        safe_array = self.ensure_safe(array)
        index = self.eval(stmt.index)
        safe_index = self.emit(IdxCheck(safe_array, index))
        value = self.eval(stmt.value)
        value = self.as_plane(value, Plane.of_type(array_type.element))
        self.emit(SetElt(array_type, safe_array, safe_index, value))

    def _stmt_seval(self, stmt: u.SEval) -> None:
        self.eval(stmt.expr)

    def _stmt_sif(self, stmt: u.SIf) -> None:
        cond = self.eval(stmt.cond)
        cond_block = self._capture_cond_block(cond)
        assigned = (self._assigned_vars(stmt.then_body)
                    | (self._assigned_vars(stmt.else_body)
                       if stmt.else_body is not None else frozenset()))
        # then branch
        self.pending = [(cond_block, "norm")]
        self._push_region()
        self._ensure_block()  # materialise the arm even if it stays empty
        self._build_stmt(stmt.then_body)
        if self.current is not None:
            self._finish_leaf("fall", None)
        then_region = self._pop_region()
        then_out = self.pending
        # else branch
        if stmt.else_body is not None:
            self.pending = [(cond_block, "norm")]
            self._push_region()
            self._ensure_block()
            self._build_stmt(stmt.else_body)
            if self.current is not None:
                self._finish_leaf("fall", None)
            else_region: Optional[Region] = self._pop_region()
            else_out = self.pending
        else:
            else_region = None
            else_out = [(cond_block, "norm")]
        self._region_stack[-1].append(RIf(cond_block, then_region,
                                          else_region))
        self.pending = then_out + else_out
        self.current = None
        self._pending_eager = set(assigned)

    def _cond_is_simple(self, expr: u.UExpr) -> bool:
        """True when evaluating ``expr`` emits straight-line, non-trapping
        code (so it can live in a loop header block)."""
        if isinstance(expr, (u.EConst, u.ELocal)):
            return True
        if isinstance(expr, u.EPrim):
            return (not expr.operation.traps
                    and all(self._cond_is_simple(a) for a in expr.args))
        if isinstance(expr, u.ERefCmp):
            return (self._cond_is_simple(expr.left)
                    and self._cond_is_simple(expr.right))
        if isinstance(expr, u.EInstanceOf):
            return self._cond_is_simple(expr.operand)
        if isinstance(expr, u.EWidenRef):
            return self._cond_is_simple(expr.operand)
        return False

    def _stmt_swhile(self, stmt: u.SWhile) -> None:
        is_true_const = isinstance(stmt.cond, u.EConst) \
            and stmt.cond.value is True
        if is_true_const:
            self._build_infinite_loop(stmt)
            return
        if not self._cond_is_simple(stmt.cond):
            self._build_while_lowered(stmt)
            return
        assigned = self._assigned_vars(stmt.body) | self._assigned_vars(stmt)
        header = self._new_unsealed_block()
        self.current = header
        cond = self.eval(stmt.cond)
        if self.current is not header:
            raise ConstructionError("loop condition was not single-block")
        header.term = Term("branch", cond)
        self.current = None
        breakable = _Breakable({stmt.break_id}, {stmt.continue_id},
                               header, is_loop=True)
        self._breakables.append(breakable)
        self.pending = [(header, "norm")]
        self._push_region()
        self._ensure_block()
        self._build_stmt(stmt.body)
        if self.current is not None:
            self._finish_leaf("fall", None)
        body_region = self._pop_region()
        self._breakables.pop()
        for source, kind in self.pending:
            header.add_pred(source, kind)
        self._insert_loop_header_phis(header, assigned)
        self._seal(header)
        self._region_stack[-1].append(RWhile(header, body_region))
        self.pending = [(header, "norm")] + breakable.break_edges
        self.current = None
        self._pending_eager = set(assigned)

    def _build_while_lowered(self, stmt: u.SWhile) -> None:
        """``while(c) S`` with a complex condition becomes
        ``loop { c'; if(!c) break; S }``."""
        from repro.typesys.ops import lookup_op
        not_op = lookup_op(BOOLEAN, "not")
        inner = u.SBlock([
            u.SIf(u.EPrim(not_op, [stmt.cond]), u.SBreak(stmt.break_id),
                  None),
            stmt.body,
        ])
        loop = u.SWhile(stmt.break_id, stmt.continue_id,
                        u.EConst(BOOLEAN, True), inner)
        self._build_infinite_loop(loop)

    def _build_infinite_loop(self, stmt: u.SWhile) -> None:
        assigned = self._assigned_vars(stmt.body) | self._assigned_vars(stmt)
        entry = self._new_unsealed_block()
        self.current = entry
        breakable = _Breakable({stmt.break_id}, {stmt.continue_id},
                               entry, is_loop=True)
        self._breakables.append(breakable)
        self._push_region()
        self._build_stmt(stmt.body)
        if self.current is not None:
            self._finish_leaf("fall", None)
        body_region = self._pop_region()
        self._breakables.pop()
        for source, kind in self.pending:
            entry.add_pred(source, kind)
        self._insert_loop_header_phis(entry, assigned)
        self._seal(entry)
        self._region_stack[-1].append(RLoop(body_region))
        self.pending = list(breakable.break_edges)
        self.current = None
        self._pending_eager = set(assigned)

    def _stmt_sdowhile(self, stmt: u.SDoWhile) -> None:
        if not self._cond_is_simple(stmt.cond):
            # the UAST builder lowers effectful do-while conditions, but a
            # trapping-but-preludeless condition can still reach us here
            from repro.typesys.ops import lookup_op
            not_op = lookup_op(BOOLEAN, "not")
            body = u.SLabeled(stmt.continue_id, stmt.body)
            inner = u.SBlock([
                body,
                u.SIf(u.EPrim(not_op, [stmt.cond]),
                      u.SBreak(stmt.break_id), None),
            ])
            loop = u.SWhile(stmt.break_id, self._fresh_id(),
                            u.EConst(BOOLEAN, True), inner)
            self._build_infinite_loop(loop)
            return
        assigned = self._assigned_vars(stmt.body) | self._assigned_vars(stmt)
        entry = self._new_unsealed_block()
        self.current = entry
        cond_block = self.function.new_block()
        self.incomplete.setdefault(cond_block.id, {})
        breakable = _Breakable({stmt.break_id}, {stmt.continue_id},
                               cond_block, is_loop=True)
        self._breakables.append(breakable)
        self._push_region()
        self._build_stmt(stmt.body)
        if self.current is not None:
            self._finish_leaf("fall", None)
        body_region = self._pop_region()
        self._breakables.pop()
        for source, kind in self.pending:
            cond_block.add_pred(source, kind)
        self._seal(cond_block)
        self.current = cond_block
        self.pending = []
        cond = self.eval(stmt.cond)
        if self.current is not cond_block:
            raise ConstructionError("do-while condition was not single-block")
        cond_block.term = Term("branch", cond)
        self.current = None
        entry.add_pred(cond_block, "norm")  # back edge
        self._insert_loop_header_phis(entry, assigned)
        self._seal(entry)
        # region: the body was already collected; cond block is structural
        inner_region = body_region
        self._region_stack[-1].append(RDoWhile(inner_region, cond_block))
        self.pending = [(cond_block, "norm")] + breakable.break_edges
        self._pending_eager = set(assigned)

    _fresh_counter = 10_000_000

    def _fresh_id(self) -> int:
        SsaBuilder._fresh_counter += 1
        return SsaBuilder._fresh_counter

    def _insert_loop_header_phis(self, header: Block, assigned) -> None:
        """Eager B&M phis for every variable assigned in the loop body."""
        if not self.eager_phis:
            return
        for var in sorted(assigned, key=lambda v: (v.index, v.name)):
            if var in self.incomplete.get(header.id, {}):
                continue  # a demand phi already exists
            entry_preds = header.preds
            if not entry_preds:
                continue
            if not all(self._is_defined(var, pred)
                       for pred, _ in entry_preds):
                continue  # not defined before the loop
            if self.defs.get(var, {}).get(header) is not None:
                continue
            phi = Phi(_var_plane(var), var, is_eager=True)
            header.phis.append(phi)
            phi.block = header
            self.incomplete.setdefault(header.id, {})[var] = phi
            self.defs.setdefault(var, {})[header] = phi

    def _stmt_slabeled(self, stmt: u.SLabeled) -> None:
        assigned = self._assigned_vars(stmt.body)
        breakable = _Breakable({stmt.target_id}, set(), None, is_loop=False)
        self._breakables.append(breakable)
        self._push_region()
        self._build_stmt(stmt.body)
        if self.current is not None:
            self._finish_leaf("fall", None)
        body_region = self._pop_region()
        self._breakables.pop()
        self._region_stack[-1].append(RLabeled(body_region))
        self.pending = self.pending + breakable.break_edges
        self.current = None
        self._pending_eager = set(assigned)

    def _stmt_sbreak(self, stmt: u.SBreak) -> None:
        depth = self._breakable_depth(stmt.target_id, want_continue=False)
        block = self._finish_leaf("break", None, depth=depth)
        target = self._breakables[-1 - depth]
        target.break_edges.append((block, "norm"))

    def _stmt_scontinue(self, stmt: u.SContinue) -> None:
        loops = [b for b in self._breakables if b.is_loop]
        for depth, breakable in enumerate(reversed(loops)):
            if stmt.target_id in breakable.continue_ids:
                block = self._finish_leaf("continue", None, depth=depth)
                breakable.continue_target.add_pred(block, "norm")
                return
        # the loop was restructured (effectful do-while condition): the
        # continue target became a labeled region exit
        self._stmt_sbreak(u.SBreak(stmt.target_id))

    def _breakable_depth(self, target_id: int, want_continue: bool) -> int:
        if want_continue:
            loops = [b for b in self._breakables if b.is_loop]
            for depth, breakable in enumerate(reversed(loops)):
                if target_id in breakable.continue_ids:
                    return depth
        else:
            for depth, breakable in enumerate(reversed(self._breakables)):
                if target_id in breakable.break_ids:
                    return depth
        raise ConstructionError(f"unknown jump target {target_id}")

    def _stmt_sreturn(self, stmt: u.SReturn) -> None:
        value = None
        if stmt.value is not None:
            value = self.eval(stmt.value)
            value = self.as_plane(
                value, Plane.of_type(self.umethod.method.return_type))
        self._finish_leaf("return", value)

    def _stmt_sthrow(self, stmt: u.SThrow) -> None:
        value = self.eval(stmt.value)
        safe = self.ensure_safe(value)
        safe = self.as_plane(safe, Plane.safe(THROWABLE))
        self._finish_leaf("throw", safe)

    def _stmt_stry(self, stmt: u.STry) -> None:
        assigned = self._assigned_vars(stmt)
        dispatch = self.function.new_block()
        self.incomplete.setdefault(dispatch.id, {})
        self._exc_stack.append(dispatch)
        if self.current is not None:
            self._finish_leaf("fall", None)
        self._push_region()
        self._ensure_block()
        self._build_stmt(stmt.body)
        if self.current is not None:
            self._finish_leaf("fall", None)
        body_region = self._pop_region()
        self._exc_stack.pop()
        body_out = self.pending

        if not dispatch.preds:
            # nothing in the body can throw: the handler is dead
            self.function.blocks.remove(dispatch)
            self.incomplete.pop(dispatch.id, None)
            self._region_stack[-1].append(body_region)
            self.pending = body_out
            self.current = None
            self._pending_eager = set(assigned)
            return

        self._insert_eager_dispatch_phis(dispatch,
                                         self._assigned_vars(stmt.body))
        self._seal(dispatch)
        dispatch.exc_target = self._exc_stack[-1]
        caught = CaughtExc()
        dispatch.append(caught)
        self.current = dispatch
        self.pending = []
        self._push_region()
        self._build_handler(stmt.catches, caught)
        handler_region = self._pop_region()
        handler_out = self.pending
        self._region_stack[-1].append(
            RTry(body_region, dispatch, handler_region))
        self.pending = body_out + handler_out
        self.current = None
        self._pending_eager = set(assigned)

    def _insert_eager_dispatch_phis(self, dispatch: Block, assigned) -> None:
        if not self.eager_phis:
            return
        for var in sorted(assigned, key=lambda v: (v.index, v.name)):
            if var in self.incomplete.get(dispatch.id, {}):
                continue
            if not all(self._is_defined(var, pred)
                       for pred, _ in dispatch.preds):
                continue
            operands = [self._read_opt(var, pred)
                        for pred, _ in dispatch.preds]
            if any(op is None for op in operands):
                continue
            if self.defs.get(var, {}).get(dispatch) is not None:
                continue
            phi = Phi(_var_plane(var), var, is_eager=True)
            dispatch.phis.append(phi)
            phi.block = dispatch
            for op in operands:
                phi.add_operand(op)
            self.defs.setdefault(var, {})[dispatch] = phi

    def _build_handler(self, catches: list[u.UCatch],
                       caught: CaughtExc) -> None:
        """Emit the instanceof dispatch chain plus the default rethrow."""
        if not catches:
            # the implicit default catch block: rethrow
            self._finish_leaf("throw", caught)
            return
        clause = catches[0]
        exc_ref = self.as_plane(caught, Plane.of_type(THROWABLE))
        test = self.emit(InstanceOf(clause.catch_class.type, exc_ref))
        cond_block = self._capture_cond_block(test)
        # catch body
        self.pending = [(cond_block, "norm")]
        self._push_region()
        self._ensure_block()
        bound = self.emit(Upcast(clause.catch_class.type, exc_ref))
        self._write(clause.local, bound)
        self._build_stmt(clause.body)
        if self.current is not None:
            self._finish_leaf("fall", None)
        then_region = self._pop_region()
        then_out = self.pending
        # next clause / default
        self.pending = [(cond_block, "norm")]
        self._push_region()
        self._ensure_block()
        self._build_handler(catches[1:], caught)
        if self.current is not None:
            self._finish_leaf("fall", None)
        else_region = self._pop_region()
        else_out = self.pending
        self._region_stack[-1].append(
            RIf(cond_block, then_region, else_region))
        self.pending = then_out + else_out
        self.current = None

    # ==================================================================
    # expressions

    def eval(self, expr: u.UExpr) -> Instr:
        handler = getattr(self, "_eval_" + type(expr).__name__.lower(), None)
        if handler is None:
            raise ConstructionError(
                f"unsupported UAST expression {type(expr).__name__}")
        return handler(expr)

    def _eval_econst(self, expr: u.EConst) -> Instr:
        return self.const(expr.type, expr.value)

    def _eval_elocal(self, expr: u.ELocal) -> Instr:
        return self._read(expr.local)

    def _class_of_value(self, value: Instr) -> ClassInfo:
        type = value.type
        if isinstance(type, ClassType):
            return self.world.class_of(type)
        raise ConstructionError(f"not a class-typed value: {value!r}")

    def _eval_egetfield(self, expr: u.EGetField) -> Instr:
        obj = self.eval(expr.obj)
        base = self._class_of_value(obj)
        safe = self._safe_receiver(obj, base)
        return self.emit(GetField(base, safe, expr.field))

    def _eval_egetstatic(self, expr: u.EGetStatic) -> Instr:
        return self.emit(GetStatic(expr.field))

    def _eval_earrayget(self, expr: u.EArrayGet) -> Instr:
        array = self.eval(expr.array)
        array_type = array.type
        if not isinstance(array_type, ArrayType):
            raise ConstructionError("array read from non-array")
        safe_array = self.ensure_safe(array)
        index = self.eval(expr.index)
        safe_index = self.emit(IdxCheck(safe_array, index))
        return self.emit(GetElt(array_type, safe_array, safe_index))

    def _eval_earraylen(self, expr: u.EArrayLen) -> Instr:
        array = self.eval(expr.array)
        array_type = array.type
        if not isinstance(array_type, ArrayType):
            raise ConstructionError("length of non-array")
        safe_array = self.ensure_safe(array)
        return self.emit(ArrayLen(array_type, safe_array))

    def _eval_eprim(self, expr: u.EPrim) -> Instr:
        args = [self.eval(arg) for arg in expr.args]
        args = [self.as_plane(arg, Plane.of_type(param))
                for arg, param in zip(args, expr.operation.params)]
        return self.emit(Prim(expr.operation, args))

    def _eval_erefcmp(self, expr: u.ERefCmp) -> Instr:
        plane = Plane.of_type(expr.plane_type)
        left = self.as_plane(self.eval(expr.left), plane)
        right = self.as_plane(self.eval(expr.right), plane)
        return self.emit(RefCmp(expr.is_eq, expr.plane_type, left, right))

    def _eval_ecall(self, expr: u.ECall) -> Instr:
        operands: list[Instr] = []
        if expr.receiver is not None:
            receiver = self.eval(expr.receiver)
            operands.append(self._safe_receiver(receiver, expr.base))
        for arg, param in zip(expr.args, expr.method.param_types):
            value = self.eval(arg)
            operands.append(self.as_plane(value, Plane.of_type(param)))
        return self.emit(Call(expr.base, expr.method, operands,
                              expr.dispatch))

    def _eval_enew(self, expr: u.ENew) -> Instr:
        obj = self.emit(New(expr.class_info))
        operands: list[Instr] = [obj]
        for arg, param in zip(expr.args, expr.ctor.param_types):
            value = self.eval(arg)
            operands.append(self.as_plane(value, Plane.of_type(param)))
        self.emit(Call(expr.class_info, expr.ctor, operands, dispatch=False))
        return obj

    def _eval_enewarray(self, expr: u.ENewArray) -> Instr:
        length = self.eval(expr.length)
        return self.emit(NewArray(expr.array_type, length))

    _multi_temp = 0

    def _eval_enewmultiarray(self, expr: u.ENewMultiArray) -> Instr:
        """SafeTSA has no multianewarray primitive: allocate the outer
        array and fill it with explicit loops."""
        from repro.frontend.ast import LocalVar
        from repro.typesys.ops import lookup_op
        from repro.typesys.types import INT as _INT

        dims = [self.eval(d) for d in expr.dims]
        dim_vars = []
        for dim in dims:
            SsaBuilder._multi_temp += 1
            var = LocalVar(f"$dim{SsaBuilder._multi_temp}", _INT, 0,
                           is_synthetic=True)
            self._write(var, dim)
            dim_vars.append(var)

        def allocate(array_type, level: int) -> Instr:
            length = self._read(dim_vars[level])
            outer = self.emit(NewArray(array_type, length))
            if level + 1 >= len(dim_vars):
                return outer
            SsaBuilder._multi_temp += 1
            arr_var = LocalVar(f"$arr{SsaBuilder._multi_temp}",
                               array_type, 0, is_synthetic=True)
            self._write(arr_var, self.as_plane(outer,
                                               _var_plane(arr_var)))
            idx_var = LocalVar(f"$idx{SsaBuilder._multi_temp}", _INT, 0,
                               is_synthetic=True)
            self._write(idx_var, self.const(_INT, 0))
            lt = lookup_op(_INT, "lt")
            add = lookup_op(_INT, "add")
            # while (idx < dim) { arr[idx] = allocate(...); idx++ }
            break_id = self._fresh_id()
            continue_id = self._fresh_id()
            header = self._new_unsealed_block()
            self.current = header
            cond = self.emit(Prim(lt, [self._read(idx_var),
                                       self._read(dim_vars[level])]))
            if self.current is not header:
                raise ConstructionError("multiarray condition split")
            header.term = Term("branch", cond)
            self.current = None
            breakable = _Breakable({break_id}, {continue_id}, header,
                                   is_loop=True)
            self._breakables.append(breakable)
            self.pending = [(header, "norm")]
            self._push_region()
            self._ensure_block()
            element = allocate(array_type.element, level + 1)
            arr_val = self.ensure_safe(self._read(arr_var))
            idx_val = self._read(idx_var)
            safe_idx = self.emit(IdxCheck(arr_val, idx_val))
            self.emit(SetElt(array_type, arr_val, safe_idx,
                             self.as_plane(element,
                                           Plane.of_type(
                                               array_type.element))))
            self._write(idx_var, self.emit(
                Prim(add, [self._read(idx_var), self.const(_INT, 1)])))
            if self.current is not None:
                self._finish_leaf("fall", None)
            body_region = self._pop_region()
            self._breakables.pop()
            for source, kind in self.pending:
                header.add_pred(source, kind)
            self._insert_loop_header_phis(
                header, frozenset({idx_var, arr_var}))
            self._seal(header)
            self._region_stack[-1].append(RWhile(header, body_region))
            self.pending = [(header, "norm")]
            self.current = None
            return self._read(arr_var)

        result = allocate(expr.array_type, 0)
        return self.ensure_safe(result) if result.plane.kind == "ref" \
            else result

    def _eval_einstanceof(self, expr: u.EInstanceOf) -> Instr:
        operand = self.eval(expr.operand)
        operand = self.as_plane(operand, Plane.of_type(operand.type))
        return self.emit(InstanceOf(expr.target_type, operand))

    def _eval_echeckedcast(self, expr: u.ECheckedCast) -> Instr:
        operand = self.eval(expr.operand)
        operand = self.as_plane(operand, Plane.of_type(operand.type))
        return self.emit(Upcast(expr.type, operand))

    def _eval_ewidenref(self, expr: u.EWidenRef) -> Instr:
        operand = self.eval(expr.operand)
        return self.as_plane(operand, Plane.of_type(expr.type))


def _resolve(value: Instr) -> Instr:
    """Chase removed-phi forwarding links."""
    while isinstance(value, Phi) and value.removed:
        value = value.replacement
    return value


def build_function(world: World, class_info: ClassInfo, umethod: u.UMethod,
                   eager_phis: bool = True) -> Function:
    """Construct SSA (SafeTSA form) for one UAST method."""
    return SsaBuilder(world, class_info, umethod, eager_phis).build()
