"""Sharded content-addressed module store: the serving-side twin of
:class:`repro.cache.DictionaryStore`.

Modules are keyed by the SHA-256 hex of their exact distribution bytes
-- a v1 stream and a v2 envelope of the same compilation are distinct
units, each fetchable under its own digest (the envelope's dictionary
blobs resolve separately through the
:class:`~repro.cache.DictionaryStore`).  Content addressing means
"present but wrong" is impossible by construction: a disk blob that no
longer hashes to its name is treated as absent, never served.

On disk the store shards by the first two hex characters
(``<root>/ab/<digest>.stsa``), the standard fan-out that keeps any one
directory's entry count ~1/256th of the population -- directory scans
stay cheap at millions of modules.  Writes are atomic (temp file +
``os.replace``), so a concurrent reader sees the old blob, the new
blob, or a miss -- never a partial file.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Optional

_DIGEST_HEX = 64


def wire_digest(wire: bytes) -> str:
    """Content address of one distribution unit: sha256 hex of its
    exact bytes."""
    return hashlib.sha256(wire).hexdigest()


def is_digest(text: str) -> bool:
    """Syntactic check for a full module digest (64 lowercase hex)."""
    return (len(text) == _DIGEST_HEX
            and all(c in "0123456789abcdef" for c in text))


class ModuleStore:
    """Maps wire digests to distribution bytes, sharded on disk."""

    def __init__(self, root: Optional[str] = None):
        self._memory: dict[str, bytes] = {}
        self._root = Path(root) if root else None
        self.puts = 0
        self.gets = 0

    def _shard_path(self, digest: str) -> Path:
        assert self._root is not None
        return self._root / digest[:2] / f"{digest}.stsa"

    def put(self, wire: bytes) -> str:
        """Store ``wire``; returns its digest.  Idempotent -- storing
        the same bytes twice is one entry (and one disk write)."""
        digest = wire_digest(wire)
        if digest in self._memory:
            return digest
        self._memory[digest] = bytes(wire)
        self.puts += 1
        if self._root is not None:
            path = self._shard_path(digest)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, temp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(wire)
                os.replace(temp, path)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        return digest

    def get(self, digest: str) -> Optional[bytes]:
        self.gets += 1
        wire = self._memory.get(digest)
        if wire is None and self._root is not None and is_digest(digest):
            path = self._shard_path(digest)
            if path.is_file():
                wire = path.read_bytes()
                if wire_digest(wire) != digest:
                    return None  # damaged shard: absent, never wrong
                self._memory[digest] = wire
        return wire

    def __contains__(self, digest: str) -> bool:
        return self.get(digest) is not None

    def __len__(self) -> int:
        return len(self._memory)

    def __bool__(self) -> bool:
        return True  # an empty store is still an enabled store

    def total_bytes(self) -> int:
        """Bytes held in memory (the serving working set)."""
        return sum(len(wire) for wire in self._memory.values())

    def stats(self) -> dict:
        return {"entries": len(self._memory),
                "bytes": self.total_bytes(),
                "puts": self.puts, "gets": self.gets}
