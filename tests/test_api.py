"""Public API (repro top-level) tests — the five-call pipeline."""

import pytest

import repro
from repro import (
    compile_source,
    compile_to_bytecode,
    decode_module,
    encode_module,
    run_module,
)

SOURCE = """
class Fib {
    static int fib(int n) {
        if (n < 2) return n;
        return fib(n - 1) + fib(n - 2);
    }
    static void main() {
        System.out.println(fib(12));
    }
}
"""


def test_version():
    assert repro.__version__


def test_five_call_pipeline():
    module = compile_source(SOURCE, optimize=True)
    wire = encode_module(module)
    received = decode_module(wire)
    result = run_module(received)
    assert result.stdout == "144\n"
    assert result.exception is None


def test_compile_source_flags():
    plain = compile_source(SOURCE)
    unpruned = compile_source(SOURCE, prune_phis=False)
    optimized = compile_source(SOURCE, optimize=True)
    assert optimized.instruction_count() <= plain.instruction_count()
    assert plain.count_opcodes("phi") <= unpruned.count_opcodes("phi")


def test_run_module_selects_class_and_method():
    source = ("class A { static void main() "
              "{ System.out.println(\"a\"); }"
              " static void other() { System.out.println(\"o\"); } }")
    module = compile_source(source)
    assert run_module(module, "A").stdout == "a\n"
    assert run_module(module, "A", method="other").stdout == "o\n"


def test_compile_to_bytecode_returns_classes():
    classes = compile_to_bytecode(SOURCE)
    assert len(classes) == 1
    assert classes[0].info.name == "Fib"
    assert classes[0].instruction_count() > 0


def test_compile_error_surfaces():
    from repro.frontend.errors import CompileError
    with pytest.raises(CompileError):
        compile_source("class Broken { int f() { return; } }")


def test_decode_error_surfaces():
    from repro.encode.deserializer import DecodeError
    with pytest.raises(DecodeError):
        decode_module(b"not a module")
