"""Module encoder: SafeTSA in-memory form -> wire bytes.

See :mod:`repro.encode` for the format overview.  Every write here is a
bounded symbol, a gamma count, or a raw IEEE field; the matching reads in
:mod:`repro.encode.deserializer` consume the identical context.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.encode.bitio import BitWriter
from repro.encode.common import (
    MAGIC,
    OPCODE_INDEX,
    PRIMITIVE_BASES,
    REGION_INDEX,
    TERM_INDEX,
)
from repro.ssa.cst import (
    RBasic,
    RDoWhile,
    RIf,
    RLabeled,
    RLoop,
    RSeq,
    RTry,
    RWhile,
)
from repro.ssa import ir
from repro.ssa.ir import Block, Function, Instr, Module, Phi, Plane
from repro.tsa.layout import FunctionLayout
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PrimitiveType,
    Type,
)


class EncodeError(Exception):
    """The module cannot be externalised (malformed or unsupported)."""


def _utf8(writer: BitWriter, text: str) -> None:
    data = text.encode("utf-8")
    writer.write_gamma(len(data))
    writer.write_bytes(data)


class _ModuleEncoder:
    def __init__(self, module: Module, size_report: Optional[dict] = None,
                 analyses=None):
        self.module = module
        self.table = module.type_table
        self.world = module.world
        self.writer = BitWriter()
        #: optional dict filled with per-class bit counts
        self.size_report = size_report
        #: optional :class:`repro.analysis.manager.AnalysisManager`;
        #: supplies cached dominator trees for the register layout
        self.analyses = analyses

    # ------------------------------------------------------------------
    # symbol section

    def encode(self) -> bytes:
        writer = self.writer
        writer.write_bytes(MAGIC)
        declared = self.table.declared_entries()
        writer.write_gamma(len(declared))
        class_entries = []
        for position, entry in enumerate(declared):
            if isinstance(entry.type, ClassType):
                writer.write_flag(False)
                _utf8(writer, entry.type.name)
                class_entries.append(entry)
            elif isinstance(entry.type, ArrayType):
                writer.write_flag(True)
                elem_index = self.table.index_of(entry.type.element)
                if elem_index >= entry.index:
                    raise EncodeError("array element declared after array")
                writer.write_bounded(elem_index, entry.index)
            else:
                raise EncodeError(f"cannot declare {entry.type}")
        table_size = len(self.table)
        for entry in class_entries:
            info = self.world.class_of(entry.type)
            super_index = self.table.index_of(info.superclass.type)
            writer.write_bounded(super_index, table_size)
            writer.write_flag(info.is_abstract)
        if self.size_report is not None:
            self.size_report["_header"] = writer.bit_length()
        for entry in class_entries:
            info = self.world.class_of(entry.type)
            start = writer.bit_length()
            self._encode_members(info, table_size)
            if self.size_report is not None:
                self.size_report.setdefault(info.name, 0)
                self.size_report[info.name] += writer.bit_length() - start
        for entry in class_entries:
            info = self.world.class_of(entry.type)
            start = writer.bit_length()
            for method in info.methods:
                function = self.module.functions.get(method)
                if function is not None:
                    self._encode_function(function)
            if self.size_report is not None:
                self.size_report[info.name] += writer.bit_length() - start
        return writer.getvalue()

    def _encode_members(self, info, table_size: int) -> None:
        writer = self.writer
        writer.write_gamma(len(info.fields))
        for field in info.fields:
            _utf8(writer, field.name)
            writer.write_flag(field.is_static)
            writer.write_flag(field.is_final)
            writer.write_bounded(self.table.index_of(field.type), table_size)
        writer.write_gamma(len(info.methods))
        for method in info.methods:
            _utf8(writer, method.name)
            writer.write_flag(method.is_static)
            writer.write_flag(method.is_abstract)
            writer.write_gamma(len(method.param_types))
            for param in method.param_types:
                writer.write_bounded(self.table.index_of(param), table_size)
            writer.write_bounded(self.table.index_of(method.return_type),
                                 table_size)
            writer.write_flag(method in self.module.functions)

    # ------------------------------------------------------------------
    # method bodies

    def _encode_function(self, function: Function) -> None:
        _FunctionEncoder(self, function).encode()


class _FunctionEncoder:
    def __init__(self, parent: _ModuleEncoder, function: Function):
        self.module = parent.module
        self.table = parent.table
        self.world = parent.world
        self.writer = parent.writer
        self.function = function
        domtree = parent.analyses.get("domtree", function) \
            if parent.analyses is not None else None
        self.layout = FunctionLayout(function, domtree=domtree)
        self.size_report = parent.size_report
        #: block id -> enclosing dispatch block (exception context)
        self.dispatch_of: dict[int, Optional[Block]] = {}

    def encode(self) -> None:
        start = self.writer.bit_length()
        self._encode_region(self.function.cst,
                            break_depth=0, loop_depth=0, dispatch=None)
        after_cst = self.writer.bit_length()
        for block in self.layout.order:
            self._encode_block(block)
        after_blocks = self.writer.bit_length()
        for block in self.layout.order:
            self._encode_phi_operands(block)
        after_phis = self.writer.bit_length()
        if self.size_report is not None:
            phases = self.size_report.setdefault(
                "_phases", {"cst": 0, "instructions": 0, "phi_operands": 0})
            phases["cst"] += after_cst - start
            phases["instructions"] += after_blocks - after_cst
            phases["phi_operands"] += after_phis - after_blocks

    # -- phase 1: control structure tree --------------------------------

    def _encode_region(self, region, break_depth: int, loop_depth: int,
                       dispatch: Optional[Block]) -> None:
        writer = self.writer
        if isinstance(region, RBasic):
            writer.write_bounded(REGION_INDEX["basic"], len(REGION_INDEX))
            self._register(region.block, dispatch)
            term = region.block.term
            writer.write_bounded(TERM_INDEX[term.kind], len(TERM_INDEX))
            if term.kind == "break":
                if break_depth == 0:
                    raise EncodeError("break outside a breakable region")
                writer.write_bounded(term.depth, break_depth)
            elif term.kind == "continue":
                if loop_depth == 0:
                    raise EncodeError("continue outside a loop")
                writer.write_bounded(term.depth, loop_depth)
            if dispatch is not None:
                writer.write_flag(region.exc)
            elif region.exc:
                raise EncodeError("exception edge outside a try body")
            return
        if isinstance(region, RSeq):
            writer.write_bounded(REGION_INDEX["seq"], len(REGION_INDEX))
            writer.write_gamma(len(region.regions))
            for child in region.regions:
                self._encode_region(child, break_depth, loop_depth, dispatch)
            return
        if isinstance(region, RIf):
            symbol = "ifelse" if region.else_region is not None else "if"
            writer.write_bounded(REGION_INDEX[symbol], len(REGION_INDEX))
            self._register(region.cond_block, dispatch)
            self._encode_region(region.then_region, break_depth, loop_depth,
                                dispatch)
            if region.else_region is not None:
                self._encode_region(region.else_region, break_depth,
                                    loop_depth, dispatch)
            return
        if isinstance(region, RWhile):
            writer.write_bounded(REGION_INDEX["while"], len(REGION_INDEX))
            self._register(region.header, dispatch)
            self._encode_region(region.body, break_depth + 1, loop_depth + 1,
                                dispatch)
            return
        if isinstance(region, RDoWhile):
            writer.write_bounded(REGION_INDEX["dowhile"], len(REGION_INDEX))
            self._encode_region(region.body, break_depth + 1, loop_depth + 1,
                                dispatch)
            self._register(region.cond_block, dispatch)
            return
        if isinstance(region, RLoop):
            writer.write_bounded(REGION_INDEX["loop"], len(REGION_INDEX))
            self._encode_region(region.body, break_depth + 1, loop_depth + 1,
                                dispatch)
            return
        if isinstance(region, RLabeled):
            writer.write_bounded(REGION_INDEX["labeled"], len(REGION_INDEX))
            self._encode_region(region.body, break_depth + 1, loop_depth,
                                dispatch)
            return
        if isinstance(region, RTry):
            writer.write_bounded(REGION_INDEX["try"], len(REGION_INDEX))
            self._encode_region(region.body, break_depth, loop_depth,
                                region.dispatch_block)
            self._encode_region(region.handler, break_depth, loop_depth,
                                dispatch)
            return
        raise EncodeError(f"unknown region {type(region).__name__}")

    def _register(self, block: Block, dispatch: Optional[Block]) -> None:
        self.dispatch_of[block.id] = dispatch

    # -- phase 2: blocks in dominator pre-order ---------------------------

    def _plane_symbol(self, plane: Plane) -> None:
        if plane.kind == "safeidx":
            raise EncodeError("safe-index phis are not supported by the "
                              "wire format")
        self.writer.write_bounded(self.table.index_of(plane.type),
                                  len(self.table))
        if plane.type.is_reference():
            self.writer.write_flag(plane.kind == "safe")

    def _encode_block(self, block: Block) -> None:
        writer = self.writer
        writer.write_gamma(len(block.phis))
        self._defined: dict[Plane, int] = {}
        for phi in block.phis:
            self._plane_symbol(phi.plane)
            self._defined[phi.plane] = self._defined.get(phi.plane, 0) + 1
        writer.write_gamma(len(block.instrs))
        self._block = block
        for instr in block.instrs:
            self._encode_instr(block, instr)
            if instr.plane is not None:
                self._defined[instr.plane] = \
                    self._defined.get(instr.plane, 0) + 1
        term = block.term
        if term is None:
            raise EncodeError(f"B{block.id} has no terminator")
        if term.kind == "branch":
            self._ref(block, term.value, Plane.of_type(BOOLEAN))
        elif term.kind == "return" and term.value is not None:
            self._ref(block, term.value,
                      Plane.of_type(self.function.method.return_type))
        elif term.kind == "throw":
            self._ref(block, term.value,
                      Plane.safe(ClassType("java.lang.Throwable")))

    def _ref(self, block: Block, operand: Instr, plane: Plane) -> None:
        """Encode a value reference on a known plane."""
        if operand.plane != plane:
            raise EncodeError(
                f"operand v{operand.id} on {operand.plane}, context "
                f"requires {plane}")
        defined = self._defined.get(plane, 0)
        alphabet = self.layout.alphabet_size(block, plane, defined)
        flat = self.layout.flat_index(block, operand, defined)
        self.writer.write_bounded(flat, alphabet)

    def _type_ref(self, type: Type) -> None:
        self.writer.write_bounded(self.table.index_of(type), len(self.table))

    def _member_index(self, index: int, table_len: int) -> None:
        self.writer.write_bounded(index, table_len)

    def _encode_instr(self, block: Block, instr: Instr) -> None:
        writer = self.writer
        opcode = instr.opcode
        writer.write_bounded(OPCODE_INDEX[opcode], len(OPCODE_INDEX))
        handler = getattr(self, "_op_" + type(instr).__name__.lower())
        handler(block, instr)

    # -- per-opcode bodies -------------------------------------------------

    def _op_const(self, block: Block, instr: ir.Const) -> None:
        writer = self.writer
        self._type_ref(instr.type)
        type = instr.type
        if type is INT or type is LONG:
            writer.write_signed_gamma(instr.value)
        elif type is BOOLEAN:
            writer.write_flag(bool(instr.value))
        elif type is CHAR:
            writer.write_bits(instr.value, 16)
        elif type is FLOAT:
            writer.write_bits(
                struct.unpack(">I", struct.pack(">f", instr.value))[0], 32)
        elif type is DOUBLE:
            writer.write_bits(
                struct.unpack(">Q", struct.pack(">d", instr.value))[0], 64)
        elif type == ClassType("java.lang.String"):
            if instr.value is None:
                writer.write_flag(False)
            else:
                writer.write_flag(True)
                _utf8(writer, instr.value)
        elif type.is_reference():
            if instr.value is not None:
                raise EncodeError("non-null constant of reference type")
        else:
            raise EncodeError(f"cannot encode constant of type {type}")

    def _op_param(self, block: Block, instr: ir.Param) -> None:
        method = self.function.method
        arity = len(method.param_types) + (0 if method.is_static else 1)
        self.writer.write_bounded(instr.index, arity)

    def _op_prim(self, block: Block, instr: ir.Prim) -> None:
        operation = instr.operation
        base_index = self.table.index_of(operation.base)
        if base_index >= PRIMITIVE_BASES:
            raise EncodeError(f"bad primitive base {operation.base}")
        self.writer.write_bounded(base_index, PRIMITIVE_BASES)
        from repro.typesys.ops import OPS_BY_TYPE
        ops = OPS_BY_TYPE[operation.base]
        self.writer.write_bounded(operation.index, len(ops))
        for operand, param in zip(instr.operands, operation.params):
            self._ref(block, operand, Plane.of_type(param))

    def _op_refcmp(self, block: Block, instr: ir.RefCmp) -> None:
        self.writer.write_flag(instr.is_eq)
        self._type_ref(instr.plane_type)
        plane = Plane.of_type(instr.plane_type)
        self._ref(block, instr.operands[0], plane)
        self._ref(block, instr.operands[1], plane)

    def _op_nullcheck(self, block: Block, instr: ir.NullCheck) -> None:
        self._type_ref(instr.ref_type)
        self._ref(block, instr.operands[0], Plane.of_type(instr.ref_type))

    def _op_idxcheck(self, block: Block, instr: ir.IdxCheck) -> None:
        array_type = instr.array.plane.type
        self._type_ref(array_type)
        self._ref(block, instr.array, Plane.safe(array_type))
        self._ref(block, instr.index, Plane.of_type(INT))

    def _op_upcast(self, block: Block, instr: ir.Upcast) -> None:
        self._type_ref(instr.target_type)
        source = instr.operands[0]
        self._type_ref(source.plane.type)
        self._ref(block, source, source.plane)

    def _op_downcast(self, block: Block, instr: ir.Downcast) -> None:
        self._plane_symbol(instr.plane)
        source = instr.operands[0]
        self._plane_symbol(source.plane)
        self._ref(block, source, source.plane)

    def _op_getfield(self, block: Block, instr: ir.GetField) -> None:
        self._encode_field_access(block, instr, value=None)

    def _op_setfield(self, block: Block, instr: ir.SetField) -> None:
        self._encode_field_access(block, instr, value=instr.operands[1])

    def _encode_field_access(self, block: Block, instr,
                             value: Optional[Instr]) -> None:
        base = instr.base
        self._type_ref(base.type)
        field_table = self.table.field_table(base)
        self._member_index(self.table.field_index(base, instr.field),
                           len(field_table))
        self._ref(block, instr.operands[0], Plane.safe(base.type))
        if value is not None:
            self._ref(block, value, Plane.of_type(instr.field.type))

    def _op_getstatic(self, block: Block, instr: ir.GetStatic) -> None:
        self._encode_static_access(block, instr, value=None)

    def _op_setstatic(self, block: Block, instr: ir.SetStatic) -> None:
        self._encode_static_access(block, instr, value=instr.operands[0])

    def _encode_static_access(self, block: Block, instr,
                              value: Optional[Instr]) -> None:
        declaring = instr.field.declaring
        self._type_ref(declaring.type)
        field_table = self.table.field_table(declaring)
        self._member_index(self.table.field_index(declaring, instr.field),
                           len(field_table))
        if value is not None:
            self._ref(block, value, Plane.of_type(instr.field.type))

    def _op_getelt(self, block: Block, instr: ir.GetElt) -> None:
        self._encode_elt(block, instr, value=None)

    def _op_setelt(self, block: Block, instr: ir.SetElt) -> None:
        self._encode_elt(block, instr, value=instr.operands[2])

    def _encode_elt(self, block: Block, instr,
                    value: Optional[Instr]) -> None:
        self._type_ref(instr.array_type)
        array = instr.operands[0]
        self._ref(block, array, Plane.safe(instr.array_type))
        index = instr.operands[1]
        self._ref(block, index, Plane.safe_index(array))
        if value is not None:
            self._ref(block, value,
                      Plane.of_type(instr.array_type.element))

    def _op_arraylen(self, block: Block, instr: ir.ArrayLen) -> None:
        self._type_ref(instr.array_type)
        self._ref(block, instr.operands[0], Plane.safe(instr.array_type))

    def _op_new(self, block: Block, instr: ir.New) -> None:
        self._type_ref(instr.class_info.type)

    def _op_newarray(self, block: Block, instr: ir.NewArray) -> None:
        self._type_ref(instr.array_type)
        self._ref(block, instr.operands[0], Plane.of_type(INT))

    def _op_instanceof(self, block: Block, instr: ir.InstanceOf) -> None:
        self._type_ref(instr.target_type)
        source = instr.operands[0]
        self._type_ref(source.plane.type)
        self._ref(block, source, source.plane)

    def _op_call(self, block: Block, instr: ir.Call) -> None:
        base = instr.base
        self._type_ref(base.type)
        method_table = self.table.method_table(base)
        self._member_index(self.table.method_index(base, instr.method),
                           len(method_table))
        method = instr.method
        offset = 0
        if not method.is_static:
            self._ref(block, instr.operands[0], Plane.safe(base.type))
            offset = 1
        for operand, param in zip(instr.operands[offset:],
                                  method.param_types):
            self._ref(block, operand, Plane.of_type(param))

    def _op_caughtexc(self, block: Block, instr: ir.CaughtExc) -> None:
        pass

    # -- phase 3: phi operands ---------------------------------------------

    def _encode_phi_operands(self, block: Block) -> None:
        for phi in block.phis:
            for operand, (pred, _kind) in zip(phi.operands, block.preds):
                if operand.plane != phi.plane:
                    raise EncodeError("phi operand plane mismatch")
                defined = self.layout.regs_at(pred, phi.plane)
                alphabet = self.layout.alphabet_size(pred, phi.plane,
                                                     defined)
                flat = self.layout.flat_index(pred, operand, defined)
                self.writer.write_bounded(flat, alphabet)


def encode_module(module: Module,
                  size_report: Optional[dict] = None, *,
                  analyses=None, format_version: str = "stsa1",
                  store=None) -> bytes:
    """Externalise ``module`` into SafeTSA wire bytes.

    ``size_report``, when given, is filled with per-class bit counts
    (plus ``_header`` for the shared type-table section) so the Figure 5
    harness can attribute file size to individual classes.  ``analyses``
    optionally shares an :class:`repro.analysis.manager.AnalysisManager`
    so the per-function register layout reuses cached dominator trees.

    ``format_version`` selects the distribution layout through the
    :mod:`repro.encode.format` registry: the default ``"stsa1"`` is the
    bit-identical historical stream; ``"stsa2"`` wraps that stream in a
    self-contained v2 envelope (dictionary factoring and deltas are
    publisher batch operations -- see :func:`repro.encode.format.
    encode_modules_v2` / ``encode_delta``).
    """
    wire = _ModuleEncoder(module, size_report, analyses=analyses).encode()
    if format_version == "stsa1":
        return wire
    from repro.encode.format import FORMAT_BY_VERSION, encode_v2
    if format_version not in FORMAT_BY_VERSION:
        raise ValueError(f"unknown wire format version {format_version!r}")
    return encode_v2(wire, store=store)
