"""The SafeTSA interpreter: executes :class:`~repro.ssa.ir.Function` bodies.

Execution walks the CFG block by block.  Register state is a per-frame
mapping from instruction id to value; dominance guarantees every operand
was computed before its use, so no scoping machinery is needed at
runtime.  Phi operands are selected by the index of the incoming edge in
the block's canonical predecessor list -- the same list the wire format's
phi operand order is defined by.
"""

from __future__ import annotations

from typing import Optional

from repro.interp.heap import (
    ArrayRef,
    JavaError,
    JStr,
    ObjectRef,
    value_instanceof,
)
from repro.interp.runtime import Runtime
from repro.ssa import ir
from repro.ssa.ir import Block, Function, Module
from repro.typesys.world import MethodInfo


class InterpreterError(Exception):
    """Internal execution failure (invalid module or interpreter bug)."""


class StepLimitExceeded(InterpreterError):
    """The configured execution budget ran out."""


class AllocationLimitExceeded(InterpreterError):
    """An array allocation exceeded the configured cap (fuzzing guard)."""


class ExecutionResult:
    """Observable outcome of running an entry point."""

    def __init__(self, value, exception: Optional[ObjectRef], stdout: str,
                 steps: int):
        self.value = value
        self.exception = exception
        self.stdout = stdout
        self.steps = steps

    @property
    def completed(self) -> bool:
        return self.exception is None

    def exception_name(self) -> Optional[str]:
        return self.exception.class_info.name if self.exception else None

    def __repr__(self) -> str:  # pragma: no cover
        if self.exception is not None:
            return f"<ExecutionResult exception={self.exception_name()}>"
        return f"<ExecutionResult value={self.value!r}>"


class Interpreter:
    """Executes a SafeTSA module."""

    def __init__(self, module: Module, max_steps: int = 50_000_000):
        self.module = module
        self.world = module.world
        self.runtime = Runtime(module.world)
        self.runtime.invoke_virtual = self._invoke_virtual_for_runtime
        self.max_steps = max_steps
        #: optional cap on single-array allocations; None = unlimited.
        #: The fuzz harness sets this so a mutated length constant in an
        #: otherwise valid module cannot exhaust host memory.
        self.max_array_length: Optional[int] = None
        self.steps = 0
        self.check_counts = {"nullcheck": 0, "idxcheck": 0, "upcast": 0}
        self._initialized = False
        #: block id -> _BlockPlan; per-block handler/phi/terminator
        #: resolution done once instead of per executed instruction.
        self._plans: dict[int, _BlockPlan] = {}

    # ==================================================================
    # entry points

    def run_main(self, class_name: Optional[str] = None,
                 method_name: str = "main") -> ExecutionResult:
        function = self._find_main(class_name, method_name)
        args: list = []
        if function.method.param_types:
            args = [None]  # String[] args, unused by the corpus
        return self.run_function(function, args)

    def run_function(self, function: Function, args: list) -> ExecutionResult:
        self._ensure_initialized()
        exception: Optional[ObjectRef] = None
        value = None
        try:
            value = self.call(function, args)
        except JavaError as error:
            exception = error.value
        return ExecutionResult(value, exception,
                               "".join(self.runtime.stdout), self.steps)

    def _find_main(self, class_name: Optional[str],
                   method_name: str) -> Function:
        # iterate keys only: under a lazy load, touching .items() would
        # force every body just to find one entry point
        for method in self.module.functions:
            if method.name != method_name or not method.is_static:
                continue
            if class_name is not None and \
                    method.declaring.name.split(".")[-1] != \
                    class_name.split(".")[-1]:
                continue
            return self.module.functions[method]
        raise InterpreterError(
            f"no static {method_name} method found"
            + (f" in {class_name}" if class_name else ""))

    def _ensure_initialized(self) -> None:
        """Run every <clinit> once, in class declaration order."""
        if self._initialized:
            return
        self._initialized = True
        for info in self.module.classes:
            for method in info.methods:
                if method.name == "<clinit>":
                    function = self.module.functions.get(method)
                    if function is not None:
                        self.call(function, [])

    # ==================================================================
    # calls

    def call(self, function: Function, args: list):
        frame: dict[int, object] = {}
        for param in function.params:
            frame[param.id] = args[param.index]
        plans = self._plans
        max_steps = self.max_steps
        block = function.entry
        plan = plans.get(block.id)
        if plan is None:
            plan = self._plan(block)
        came_key: Optional[tuple[int, str]] = None
        came_block: Optional[Block] = None
        exception: Optional[ObjectRef] = None
        while True:
            self.steps += 1
            if self.steps > max_steps:
                raise StepLimitExceeded(
                    f"exceeded {max_steps} steps in {function.name}")
            moves = plan.moves
            if moves is not None:
                move = moves.get(came_key)
                if move is None:
                    raise self._phi_edge_error(plan.block, came_block)
                targets, sources = move
                # parallel copy: read every source before the first write
                # (a phi operand may itself be a phi of this block)
                values = [frame[source] for source in sources]
                for target, value in zip(targets, values):
                    frame[target] = value
            for handler, instr, store in plan.ops:
                if handler is None:  # CaughtExc
                    frame[store] = exception
                    continue
                try:
                    result = handler(instr, frame)
                except JavaError as error:
                    target = plan.exc_target
                    if target is None:
                        raise
                    exception = error.value
                    came_key = (plan.block_id, "exc")
                    came_block = plan.block
                    plan = plans.get(target.id) or self._plan(target)
                    break
                if store is not None:
                    frame[store] = result
            else:
                kind = plan.kind
                if kind == "branch":
                    norm = plan.norm
                    next_block = norm[0] if frame[plan.value_id] else norm[1]
                elif plan.succ is not None:  # fall / break / continue
                    next_block = plan.succ
                elif kind == "return":
                    if plan.value_id is not None:
                        return frame[plan.value_id]
                    return None
                elif kind == "throw":
                    target = plan.exc_target
                    if target is None:
                        raise JavaError(frame[plan.value_id])
                    # a throw inside a try body jumps to the dispatch block
                    exception = frame[plan.value_id]
                    came_key = (plan.block_id, "exc")
                    came_block = plan.block
                    plan = plans.get(target.id) or self._plan(target)
                    continue
                elif kind == "unreachable":
                    raise InterpreterError(
                        f"reached unreachable terminator in {function.name}")
                elif kind is None:
                    raise InterpreterError(
                        f"block B{plan.block_id} has no terminator")
                else:
                    raise InterpreterError(
                        f"B{plan.block_id} ({kind}) has {len(plan.norm)} "
                        "normal successors")
                came_key = (plan.block_id, "norm")
                came_block = plan.block
                plan = plans.get(next_block.id) or self._plan(next_block)

    def _plan(self, block: Block) -> "_BlockPlan":
        plan = _BlockPlan(self, block)
        self._plans[block.id] = plan
        return plan

    @staticmethod
    def _phi_edge_error(block: Block, came_block) -> "InterpreterError":
        if came_block is None:
            return InterpreterError(f"phis in entry block B{block.id}")
        return InterpreterError(
            f"edge B{came_block.id}->B{block.id} not in pred list")

    @staticmethod
    def _edge_index(block: Block, came_from) -> int:
        if came_from is None:
            raise InterpreterError(f"phis in entry block B{block.id}")
        source, kind = came_from
        for index, (pred, pred_kind) in enumerate(block.preds):
            if pred is source and pred_kind == kind:
                return index
        raise InterpreterError(
            f"edge B{source.id}->B{block.id} not in pred list")

    @staticmethod
    def _exc_edge_target(block: Block) -> Optional[Block]:
        for succ, kind in block.succs:
            if kind == "exc":
                return succ
        return None

    # ==================================================================
    # instruction execution

    def _execute(self, instr: ir.Instr, frame: dict):
        method = getattr(self, "_exec_" + type(instr).__name__.lower(), None)
        if method is None:
            raise InterpreterError(
                f"cannot execute {type(instr).__name__}")
        return method(instr, frame)

    def _exec_const(self, instr: ir.Const, frame):
        if isinstance(instr.value, str):
            return JStr.intern(instr.value)
        return instr.value

    def _exec_param(self, instr: ir.Param, frame):
        return frame[instr.id]

    def _exec_prim(self, instr: ir.Prim, frame):
        args = [frame[op.id] for op in instr.operands]
        try:
            return instr.operation.fold(*args)
        except ZeroDivisionError:
            self.runtime.throw("java.lang.ArithmeticException", "/ by zero")

    def _exec_refcmp(self, instr: ir.RefCmp, frame):
        left = frame[instr.operands[0].id]
        right = frame[instr.operands[1].id]
        same = left is right
        return same if instr.is_eq else not same

    def _exec_nullcheck(self, instr: ir.NullCheck, frame):
        value = frame[instr.operands[0].id]
        self.check_counts["nullcheck"] += 1
        if value is None:
            self.runtime.throw("java.lang.NullPointerException")
        return value

    def _exec_idxcheck(self, instr: ir.IdxCheck, frame):
        array = frame[instr.array.id]
        index = frame[instr.index.id]
        self.check_counts["idxcheck"] += 1
        if not isinstance(array, ArrayRef):
            raise InterpreterError("idxcheck on non-array")
        if not 0 <= index < array.length:
            self.runtime.throw(
                "java.lang.ArrayIndexOutOfBoundsException",
                f"Index {index} out of bounds for length {array.length}")
        return index

    def _exec_upcast(self, instr: ir.Upcast, frame):
        value = frame[instr.operands[0].id]
        self.check_counts["upcast"] += 1
        if value is None:
            return None  # Java checkcast passes null through
        if not value_instanceof(self.world, value, instr.target_type):
            self.runtime.throw("java.lang.ClassCastException",
                               str(instr.target_type))
        return value

    def _exec_downcast(self, instr: ir.Downcast, frame):
        return frame[instr.operands[0].id]

    def _exec_getfield(self, instr: ir.GetField, frame):
        obj = frame[instr.operands[0].id]
        return obj.fields[instr.field.slot]

    def _exec_setfield(self, instr: ir.SetField, frame):
        obj = frame[instr.operands[0].id]
        obj.fields[instr.field.slot] = frame[instr.operands[1].id]
        return None

    def _exec_getstatic(self, instr: ir.GetStatic, frame):
        return self.runtime.get_static(instr.field)

    def _exec_setstatic(self, instr: ir.SetStatic, frame):
        self.runtime.set_static(instr.field, frame[instr.operands[0].id])
        return None

    def _exec_getelt(self, instr: ir.GetElt, frame):
        array = frame[instr.operands[0].id]
        return array.elements[frame[instr.operands[1].id]]

    def _exec_setelt(self, instr: ir.SetElt, frame):
        array = frame[instr.operands[0].id]
        value = frame[instr.operands[2].id]
        self._array_store_check(array, value)
        array.elements[frame[instr.operands[1].id]] = value
        return None

    def _array_store_check(self, array, value) -> None:
        """Java array covariance: reference stores are checked against
        the array's *runtime* element type (ArrayStoreException)."""
        element = array.array_type.element
        if value is None or not element.is_reference():
            return
        if not value_instanceof(self.world, value, element):
            self.runtime.throw("java.lang.ArrayStoreException",
                               str(element))

    def _exec_arraylen(self, instr: ir.ArrayLen, frame):
        return frame[instr.operands[0].id].length

    def _exec_new(self, instr: ir.New, frame):
        return ObjectRef(instr.class_info)

    def _exec_newarray(self, instr: ir.NewArray, frame):
        length = frame[instr.operands[0].id]
        if length < 0:
            self.runtime.throw("java.lang.NegativeArraySizeException",
                               str(length))
        if self.max_array_length is not None \
                and length > self.max_array_length:
            raise AllocationLimitExceeded(
                f"new array of {length} > cap {self.max_array_length}")
        return ArrayRef(instr.array_type, length)

    def _exec_instanceof(self, instr: ir.InstanceOf, frame):
        value = frame[instr.operands[0].id]
        return value_instanceof(self.world, value, instr.target_type)

    def _exec_call(self, instr: ir.Call, frame):
        args = [frame[op.id] for op in instr.operands]
        method = instr.method
        if instr.dispatch:
            receiver = args[0]
            method = self._resolve_virtual(receiver, method)
        return self._invoke(method, args)

    def _resolve_virtual(self, receiver, method: MethodInfo) -> MethodInfo:
        from repro.interp.heap import runtime_class
        cls = runtime_class(self.world, receiver)
        if cls is None:
            raise InterpreterError("virtual dispatch on null receiver")
        if method.vtable_slot >= 0 and method.vtable_slot < len(cls.vtable):
            resolved = cls.vtable[method.vtable_slot]
            if resolved.signature == method.signature:
                return resolved
        # builtin receiver (e.g. JStr) dispatches by signature search
        for candidate in cls.methods_named(method.name):
            if candidate.signature == method.signature:
                return candidate
        return method

    def _invoke(self, method: MethodInfo, args: list):
        if method.is_native:
            return self.runtime.invoke_native(method, args)
        function = self.module.functions.get(method)
        if function is None:
            raise InterpreterError(
                f"no body for method {method.qualified_name}")
        return self.call(function, args)

    def _invoke_virtual_for_runtime(self, receiver, method: MethodInfo):
        resolved = self._resolve_virtual(receiver, method)
        return self._invoke(resolved, [receiver])


class _BlockPlan:
    """Everything :meth:`Interpreter.call` would otherwise resolve per
    executed instruction -- handler bound methods, phi routing per
    incoming edge, terminator shape -- resolved once per block."""

    __slots__ = ("block", "block_id", "ops", "moves", "kind", "value_id",
                 "norm", "succ", "exc_target", "hs")

    def __init__(self, interp: Interpreter, block: Block):
        self.block = block
        self.block_id = block.id
        # loop-header state, set by the tracing interpreter's _plan
        # override; the base interpreter never reads it
        self.hs = None
        ops = []
        for instr in block.instrs:
            if isinstance(instr, ir.CaughtExc):
                ops.append((None, instr, instr.id))
                continue
            handler = getattr(
                interp, "_exec_" + type(instr).__name__.lower(), None)
            if handler is None:
                raise InterpreterError(
                    f"cannot execute {type(instr).__name__}")
            store = instr.id if instr.plane is not None else None
            ops.append((handler, instr, store))
        self.ops = tuple(ops)
        if block.phis:
            phi_ids = tuple(phi.id for phi in block.phis)
            moves: dict = {}
            for index, (pred, kind) in enumerate(block.preds):
                # setdefault: a duplicated edge keeps its first index,
                # matching the old linear _edge_index scan
                moves.setdefault(
                    (pred.id, kind),
                    (phi_ids,
                     tuple(phi.operands[index].id for phi in block.phis)))
            self.moves = moves
        else:
            self.moves = None
        term = block.term
        self.kind = term.kind if term is not None else None
        self.value_id = None
        if term is not None and term.value is not None:
            self.value_id = term.value.id
        self.norm = tuple(s for s, kind in block.succs if kind == "norm")
        self.succ = None
        if self.kind in ("fall", "break", "continue") and len(self.norm) == 1:
            self.succ = self.norm[0]
        self.exc_target = None
        for succ, kind in block.succs:
            if kind == "exc":
                self.exc_target = succ
                break
