"""Trace-based speculative execution tier for the interpreter.

The method JIT proves SafeTSA arrives "ready for code generation"; this
module adds the next tier for loop-heavy code: record one hot linear
iteration, compile it to a guarded straight-line Python fast path, and
run it until a guard fails.  SafeTSA makes the transformation unusually
clean -- the recorded path is itself straight-line SSA, every branch
becomes a typed guard on the already-computed condition register, every
phi becomes an explicit parallel move, and the explicit ``nullcheck`` /
``idxcheck`` / ``upcast`` instructions stay in recorded order, so trap
identity is preserved bit-for-bit.

Lifecycle per ``(function, loop header)``:

1. **count** -- back-edge arrivals at the header bump a counter; at the
   configurable threshold the next arrival starts a recording.
2. **record** -- the interpreter appends each executed block until it
   returns to the header via a normal back edge (close), leaves the
   loop, takes an exception edge, or exceeds ``MAX_TRACE_BLOCKS``
   (abort; repeated aborts blacklist the header).
3. **compiled** -- arrivals at the header *via the recorded latch edge*
   enter the trace, which loops over the fast path until a guard fails,
   a trap fires, or the step budget nears exhaustion.  Every exit
   materialises the register frame (``_MISSING``-guarded write-back)
   and resumes the interpreter at the exact equivalent point, so
   results, heap effects, ``steps`` and ``check_counts`` are identical
   to the untraced interpreter.
4. **blacklist** -- a trace that keeps exiting with zero committed
   trips is dropped and its header is never considered again.

Compiled paths are remembered in :class:`repro.cache.TraceCache` keyed
on ``(wire_digest, qualified function name, header index)`` using
reachable-block indices (block *ids* are not stable across decodes), so
a warm serve process re-creates traces without re-recording.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.loops import find_loops
from repro.cache import TraceCache, default_trace_cache
from repro.interp.heap import JavaError, ObjectRef
from repro.interp.interpreter import (
    AllocationLimitExceeded,
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
)
from repro.interp.jit import _Emitter, _FunctionTranslator
from repro.ssa import ir
from repro.ssa.ir import Block, Function, Module

#: back-edge arrivals at a header before a recording starts
TRACE_DEFAULT_THRESHOLD = 16
#: longest recordable path (aborts recording of megamorphic loops);
#: sized so a dispatch loop's whole opcode cycle plus its confirming
#: second pass fits (see the recorder notes in TracingInterpreter.call)
MAX_TRACE_BLOCKS = 256
#: zero-trip trace exits before the trace is dropped for good
BLACKLIST_AFTER_ABORTS = 8
#: failed recording/compile attempts before the header is given up
BLACKLIST_AFTER_ATTEMPTS = 5

#: prologue sentinel: register not present in the frame at trace entry
_MISSING = object()


class _TraceExit(Exception):
    """Internal: leaves the trace loop carrying the exit site index."""

    def __init__(self, site: int):
        self.site = site


class _TraceCompileError(Exception):
    """The recorded path cannot be compiled (shape unsupported)."""


class _Site:
    """One exit point of a compiled trace."""

    __slots__ = ("kind", "block", "block_id", "resume", "exc_target",
                 "steps_prefix", "checks_prefix")

    def __init__(self, kind: str, block: Optional[Block], resume,
                 exc_target, steps_prefix: int,
                 checks_prefix: tuple[int, int, int]):
        self.kind = kind  # "budget" | "guard" | "trap"
        self.block = block
        self.block_id = block.id if block is not None else -1
        self.resume = resume          # guard: the untaken successor
        self.exc_target = exc_target  # trap: the exception edge target
        self.steps_prefix = steps_prefix
        self.checks_prefix = checks_prefix


class CompiledTrace:
    """A compiled fast path plus the metadata its exits need."""

    __slots__ = ("fn", "sites", "path_len", "per_trip_checks", "has_calls",
                 "entry_latch", "entry_latch_id", "path_indices", "aborts",
                 "entries", "trips")

    def __init__(self, fn, sites, path_len, per_trip_checks, has_calls,
                 entry_latch: Block, path_indices):
        self.fn = fn
        self.sites = sites
        self.path_len = path_len
        self.per_trip_checks = per_trip_checks
        self.has_calls = has_calls
        self.entry_latch = entry_latch
        self.entry_latch_id = entry_latch.id
        self.path_indices = path_indices
        self.aborts = 0
        self.entries = 0
        self.trips = 0


class _HeaderState:
    """Hotness / trace state of one loop header."""

    __slots__ = ("header", "header_id", "loop_blocks", "counter",
                 "failures", "trace", "blacklisted")

    def __init__(self, header: Block, loop_blocks: frozenset):
        self.header = header
        self.header_id = header.id
        self.loop_blocks = loop_blocks
        self.counter = 0
        self.failures = 0
        self.trace: Optional[CompiledTrace] = None
        self.blacklisted = False


class _FunctionState:
    """Per-function tracing state: loop headers and block indexing."""

    __slots__ = ("function", "name", "blocks", "index_of", "headers",
                 "live")

    def __init__(self, manager: "TraceManager", function: Function):
        self.function = function
        self.name = function.method.qualified_name
        self.blocks = list(function.reachable_blocks())
        self.index_of = {b.id: i for i, b in enumerate(self.blocks)}
        self.headers: dict[int, _HeaderState] = {}
        #: headers not yet blacklisted; at zero the per-block hook
        #: disables itself for this function entirely
        self.live = 0
        try:
            # memoized on the function: the CFG is immutable at run
            # time, and re-deriving dominators per interpreter would
            # dwarf short runs (the warm serve path spins up a fresh
            # TracingInterpreter per request)
            forest = getattr(function, "_loop_forest", None)
            if forest is None:
                forest = function._loop_forest = find_loops(function)
        except Exception:
            return  # malformed CFG: never trace this function
        for header_id, loop in forest.by_header.items():
            hs = _HeaderState(loop.header, frozenset(loop.blocks))
            self.headers[header_id] = hs
            manager.header_states[header_id] = hs
        self.live = len(self.headers)
        manager._preload(self)


# ----------------------------------------------------------------------
# interpreter adapter: call sites inside a trace route through the
# interpreter so nested frames keep counting steps and checks

class _InterpAdapter:
    """Duck-types the slice of :class:`JitCompiler` the shared
    ``_FunctionTranslator`` instruction handlers touch."""

    def __init__(self, interp: Interpreter):
        self.interp = interp
        self.world = interp.world
        self.runtime = interp.runtime

    def _invoker(self, call: ir.Call):
        interp = self.interp
        method = call.method
        if not call.dispatch:
            def invoke_static(*args):
                return interp._invoke(method, list(args))
            return invoke_static
        # memoize virtual resolution per runtime class (same scheme as
        # the method JIT), but invoke through the interpreter
        table: dict = {}
        resolve = interp._resolve_virtual
        invoke = interp._invoke

        def invoke_virtual(*args):
            receiver = args[0]
            key = id(receiver.class_info) if isinstance(
                receiver, ObjectRef) else id(receiver.__class__)
            target = table.get(key)
            if target is None:
                target = table[key] = resolve(receiver, method)
            return invoke(target, list(args))
        return invoke_virtual


def _trace_newarray_helper(interp: Interpreter, array_type):
    """Unlike the JIT's helper this honours ``max_array_length`` so a
    traced run keeps the interpreter's fuzzing allocation guard."""
    from repro.interp.heap import ArrayRef
    runtime = interp.runtime

    def newarray(length):
        if length < 0:
            runtime.throw("java.lang.NegativeArraySizeException",
                          str(length))
        cap = interp.max_array_length
        if cap is not None and length > cap:
            raise AllocationLimitExceeded(
                f"new array of {length} > cap {cap}")
        return ArrayRef(array_type, length)
    return newarray


class _TraceOps(_FunctionTranslator):
    """Instruction emission for traces: the JIT handlers, minus the
    shapes a linear trace cannot contain."""

    def __init__(self, adapter, function, env, emitter,
                 interp: Interpreter):
        super().__init__(adapter, function, env, emitter)
        self.interp = interp

    def _i_newarray(self, instr: ir.NewArray) -> None:
        helper = self.bind(_trace_newarray_helper(self.interp,
                                                  instr.array_type))
        self.out.emit(f"v{instr.id} = {helper}(v{instr.operands[0].id})")

    def _i_caughtexc(self, instr: ir.CaughtExc) -> None:
        raise _TraceCompileError("exception dispatch block on trace path")


_CHECK_KIND = {ir.NullCheck: 0, ir.IdxCheck: 1, ir.Upcast: 2}


class _TraceCompiler:
    """Compiles one recorded block path into a looping fast path.

    Generated shape (call-free flavour)::

        def _trace(interp, frame):
            _trips = 0; _pc = -1
            v3 = frame.get(3, _M); ...
            _maxtrips = (interp.max_steps - interp.steps) // PATH_LEN
            try:
                while True:
                    if _trips >= _maxtrips: raise _X(0)     # budget
                    v3, v5 = v9, v11        # header phis, latch edge
                    _pc = 2                 # next trap's site index
                    v7 = _g1(v3, v6)        # block bodies, JIT-style
                    if not v8: raise _X(1)  # branch -> guard
                    ...
                    _trips += 1
            except _X as _x:
                _site = _x.site; _err = None
            except _JavaError as _e:
                _site = _pc; _err = _e
            _ls = locals()
            for _i, _n in _W:               # frame materialisation
                _v = _ls[_n]
                if _v is not _M: frame[_i] = _v
            return _trips, _site, _err

    Traces containing calls cannot precompute a trip budget (nested
    frames consume steps too); they commit ``interp.steps`` per block
    top and raise the step limit inline instead, which keeps ``steps``
    exact in both flavours.
    """

    def __init__(self, interp: Interpreter, function: Function,
                 path: list[Block]):
        self.interp = interp
        self.function = function
        self.path = path
        self.env: dict = {"_JavaError": JavaError, "_X": _TraceExit,
                          "_M": _MISSING, "_SLE": StepLimitExceeded}
        self.out = _Emitter()
        self.ops = _TraceOps(_InterpAdapter(interp), function, self.env,
                             self.out, interp)
        self.sites: list[_Site] = []
        self.checks = [0, 0, 0]  # nullcheck, idxcheck, upcast per trip

    # -- path shape ----------------------------------------------------

    def _edge_move(self, source: Block,
                   target: Block) -> tuple[list[int], list[int]]:
        """Phi targets and sources for the norm edge source->target."""
        index = None
        for position, (pred, kind) in enumerate(target.preds):
            if pred is source and kind == "norm":
                index = position
                break
        if index is None:
            raise _TraceCompileError(
                f"edge B{source.id}->B{target.id} missing from preds")
        return ([phi.id for phi in target.phis],
                [phi.operands[index].id for phi in target.phis])

    def _collect(self) -> tuple[list[int], list[int], bool]:
        """All registers the path touches, write-back order, calls?"""
        regs: set[int] = set()
        writes: list[int] = []
        written: set[int] = set()
        has_calls = False

        def write(reg: int) -> None:
            regs.add(reg)
            if reg not in written:
                written.add(reg)
                writes.append(reg)

        path = self.path
        for k, block in enumerate(path):
            target = path[k + 1] if k + 1 < len(path) else path[0]
            if k == 0 and block.phis:  # header phis, latch edge
                targets, sources = self._edge_move(path[-1], block)
                regs.update(sources)
                for reg in targets:
                    write(reg)
            for instr in block.instrs:
                if isinstance(instr, ir.CaughtExc):
                    raise _TraceCompileError("caughtexc on trace path")
                if isinstance(instr, ir.Call):
                    if instr.dispatch or not instr.method.is_native:
                        has_calls = True
                for op in instr.operands:
                    regs.add(op.id)
                if instr.plane is not None:
                    write(instr.id)
            term = block.term
            if term is not None and term.value is not None:
                regs.add(term.value.id)
            if target.phis and k + 1 < len(path):
                targets, sources = self._edge_move(block, target)
                regs.update(sources)
                for reg in targets:
                    write(reg)
        return sorted(regs), writes, has_calls

    # -- emission ------------------------------------------------------

    def compile(self) -> CompiledTrace:
        interp = self.interp
        function = self.function
        path = self.path
        regs, writes, has_calls = self._collect()
        out = self.out
        out.emit("def _trace(interp, frame):")
        out.indent += 1
        out.emit("_trips = 0")
        out.emit("_pc = -1")
        for reg in regs:
            out.emit(f"v{reg} = frame.get({reg}, _M)")
        if has_calls:
            step_msg = self.ops.bind(
                f"exceeded {interp.max_steps} steps in {function.name}")
        else:
            out.emit(f"_maxtrips = (interp.max_steps - interp.steps) "
                     f"// {len(path)}")
        out.emit("try:")
        out.indent += 1
        out.emit("while True:")
        out.indent += 1
        # site 0 is the budget exit (call-free flavour only raises it)
        self.sites.append(_Site("budget", None, None, None, 0, (0, 0, 0)))
        if not has_calls:
            out.emit("if _trips >= _maxtrips: raise _X(0)")
        if path[0].phis:
            self._emit_move(*self._edge_move(path[-1], path[0]))
        for k, block in enumerate(path):
            if has_calls:
                out.emit("interp.steps += 1")
                out.emit(f"if interp.steps > interp.max_steps: "
                         f"raise _SLE({step_msg})")
            self._emit_block(k, block)
        out.emit("_trips += 1")
        out.indent -= 2
        out.emit("except _X as _x:")
        out.indent += 1
        out.emit("_site = _x.site")
        out.emit("_err = None")
        out.indent -= 1
        out.emit("except _JavaError as _e:")
        out.indent += 1
        out.emit("_site = _pc")
        out.emit("_err = _e")
        out.indent -= 1
        out.emit("_ls = locals()")
        out.emit("for _i, _n in _W:")
        out.indent += 1
        out.emit("_v = _ls[_n]")
        out.emit("if _v is not _M:")
        out.indent += 1
        out.emit("frame[_i] = _v")
        out.indent -= 2
        out.emit("return _trips, _site, _err")
        out.indent -= 1
        self.env["_W"] = tuple((reg, f"v{reg}") for reg in writes)
        code = out.source()
        try:
            exec(compile(code, f"<trace:{function.name}>", "exec"),
                 self.env)
        except SyntaxError as error:  # pragma: no cover - emitter bug
            raise _TraceCompileError(
                f"generated bad trace for {function.name}: {error}\n"
                f"{code}") from None
        return CompiledTrace(self.env["_trace"], tuple(self.sites),
                             len(path), tuple(self.checks), has_calls,
                             path[-1], None)

    def _emit_move(self, targets: list[int], sources: list[int]) -> None:
        if not targets:
            return
        lhs = ", ".join(f"v{t}" for t in targets)
        rhs = ", ".join(f"v{s}" for s in sources)
        self.out.emit(f"{lhs} = {rhs}")

    def _emit_block(self, k: int, block: Block) -> None:
        path = self.path
        next_expected = path[k + 1] if k + 1 < len(path) else path[0]
        exc_target = block.exc_succ()
        checks = self.checks
        for instr in block.instrs:
            if instr.traps:
                kind = _CHECK_KIND.get(type(instr))
                prefix = list(checks)
                if kind is not None:
                    # the interpreter counts a check before it throws
                    prefix[kind] += 1
                self.out.emit(f"_pc = {len(self.sites)}")
                self.sites.append(_Site(
                    "trap", block, None, exc_target, k + 1,
                    tuple(prefix)))
            self.ops._translate_instr(instr)
            kind = _CHECK_KIND.get(type(instr))
            if kind is not None:
                checks[kind] += 1
        term = block.term
        if term is None:
            raise _TraceCompileError(f"B{block.id} lacks a terminator")
        if term.kind == "branch":
            normal = block.normal_succs()
            if len(normal) != 2:
                raise _TraceCompileError("branch without two successors")
            if normal[0] is normal[1]:
                pass  # both arms reach the recorded block: no guard
            elif normal[0] is next_expected:
                self._emit_guard(f"not v{term.value.id}", block,
                                 normal[1], k)
            elif normal[1] is next_expected:
                self._emit_guard(f"v{term.value.id}", block,
                                 normal[0], k)
            else:
                raise _TraceCompileError(
                    f"recorded successor B{next_expected.id} is not a "
                    f"branch target of B{block.id}")
        elif term.kind in ("fall", "break", "continue"):
            normal = block.normal_succs()
            if len(normal) != 1 or normal[0] is not next_expected:
                raise _TraceCompileError(
                    f"B{block.id} does not fall to B{next_expected.id}")
        else:
            raise _TraceCompileError(
                f"{term.kind} terminator on trace path")
        if k + 1 < len(path) and next_expected.phis:
            self._emit_move(*self._edge_move(block, next_expected))

    def _emit_guard(self, condition: str, block: Block, resume: Block,
                    k: int) -> None:
        index = len(self.sites)
        self.sites.append(_Site("guard", block, resume, None, k + 1,
                                tuple(self.checks)))
        self.out.emit(f"if {condition}: raise _X({index})")


# ----------------------------------------------------------------------
# manager

class TraceManager:
    """Owns per-function tracing state, compilation, and the cache."""

    def __init__(self, interp: Interpreter,
                 threshold: int = TRACE_DEFAULT_THRESHOLD,
                 cache: Optional[TraceCache] = None):
        self.interp = interp
        self.threshold = max(1, int(threshold))
        self.cache = cache if cache is not None else default_trace_cache()
        self.digest = getattr(interp.module, "wire_digest", None)
        self._states: dict[int, _FunctionState] = {}
        #: block id -> header state, for annotating block plans (block
        #: ids are process-unique, so one flat map covers all functions)
        self.header_states: dict[int, _HeaderState] = {}
        self.compiled = 0
        self.preloaded = 0
        self.recordings = 0
        self.recording_aborts = 0
        self.blacklisted = 0
        self.entries = 0
        self.trips = 0

    def state_for(self, function: Function) -> _FunctionState:
        key = id(function)
        state = self._states.get(key)
        if state is None or state.function is not function:
            state = self._states[key] = _FunctionState(self, function)
        return state

    # -- recording lifecycle -------------------------------------------

    def finish_recording(self, fstate: _FunctionState, hs: _HeaderState,
                         path: list[Block]) -> None:
        if self._compile(fstate, hs, path):
            hs.counter = 0
        else:
            self.abort_recording(fstate, hs)

    def abort_recording(self, fstate: _FunctionState,
                        hs: _HeaderState) -> None:
        self.recording_aborts += 1
        hs.failures += 1
        hs.counter = 0
        if hs.failures >= BLACKLIST_AFTER_ATTEMPTS:
            self.blacklist(fstate, hs)

    def blacklist(self, fstate: _FunctionState, hs: _HeaderState) -> None:
        if not hs.blacklisted:
            hs.blacklisted = True
            hs.trace = None
            fstate.live -= 1
            self.blacklisted += 1
            # persist the verdict (empty path = negative entry) so warm
            # processes skip the whole count/record/abort cycle
            if self.cache and self.digest is not None:
                self.cache.put(self.digest, fstate.name,
                               fstate.index_of[hs.header_id], ())

    def _compile(self, fstate: _FunctionState, hs: _HeaderState,
                 path: list[Block]) -> bool:
        if not path or path[0] is not hs.header:
            return False
        try:
            trace = _TraceCompiler(self.interp, fstate.function,
                                   path).compile()
        except _TraceCompileError:
            return False
        except Exception:  # unsupported shape: fall back to interpreting
            return False
        trace.path_indices = tuple(fstate.index_of[b.id] for b in path)
        hs.trace = trace
        self.compiled += 1
        if self.cache and self.digest is not None:
            self.cache.put(self.digest, fstate.name,
                           fstate.index_of[hs.header_id],
                           trace.path_indices)
        return True

    def _preload(self, fstate: _FunctionState) -> None:
        """Recreate cached traces for a warm module: no re-recording."""
        if not self.cache or self.digest is None or not fstate.headers:
            return
        cached = self.cache.get(self.digest)
        if not cached:
            return
        count = len(fstate.blocks)
        for (name, header_index), indices in cached.items():
            if name != fstate.name:
                continue
            if any(i >= count for i in indices):
                continue
            hs = fstate.headers.get(fstate.blocks[header_index].id) \
                if header_index < count else None
            if hs is None or hs.trace is not None or hs.blacklisted:
                continue
            if not indices:
                # persisted blacklist: don't count, record, or retry
                hs.blacklisted = True
                fstate.live -= 1
                continue
            path = [fstate.blocks[i] for i in indices]
            if self._compile(fstate, hs, path):
                self.preloaded += 1

    def stats(self) -> dict:
        live = 0
        for state in self._states.values():
            for hs in state.headers.values():
                if hs.trace is not None:
                    live += 1
        return {
            "threshold": self.threshold,
            "compiled": self.compiled,
            "preloaded": self.preloaded,
            "live_traces": live,
            "recordings_finished": self.compiled - self.preloaded,
            "recording_aborts": self.recording_aborts,
            "blacklisted": self.blacklisted,
            "entries": self.entries,
            "trips": self.trips,
        }


# ----------------------------------------------------------------------
# the tracing interpreter

class TracingInterpreter(Interpreter):
    """An :class:`Interpreter` with the speculative trace tier enabled.

    Bit-identical to the base interpreter on every observable --
    result, stdout, heap effects, trap identity, ``steps`` and
    ``check_counts`` -- which the fuzz oracle's trace lane enforces.
    """

    def __init__(self, module: Module, max_steps: int = 50_000_000, *,
                 threshold: int = TRACE_DEFAULT_THRESHOLD,
                 trace_cache: Optional[TraceCache] = None):
        super().__init__(module, max_steps)
        self.traces = TraceManager(self, threshold=threshold,
                                   cache=trace_cache)

    def trace_stats(self) -> dict:
        return self.traces.stats()

    def _plan(self, block: Block):
        """Annotate loop-header plans with their header state so the
        execution loop's hook costs two pointer tests on non-header
        blocks instead of a dict probe per transfer."""
        plan = super()._plan(block)
        plan.hs = self.traces.header_states.get(block.id)
        return plan

    # The body below is the base `call` loop with the trace hook spliced
    # in at the block-arrival point; the hot-path cost for untraced code
    # is one dict lookup per executed block.
    def call(self, function: Function, args: list):
        frame: dict[int, object] = {}
        for param in function.params:
            frame[param.id] = args[param.index]
        plans = self._plans
        max_steps = self.max_steps
        manager = self.traces
        fstate = manager.state_for(function)
        headers = fstate.headers if fstate.live else None
        threshold = manager.threshold
        block = function.entry
        plan = plans.get(block.id)
        if plan is None:
            plan = self._plan(block)
        came_key: Optional[tuple[int, str]] = None
        came_block: Optional[Block] = None
        exception: Optional[ObjectRef] = None
        rec_path: Optional[list[Block]] = None
        rec_hs: Optional[_HeaderState] = None
        # positions of header visits inside rec_path: a recording
        # closes when the path *ends with a repeated cycle* -- the
        # blocks since some header visit exactly repeat the blocks
        # before it.  A plain loop closes after two identical
        # iterations; a dispatch loop keeps recording through header
        # visits until its whole opcode cycle repeats, then closes
        # with exactly one cycle.
        rec_visits: list[int] = []
        skip_once: Optional[_HeaderState] = None
        while True:
            if headers:
                if rec_path is not None:
                    bid = plan.block_id
                    if came_key is None or came_key[1] != "norm" \
                            or bid not in rec_hs.loop_blocks \
                            or plan.block.caught is not None \
                            or len(rec_path) >= MAX_TRACE_BLOCKS:
                        manager.abort_recording(fstate, rec_hs)
                        rec_path = rec_hs = None
                        if not fstate.live:
                            headers = None
                    else:
                        if bid == rec_hs.header_id:
                            position = len(rec_path)
                            cycle_at = -1
                            for visit in reversed(rec_visits):
                                cycle = position - visit
                                if visit - cycle < 0:
                                    break
                                if rec_path[visit - cycle:visit] == \
                                        rec_path[visit:position]:
                                    cycle_at = visit
                                    break
                            if cycle_at >= 0:
                                manager.finish_recording(
                                    fstate, rec_hs,
                                    rec_path[cycle_at:position])
                                rec_path = rec_hs = None
                            else:
                                rec_visits.append(position)
                                rec_path.append(plan.block)
                        else:
                            rec_path.append(plan.block)
                hs = plan.hs
                if hs is not None and came_key is not None and \
                        came_key[1] == "norm":
                    trace = hs.trace
                    if trace is not None:
                        if hs is skip_once:
                            skip_once = None
                        elif rec_path is None and \
                                came_key[0] == trace.entry_latch_id:
                            trips, site_index, err = trace.fn(self, frame)
                            site = trace.sites[site_index]
                            manager.entries += 1
                            manager.trips += trips
                            per = trace.per_trip_checks
                            prefix = site.checks_prefix
                            counts = self.check_counts
                            counts["nullcheck"] += \
                                trips * per[0] + prefix[0]
                            counts["idxcheck"] += \
                                trips * per[1] + prefix[1]
                            counts["upcast"] += trips * per[2] + prefix[2]
                            if not trace.has_calls:
                                self.steps += trips * trace.path_len \
                                    + site.steps_prefix
                            if trips == 0 and site.kind != "budget":
                                trace.aborts += 1
                                if trace.aborts >= BLACKLIST_AFTER_ABORTS:
                                    manager.blacklist(fstate, hs)
                                    if not fstate.live:
                                        headers = None
                            if site.kind == "guard":
                                came_key = (site.block_id, "norm")
                                came_block = site.block
                                target = site.resume
                                plan = plans.get(target.id) \
                                    or self._plan(target)
                                continue
                            if site.kind == "trap":
                                target = site.exc_target
                                if target is None:
                                    raise err
                                exception = err.value
                                came_key = (site.block_id, "exc")
                                came_block = site.block
                                plan = plans.get(target.id) \
                                    or self._plan(target)
                                continue
                            # budget: interpret the header once (the
                            # step limit is about to fire exactly)
                            skip_once = hs
                            continue
                    elif not hs.blacklisted and rec_path is None and \
                            came_key[0] in hs.loop_blocks:
                        hs.counter += 1
                        if hs.counter >= threshold:
                            manager.recordings += 1
                            rec_hs = hs
                            rec_path = [plan.block]
                            rec_visits = [0]
            # ---------- base interpreter loop (see Interpreter.call) ---
            self.steps += 1
            if self.steps > max_steps:
                raise StepLimitExceeded(
                    f"exceeded {max_steps} steps in {function.name}")
            moves = plan.moves
            if moves is not None:
                move = moves.get(came_key)
                if move is None:
                    raise self._phi_edge_error(plan.block, came_block)
                targets, sources = move
                values = [frame[source] for source in sources]
                for target, value in zip(targets, values):
                    frame[target] = value
            for handler, instr, store in plan.ops:
                if handler is None:  # CaughtExc
                    frame[store] = exception
                    continue
                try:
                    result = handler(instr, frame)
                except JavaError as error:
                    target = plan.exc_target
                    if target is None:
                        raise
                    exception = error.value
                    came_key = (plan.block_id, "exc")
                    came_block = plan.block
                    plan = plans.get(target.id) or self._plan(target)
                    break
                if store is not None:
                    frame[store] = result
            else:
                kind = plan.kind
                if kind == "branch":
                    norm = plan.norm
                    next_block = norm[0] if frame[plan.value_id] else norm[1]
                elif plan.succ is not None:  # fall / break / continue
                    next_block = plan.succ
                elif kind == "return":
                    if plan.value_id is not None:
                        return frame[plan.value_id]
                    return None
                elif kind == "throw":
                    target = plan.exc_target
                    if target is None:
                        raise JavaError(frame[plan.value_id])
                    exception = frame[plan.value_id]
                    came_key = (plan.block_id, "exc")
                    came_block = plan.block
                    plan = plans.get(target.id) or self._plan(target)
                    continue
                elif kind == "unreachable":
                    raise InterpreterError(
                        f"reached unreachable terminator in {function.name}")
                elif kind is None:
                    raise InterpreterError(
                        f"block B{plan.block_id} has no terminator")
                else:
                    raise InterpreterError(
                        f"B{plan.block_id} ({kind}) has {len(plan.norm)} "
                        "normal successors")
                came_key = (plan.block_id, "norm")
                came_block = plan.block
                plan = plans.get(next_block.id) or self._plan(next_block)
