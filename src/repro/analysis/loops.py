"""Natural-loop detection, loop nests, and preheader insertion.

A *natural loop* is discovered from a back edge ``u -> v`` where ``v``
dominates ``u`` (``v`` is the header, ``u`` a latch): the loop body is
the header plus every block that reaches a latch without passing through
the header.  Back edges with the same header are merged into one loop;
the loops of a function form a forest ordered by block containment.

SafeTSA functions are built from structured source, so every loop here
is reducible and corresponds to an ``RWhile``/``RDoWhile``/``RLoop``
region of the CST.  That correspondence is what makes *preheader
insertion* representable: the wire format transmits the CST, not the
edge set, so a preheader must be a CST mutation -- a fresh fall-through
``RBasic`` spliced immediately before the loop region.  The canonical
:func:`repro.ssa.cst.derive_cfg` walk then re-derives exactly the edges
this module wires by hand, which the verifier (and the decoder on the
consumer side) re-checks.

The module also recognises *basic induction variables*: header phis
whose every latch operand is the same ``add``/``sub`` of the phi and a
loop-invariant step.  LICM and the check-hoisting pass use them to
prove facts about the first trip through a loop.

Registered with the :class:`~repro.analysis.manager.AnalysisManager`
as ``"loops"``; any pass that reports a CFG-shape change invalidates it
(the manager drops non-preserved results after every changing pass).
"""

from __future__ import annotations

from typing import Optional

from repro.ssa import ir
from repro.ssa.cst import (
    RBasic,
    RDoWhile,
    RIf,
    RLabeled,
    RLoop,
    RSeq,
    RTry,
    RWhile,
    Region,
    _entry_block,
)
from repro.ssa.dominators import DominatorTree, compute_dominators
from repro.ssa.ir import Block, Function, Instr, Phi, Term


class Loop:
    """One natural loop: header, member blocks, latches, nesting info."""

    def __init__(self, header: Block):
        self.header = header
        #: ids of member blocks (header included; preheader excluded)
        self.blocks: set[int] = {header.id}
        #: blocks with a back edge to the header, in pred order
        self.latches: list[Block] = []
        self.parent: Optional["Loop"] = None
        self.children: list["Loop"] = []
        #: 1 for an outermost loop, +1 per level of nesting
        self.depth = 1
        #: preheader inserted by :func:`ensure_preheader` (or detected)
        self.preheader: Optional[Block] = None

    def contains(self, block: Block) -> bool:
        return block.id in self.blocks

    def is_invariant(self, value: Instr) -> bool:
        """Defined outside the loop, hence the same on every iteration."""
        return value.block is None or value.block.id not in self.blocks

    def entry_preds(self) -> list[tuple[Block, str]]:
        """Header predecessors from outside the loop, in pred order."""
        return [(pred, kind) for pred, kind in self.header.preds
                if pred.id not in self.blocks]

    def exit_edges(self) -> list[tuple[Block, Block]]:
        """``(src, dst)`` for every edge leaving the loop."""
        edges = []
        for block_id in self.blocks:
            block = self._member(block_id)
            if block is None:
                continue
            for succ, _kind in block.succs:
                if succ.id not in self.blocks:
                    edges.append((block, succ))
        return edges

    def _member(self, block_id: int) -> Optional[Block]:
        for latch in self.latches:
            if latch.id == block_id:
                return latch
        function = self.header.function
        if function is None:
            return None
        for block in function.blocks:
            if block.id == block_id:
                return block
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<loop header=B{self.header.id} "
                f"blocks={len(self.blocks)} depth={self.depth}>")


class InductionVariable:
    """A basic IV: header phi advanced by a loop-invariant step."""

    __slots__ = ("phi", "entry_values", "op", "step")

    def __init__(self, phi: Phi, entry_values: list[Instr], op: str,
                 step: Instr):
        self.phi = phi
        #: the phi operand(s) on the entry edges (the initial value(s))
        self.entry_values = entry_values
        #: 'add' or 'sub' -- the direction of the latch update
        self.op = op
        #: the loop-invariant step value
        self.step = step

    def __repr__(self) -> str:  # pragma: no cover
        return f"<iv v{self.phi.id} {self.op} v{self.step.id}>"


class LoopForest:
    """All natural loops of one function, nesting resolved."""

    def __init__(self, function: Function, domtree: DominatorTree,
                 loops: list[Loop]):
        self.function = function
        self.domtree = domtree
        #: all loops, outermost-first (stable: by header RPO position)
        self.loops = loops
        self.by_header: dict[int, Loop] = {
            loop.header.id: loop for loop in loops}
        self._loop_of: dict[int, Loop] = {}
        for loop in sorted(loops, key=lambda l: -len(l.blocks)):
            for block_id in loop.blocks:
                self._loop_of[block_id] = loop

    def loop_of(self, block: Block) -> Optional[Loop]:
        """The innermost loop containing ``block`` (None outside)."""
        return self._loop_of.get(block.id)

    def innermost_first(self) -> list[Loop]:
        return sorted(self.loops, key=lambda l: -l.depth)

    def note_preheader(self, loop: Loop, preheader: Block) -> None:
        """Record a freshly inserted preheader: it belongs to every
        *enclosing* loop (it sits on their paths), never to ``loop``."""
        loop.preheader = preheader
        ancestor = loop.parent
        while ancestor is not None:
            ancestor.blocks.add(preheader.id)
            ancestor = ancestor.parent

    def induction_variables(self, loop: Loop) -> list[InductionVariable]:
        """Basic IVs of ``loop``: int header phis whose latch operands
        are all the identical ``phi +/- invariant`` update."""
        from repro.typesys.types import INT
        ivs = []
        header = loop.header
        for phi in header.phis:
            if phi.plane.kind != "prim" or phi.plane.type is not INT:
                continue
            if len(phi.operands) != len(header.preds):
                continue
            entry_values, latch_values = [], []
            for operand, (pred, _kind) in zip(phi.operands, header.preds):
                if pred.id in loop.blocks:
                    latch_values.append(operand)
                else:
                    entry_values.append(operand)
            if not entry_values or not latch_values:
                continue
            update = latch_values[0]
            if any(value is not update for value in latch_values[1:]):
                continue
            if not isinstance(update, ir.Prim) \
                    or update.operation.name not in ("add", "sub") \
                    or update.block is None \
                    or update.block.id not in loop.blocks:
                continue
            left, right = update.operands
            if left is phi and loop.is_invariant(right):
                step = right
            elif update.operation.name == "add" and right is phi \
                    and loop.is_invariant(left):
                step = left  # addition commutes; subtraction does not
            else:
                continue
            ivs.append(InductionVariable(phi, entry_values,
                                         update.operation.name, step))
        return ivs


def find_loops(function: Function,
               domtree: Optional[DominatorTree] = None) -> LoopForest:
    """Detect the natural loops of ``function`` from its back edges."""
    if domtree is None:
        domtree = compute_dominators(function)
    reachable = [b for b in function.reachable_blocks()
                 if domtree.contains(b)]
    order = {block.id: i for i, block in enumerate(reachable)}
    by_header: dict[int, Loop] = {}
    for block in reachable:
        for succ, kind in block.succs:
            if kind != "norm" or not domtree.contains(succ):
                continue
            if not domtree.dominates(succ, block):
                continue  # not a back edge
            loop = by_header.get(succ.id)
            if loop is None:
                loop = by_header[succ.id] = Loop(succ)
            loop.latches.append(block)
            _collect_body(loop, block)
    loops = sorted(by_header.values(),
                   key=lambda l: order.get(l.header.id, 1 << 30))
    _resolve_nesting(loops)
    return LoopForest(function, domtree, loops)


def _collect_body(loop: Loop, latch: Block) -> None:
    """Add everything reaching ``latch`` without crossing the header."""
    stack = [latch]
    while stack:
        block = stack.pop()
        if block.id in loop.blocks:
            continue
        loop.blocks.add(block.id)
        for pred, _kind in block.preds:
            stack.append(pred)


def _resolve_nesting(loops: list[Loop]) -> None:
    for loop in loops:
        best: Optional[Loop] = None
        for candidate in loops:
            if candidate is loop:
                continue
            if loop.header.id not in candidate.blocks:
                continue
            if best is None or len(candidate.blocks) < len(best.blocks):
                best = candidate
        loop.parent = best
        if best is not None:
            best.children.append(loop)
    changed = True
    while changed:  # settle depths (parents may come later in the list)
        changed = False
        for loop in loops:
            depth = 1 if loop.parent is None else loop.parent.depth + 1
            if loop.depth != depth:
                loop.depth = depth
                changed = True


# =====================================================================
# preheader insertion (a CST transform)

def existing_preheader(loop: Loop) -> Optional[Block]:
    """A block that already behaves as ``loop``'s preheader: the single
    outside predecessor of the header, falling through with no other
    successors and no exception edge.  Appending code to it is exactly
    as sound as inserting a fresh preheader (it executes iff the loop
    is entered)."""
    entries = loop.entry_preds()
    if len(entries) != 1:
        return None
    pred, kind = entries[0]
    if kind != "norm":
        return None
    if pred.succs != [(loop.header, "norm")]:
        return None
    if pred.term is None or pred.term.kind != "fall":
        return None
    return pred


def ensure_preheader(function: Function, loop: Loop,
                     forest: Optional[LoopForest] = None) -> Optional[Block]:
    """Give ``loop`` a preheader, inserting one if necessary.

    Returns None when the loop's entry shape rules the transform out
    (exception predecessors, a dispatch-block header, or no matching
    CST loop region) -- callers must simply skip such loops.
    """
    if loop.preheader is not None:
        return loop.preheader
    found = existing_preheader(loop)
    if found is not None:
        loop.preheader = found
        return found
    return insert_preheader(function, loop, forest)


def insert_preheader(function: Function, loop: Loop,
                     forest: Optional[LoopForest] = None) -> Optional[Block]:
    """Splice a fresh fall-through block before ``loop``'s CST region.

    All entry edges are redirected to the new block; header phis keep
    one operand per latch plus a single entry operand (a new preheader
    phi merges multiple distinct entry values).  The rewired edges are
    exactly what :func:`derive_cfg` re-derives from the mutated CST, so
    the function stays canonically encodable.
    """
    header = loop.header
    if header is function.entry or header.caught is not None:
        return None
    if any(kind != "norm" for _pred, kind in header.preds):
        return None
    entry_count = sum(1 for pred, _kind in header.preds
                      if pred.id not in loop.blocks)
    if entry_count == 0:
        return None
    # the canonical walk connects entry edges before any latch, so the
    # entry predecessors must form a prefix of the pred list
    if any(header.preds[i][0].id in loop.blocks
           for i in range(entry_count)):
        return None
    region, parent = _find_loop_region(function.cst, header)
    if region is None:
        return None

    pre = function.new_block()
    entry_preds = header.preds[:entry_count]
    latch_preds = header.preds[entry_count:]

    # header phis: entry operands move to the preheader
    for phi in header.phis:
        if len(phi.operands) != len(header.preds):
            return None  # ill-formed; leave it to the verifier
    for phi in header.phis:
        entry_ops = phi.operands[:entry_count]
        latch_ops = phi.operands[entry_count:]
        if all(op is entry_ops[0] for op in entry_ops):
            entry_value: Instr = entry_ops[0]
        else:
            merge = Phi(phi.plane, var=phi.var)
            pre.append(merge)
            for op in entry_ops:
                merge.add_operand(op)
            entry_value = merge
        phi.drop_operands()
        phi.add_operand(entry_value)
        for op in latch_ops:
            phi.add_operand(op)

    # edges: entry preds now feed the preheader (in place, so branch
    # arm order is untouched), the preheader falls through to the header
    for pred, _kind in entry_preds:
        pred.succs = [(pre, "norm") if (succ is header and kind == "norm")
                      else (succ, kind) for succ, kind in pred.succs]
    pre.preds = list(entry_preds)
    pre.succs = [(header, "norm")]
    pre.term = Term("fall")
    header.preds = [(pre, "norm")] + latch_preds

    _splice_before(parent, region, RBasic(pre, exc=False), function)
    if forest is not None:
        forest.note_preheader(loop, pre)
    else:
        loop.preheader = pre
    return pre


def _find_loop_region(root: Region, header: Block) \
        -> tuple[Optional[Region], Optional[Region]]:
    """The outermost loop region headed by ``header`` and its parent.

    Pre-order search, so when nested regions share an entry block (e.g.
    ``RLoop`` directly inside ``RLoop``) the outermost wins -- its
    incoming edges are precisely the natural loop's entry edges.
    """
    stack: list[tuple[Region, Optional[Region]]] = [(root, None)]
    while stack:
        region, parent = stack.pop()
        if _is_loop_region_for(region, header):
            return region, parent
        if isinstance(region, RSeq):
            for child in reversed(region.regions):
                stack.append((child, region))
        elif isinstance(region, RIf):
            if region.else_region is not None:
                stack.append((region.else_region, region))
            stack.append((region.then_region, region))
        elif isinstance(region, (RWhile, RDoWhile, RLoop, RLabeled)):
            stack.append((region.body, region))
        elif isinstance(region, RTry):
            stack.append((region.handler, region))
            stack.append((region.body, region))
    return None, None


def _is_loop_region_for(region: Region, header: Block) -> bool:
    if isinstance(region, RWhile):
        return region.header is header
    if isinstance(region, (RDoWhile, RLoop)):
        return _entry_block(region.body) is header
    return False


def _splice_before(parent: Optional[Region], region: Region,
                   basic: RBasic, function: Function) -> None:
    """Insert ``basic`` immediately before ``region`` in the CST."""
    if isinstance(parent, RSeq):
        index = _index_of(parent.regions, region)
        parent.regions.insert(index, basic)
        return
    replacement = RSeq([basic, region])
    if parent is None:
        function.cst = replacement
    elif isinstance(parent, RIf):
        if parent.then_region is region:
            parent.then_region = replacement
        else:
            parent.else_region = replacement
    elif isinstance(parent, (RWhile, RDoWhile, RLoop, RLabeled)):
        parent.body = replacement
    elif isinstance(parent, RTry):
        if parent.body is region:
            parent.body = replacement
        else:
            parent.handler = replacement


def _index_of(regions: list[Region], target: Region) -> int:
    for index, region in enumerate(regions):
        if region is target:
            return index
    raise ValueError("region not found in its parent")  # pragma: no cover
