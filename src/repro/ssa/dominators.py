"""Dominator computation.

Two independent algorithms are provided and cross-checked in the test
suite: the Cooper-Harvey-Kennedy iterative algorithm (the default) and
Lengauer-Tarjan (cited by the paper [21]).  The dominator tree drives the
``(l, r)`` reference numbering: an instruction may only reference values
in blocks that dominate it, with ``l`` counting levels up the tree.
"""

from __future__ import annotations

from typing import Optional

from repro.ssa.ir import Block, Function


class DominatorTree:
    """Immutable dominator information for the reachable blocks."""

    def __init__(self, entry: Block, idom: dict[Block, Optional[Block]],
                 order_index: Optional[dict[Block, int]] = None):
        self.entry = entry
        self.idom = idom
        self.children: dict[Block, list[Block]] = {b: [] for b in idom}
        for block, parent in idom.items():
            if parent is not None:
                self.children[parent].append(block)
        self.depth: dict[Block, int] = {}
        self.preorder: list[Block] = []
        self._number: dict[Block, int] = {}
        # The pre-order must be identical on the producer and the consumer,
        # so children are ordered by a CFG-derived index (RPO), never by
        # block creation order.
        self._order_index = order_index or {}
        self._compute_order()

    def _compute_order(self) -> None:
        index = self._order_index
        stack = [(self.entry, 0)]
        while stack:
            block, depth = stack.pop()
            self.depth[block] = depth
            self._number[block] = len(self.preorder)
            self.preorder.append(block)
            for child in sorted(self.children[block],
                                key=lambda b: index.get(b, b.id),
                                reverse=True):
                stack.append((child, depth + 1))

    def contains(self, block: Block) -> bool:
        return block in self.idom

    def dominates(self, a: Block, b: Block) -> bool:
        """True when ``a`` dominates ``b`` (reflexively)."""
        while b is not None and self.depth.get(b, -1) >= self.depth.get(a, 0):
            if b is a:
                return True
            b = self.idom.get(b)
        return False

    def walk_up(self, block: Block, levels: int) -> Optional[Block]:
        """The ``levels``-th dominator above ``block`` (0 = itself)."""
        current: Optional[Block] = block
        for _ in range(levels):
            if current is None:
                return None
            current = self.idom.get(current)
        return current

    def level_of(self, use_block: Block, def_block: Block) -> int:
        """Dominator-tree distance from ``use_block`` up to ``def_block``.

        Raises ValueError when ``def_block`` does not dominate
        ``use_block`` -- exactly the condition SafeTSA makes
        unrepresentable.
        """
        level = 0
        current: Optional[Block] = use_block
        while current is not None:
            if current is def_block:
                return level
            current = self.idom.get(current)
            level += 1
        raise ValueError(
            f"B{def_block.id} does not dominate B{use_block.id}")

    def dom_chain(self, block: Block) -> list[Block]:
        """``[block, idom(block), ..., entry]``."""
        chain = []
        current: Optional[Block] = block
        while current is not None:
            chain.append(current)
            current = self.idom.get(current)
        return chain


def _reverse_postorder(entry: Block) -> list[Block]:
    order: list[Block] = []
    seen: set[int] = set()
    stack: list[tuple[Block, int]] = [(entry, 0)]
    while stack:
        block, index = stack.pop()
        if index == 0:
            if block.id in seen:
                continue
            seen.add(block.id)
        if index < len(block.succs):
            stack.append((block, index + 1))
            succ = block.succs[index][0]
            if succ.id not in seen:
                stack.append((succ, 0))
        else:
            order.append(block)
    order.reverse()
    return order


def compute_dominators(function: Function) -> DominatorTree:
    """Cooper-Harvey-Kennedy iterative dominators over reachable blocks."""
    entry = function.entry
    rpo = _reverse_postorder(entry)
    index = {block: i for i, block in enumerate(rpo)}
    idom: dict[Block, Optional[Block]] = {entry: None}

    def intersect(a: Block, b: Block) -> Block:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block is entry:
                continue
            new_idom: Optional[Block] = None
            for pred, _kind in block.preds:
                if pred not in index:
                    continue  # unreachable predecessor
                if pred is not entry and pred not in idom:
                    continue
                new_idom = pred if new_idom is None \
                    else intersect(pred, new_idom)
            if new_idom is None:
                continue
            if idom.get(block) is not new_idom:
                idom[block] = new_idom
                changed = True
    return DominatorTree(entry, idom, index)


def compute_dominators_lt(function: Function) -> DominatorTree:
    """Lengauer-Tarjan (simple path-compression variant)."""
    entry = function.entry
    # step 1: DFS numbering
    parent: dict[Block, Block] = {}
    vertex: list[Block] = []
    semi: dict[Block, int] = {}
    stack = [(entry, None)]
    while stack:
        block, par = stack.pop()
        if block in semi:
            continue
        semi[block] = len(vertex)
        vertex.append(block)
        if par is not None:
            parent[block] = par
        for succ, _kind in reversed(block.succs):
            if succ not in semi:
                stack.append((succ, block))

    bucket: dict[Block, list[Block]] = {b: [] for b in vertex}
    dom: dict[Block, Block] = {}
    ancestor: dict[Block, Block] = {}
    label: dict[Block, Block] = {b: b for b in vertex}

    def compress(v: Block) -> None:
        path = []
        while ancestor.get(v) is not None and ancestor.get(ancestor[v]) is not None:
            path.append(v)
            v = ancestor[v]
        for node in reversed(path):
            anc = ancestor[node]
            if semi[label[anc]] < semi[label[node]]:
                label[node] = label[anc]
            ancestor[node] = ancestor[anc]

    def evaluate(v: Block) -> Block:
        if ancestor.get(v) is None:
            return label[v]
        compress(v)
        return label[v]

    for w in reversed(vertex[1:]):
        for pred, _kind in w.preds:
            if pred not in semi:
                continue
            u = evaluate(pred)
            if semi[u] < semi[w]:
                semi[w] = semi[u]
        bucket[vertex[semi[w]]].append(w)
        ancestor[w] = parent[w]
        for v in bucket[parent[w]]:
            u = evaluate(v)
            dom[v] = u if semi[u] < semi[v] else parent[w]
        bucket[parent[w]] = []

    idom: dict[Block, Optional[Block]] = {entry: None}
    for w in vertex[1:]:
        if dom[w] is not vertex[semi[w]]:
            dom[w] = dom[dom[w]]
        idom[w] = dom[w]
    order_index = {block: i for i, block in enumerate(vertex)}
    return DominatorTree(entry, idom, order_index)
