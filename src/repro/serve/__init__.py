"""The mobile-code distribution service: the missing half of "mobile".

The paper's producer/consumer split assumes a *network* between the two
halves; this package is that network's server side.  A
:class:`ServeService` exposes the existing toolchain over HTTP/JSON --
``compile`` / ``publish`` / ``fetch`` / ``verify`` / ``run`` -- on top
of four serving-specific pieces:

* a **sharded content-addressed module store**
  (:class:`~repro.serve.store.ModuleStore`): wire bytes keyed by their
  SHA-256, v1 streams and STSA2 envelopes both servable, dictionary
  blobs resolvable through the process
  :class:`~repro.cache.DictionaryStore`;
* **coalescing of identical in-flight compiles**
  (:class:`ServeService`): concurrent requests for the same
  (source, flags) share one underlying compile and receive
  bit-identical wire bytes, and a warm
  :class:`~repro.cache.VerifiedModuleCache` is reused across
  verify/run requests;
* **per-tenant quotas** (:class:`~repro.serve.quota.QuotaManager`):
  request rate, stored bytes, and compile seconds, rejecting with
  stable ``SERVE-*`` codes registered in
  :data:`repro.analysis.diagnostics.STABLE_CODES`;
* **signed manifests on a hash-chained publish log**
  (:mod:`repro.serve.log`): every publish appends a canonical-JSON
  entry whose hash covers the previous entry's hash, so an auditing
  client (:meth:`~repro.serve.client.ServeClient.audit`) detects any
  retroactive edit or splice of the timeline -- provenance layered on
  top of SafeTSA's intrinsic safety.

The HTTP layer is a small asyncio HTTP/1.1 server
(:class:`~repro.serve.service.ServeServer`, stdlib only); CPU-bound
work (compile, load, run) runs in a thread pool so the accept loop
stays responsive.  ``repro-cc serve`` / ``publish`` / ``fetch`` are the
CLI surface; ``python -m repro.serve.smoke`` is the self-check CI runs.
"""

from repro.serve.client import ServeClient
from repro.serve.errors import ServeError
from repro.serve.log import PublishLog, audit_chain, canonical_json
from repro.serve.quota import ManualClock, QuotaManager, TenantLimits
from repro.serve.service import ServeServer, ServeService
from repro.serve.store import ModuleStore

__all__ = [
    "ManualClock",
    "ModuleStore",
    "PublishLog",
    "QuotaManager",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "ServeService",
    "TenantLimits",
    "audit_chain",
    "canonical_json",
]
