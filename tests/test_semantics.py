"""Unit tests for semantic analysis: typing, resolution, flow checks."""

import pytest

from repro.frontend.errors import CompileError
from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze


def check(source: str):
    return analyze(parse_compilation_unit(source))


def check_body(body: str, extra: str = ""):
    return check(f"class T {{ {extra}\n static void f() {{ {body} }} }}")


def rejects(body: str, fragment: str = "", extra: str = ""):
    with pytest.raises(CompileError) as excinfo:
        check_body(body, extra)
    if fragment:
        assert fragment in str(excinfo.value), str(excinfo.value)


class TestTyping:
    def test_assign_incompatible_rejected(self):
        rejects("int x = true;", "convert")

    def test_narrowing_requires_cast(self):
        rejects("long l = 1; int x = l;")
        check_body("long l = 1; int x = (int) l;")

    def test_boolean_cast_rejected(self):
        rejects("boolean b = true; int x = (int) b;", "cannot cast")

    def test_condition_must_be_boolean(self):
        rejects("if (1) { }", "boolean")
        rejects("while (2) { }", "boolean")

    def test_arithmetic_on_boolean_rejected(self):
        rejects("boolean b = true; int x = b + 1;")

    def test_string_concat_with_anything(self):
        check_body('String s = "a" + 1 + 2.0 + true + \'c\' + null;')

    def test_modulo_on_double_allowed(self):
        check_body("double d = 5.5 % 2.0;")

    def test_shift_on_double_rejected(self):
        rejects("double d = 1.0 << 2;", "integral")

    def test_bitwise_on_booleans_allowed(self):
        check_body("boolean b = true & false | true ^ false;")

    def test_array_index_must_be_int(self):
        rejects("int[] a = new int[3]; long l = 0; int x = a[l];")

    def test_array_length_readable(self):
        check_body("int[] a = new int[3]; int n = a.length;")

    def test_arrays_have_no_other_members(self):
        rejects("int[] a = new int[3]; int n = a.size;", "length")

    def test_void_method_result_unusable(self):
        rejects("int x = g();", extra="static void g() { }")

    def test_impossible_reference_cast_rejected(self):
        rejects("String s = \"x\"; Integer i = (Integer) s;",
                "impossible")

    def test_incomparable_references_rejected(self):
        rejects('boolean b = "x" == new int[1];')

    def test_ref_equality_with_null_ok(self):
        check_body('String s = "x"; boolean b = s == null;')

    def test_ternary_merges_numeric_types(self):
        check_body("double d = true ? 1 : 2.0;")

    def test_ternary_merges_reference_types(self):
        check(
            "class A { } class B extends A { } class C extends A { }"
            "class T { static void f(boolean c) {"
            "  A a = c ? new B() : new C(); } }")


class TestResolution:
    def test_undefined_name(self):
        rejects("int x = nope;", "undefined name")

    def test_undefined_method(self):
        rejects("nothing();", "no method")

    def test_duplicate_local_rejected(self):
        rejects("int x = 1; int x = 2;", "already defined")

    def test_nested_shadowing_rejected(self):
        rejects("int x = 1; { int x = 2; }", "already defined")

    def test_scopes_end_at_block(self):
        check_body("{ int x = 1; } { int x = 2; }")

    def test_this_in_static_rejected(self):
        rejects("Object o = this;", "static")

    def test_instance_field_in_static_rejected(self):
        rejects("int y = v;", "static", extra="int v;")

    def test_static_field_via_class_name(self):
        check_body("int x = Integer.MAX_VALUE;")

    def test_instance_method_through_object(self):
        check_body('String s = "abc".substring(1);')

    def test_unknown_class_rejected(self):
        rejects("Frob f = null;", "unknown type")

    def test_field_on_primitive_rejected(self):
        rejects("int x = 4; int y = x.value;")


class TestOverloads:
    EXTRA = ("static String g(Object o) { return \"obj\"; }"
             "static String g(String s) { return \"str\"; }"
             "static String h(int a, long b) { return \"il\"; }"
             "static String h(long a, int b) { return \"li\"; }")

    def test_most_specific_chosen(self):
        check_body('String r = g("x");', extra=self.EXTRA)

    def test_ambiguous_rejected(self):
        rejects("String r = h(1, 2);", "ambiguous", extra=self.EXTRA)

    def test_resolvable_with_exact_types(self):
        check_body("String r = h(1, 2L);", extra=self.EXTRA)

    def test_no_applicable_overload(self):
        rejects("String r = g(1.5);", "no applicable", extra=self.EXTRA)

    def test_duplicate_signature_rejected(self):
        with pytest.raises(CompileError):
            check("class T { void f(int x) { } void f(int y) { } }")

    def test_overload_differs_by_arity(self):
        check("class T { static int f() { return 0; }"
              "static int f(int x) { return x; }"
              "static void g() { int a = f() + f(3); } }")


class TestFlowAnalysis:
    def test_read_before_assignment_rejected(self):
        rejects("int x; int y = x;", "initialized")

    def test_assignment_in_one_branch_insufficient(self):
        rejects("int x; if (1 < 2) x = 1; int y = x;", "initialized")

    def test_assignment_in_both_branches_ok(self):
        check_body("int x; if (1 < 2) x = 1; else x = 2; int y = x;")

    def test_while_body_does_not_count(self):
        rejects("int x; boolean c = 1 < 2; while (c) x = 1; int y = x;",
                "initialized")

    def test_constant_true_loop_makes_tail_unreachable(self):
        # javac agrees: 1 < 2 is a constant expression
        rejects("int x; while (1 < 2) x = 1; int y = x;", "unreachable")

    def test_do_while_body_counts(self):
        check_body("int x; do { x = 1; } while (false); int y = x;")

    def test_missing_return_rejected(self):
        with pytest.raises(CompileError):
            check("class T { static int f(boolean b) { if (b) return 1; } }")

    def test_return_in_both_branches_ok(self):
        check("class T { static int f(boolean b) "
              "{ if (b) return 1; else return 2; } }")

    def test_infinite_loop_counts_as_return(self):
        check("class T { static int f() { while (true) { } } }")

    def test_infinite_loop_with_break_rejected(self):
        with pytest.raises(CompileError):
            check("class T { static int f(boolean b) "
                  "{ while (true) { if (b) break; } } }")

    def test_unreachable_statement_rejected(self):
        rejects("return; int x = 1;", "unreachable")

    def test_throw_terminates_flow(self):
        check("class T { static int f() "
              "{ throw new RuntimeException(\"x\"); } }")

    def test_switch_with_all_paths_returning(self):
        check("class T { static int f(int x) { switch (x) {"
              "case 1: return 1; default: return 0; } } }")

    def test_break_outside_loop_rejected(self):
        rejects("break;", "outside")

    def test_continue_in_switch_rejected(self):
        rejects("switch (1) { default: continue; }", "outside")

    def test_undefined_label_rejected(self):
        rejects("while (true) break nope;", "undefined label")

    def test_continue_to_non_loop_label_rejected(self):
        rejects("lab: { continue lab; }", "not a loop")


class TestClassChecks:
    def test_case_labels_must_be_constant(self):
        rejects("int v = 1; switch (v) { case v: break; }", "constant")

    def test_duplicate_case_labels_rejected(self):
        rejects("switch (1) { case 2: break; case 2: break; }",
                "duplicate")

    def test_case_label_constant_folding(self):
        check_body("switch (1) { case 1 + 2: break; case 'a': break; }")

    def test_throw_non_throwable_rejected(self):
        rejects('throw new Object();', "Throwable")
        # strings are not throwable either
        rejects('String s = "x"; throw s;', "Throwable")

    def test_catch_non_throwable_rejected(self):
        rejects("try { f(); } catch (String s) { }", "Throwable")

    def test_instantiate_abstract_rejected(self):
        with pytest.raises(CompileError):
            check("abstract class A { } "
                  "class T { static void f() { A a = new A(); } }")

    def test_switch_selector_type(self):
        rejects("switch (1.5) { default: break; }", "selector")
        check_body("switch ('x') { default: break; }")

    def test_user_exception_hierarchy(self):
        check("class MyError extends RuntimeException { }"
              "class T { static void f() {"
              "  try { throw new MyError(); }"
              "  catch (MyError e) { } } }")

    def test_compound_assign_to_string_field_concat(self):
        check("class T { String s = \"\"; void f() { s += 1; } }")

    def test_assign_to_final_library_field_rejected(self):
        rejects("System.out = null;", "final")
