// Stand-in for sun.tools.javac.BatchEnvironment: a compilation
// environment with an open-addressing symbol table, error reporting and
// flag handling -- string/virtual-call/field heavy code.
class Symbol {
    String name;
    int kind;        // 0 class, 1 method, 2 field, 3 local
    int uses;
    Symbol next;

    Symbol(String name, int kind) {
        this.name = name;
        this.kind = kind;
    }

    String describe() {
        String kindName;
        switch (kind) {
            case 0: kindName = "class"; break;
            case 1: kindName = "method"; break;
            case 2: kindName = "field"; break;
            default: kindName = "local"; break;
        }
        return kindName + " " + name + " (" + uses + " uses)";
    }
}

class SymbolTable {
    Symbol[] buckets;
    int count;

    SymbolTable(int capacity) {
        buckets = new Symbol[capacity];
    }

    int hash(String name) {
        int h = 0;
        for (int i = 0; i < name.length(); i++) {
            h = h * 31 + name.charAt(i);
        }
        if (h < 0) h = -h;
        return h % buckets.length;
    }

    Symbol lookup(String name) {
        Symbol entry = buckets[hash(name)];
        while (entry != null) {
            if (entry.name.equals(name)) return entry;
            entry = entry.next;
        }
        return null;
    }

    Symbol define(String name, int kind) {
        Symbol existing = lookup(name);
        if (existing != null) return existing;
        Symbol symbol = new Symbol(name, kind);
        int index = hash(name);
        symbol.next = buckets[index];
        buckets[index] = symbol;
        count = count + 1;
        return symbol;
    }

    int maxChain() {
        int longest = 0;
        for (int i = 0; i < buckets.length; i++) {
            int length = 0;
            Symbol entry = buckets[i];
            while (entry != null) {
                length = length + 1;
                entry = entry.next;
            }
            if (length > longest) longest = length;
        }
        return longest;
    }
}

class Environment {
    SymbolTable table;
    String[] errors;
    int errorCount;
    int warningCount;
    boolean verbose;

    Environment() {
        table = new SymbolTable(17);
        errors = new String[16];
    }

    void error(String where, String message) {
        if (errorCount < errors.length) {
            errors[errorCount] = where + ": " + message;
        }
        errorCount = errorCount + 1;
    }

    void warn(String message) {
        warningCount = warningCount + 1;
        if (verbose) {
            error("warning", message);
        }
    }

    Symbol resolve(String name) {
        Symbol symbol = table.lookup(name);
        if (symbol == null) {
            error(name, "cannot resolve symbol");
            return table.define(name, 3);
        }
        symbol.uses = symbol.uses + 1;
        return symbol;
    }

    static void main() {
        Environment env = new Environment();
        String[] names = new String[12];
        names[0] = "Object";
        names[1] = "String";
        names[2] = "main";
        names[3] = "toString";
        names[4] = "value";
        names[5] = "length";
        names[6] = "index";
        names[7] = "buffer";
        names[8] = "Parser";
        names[9] = "Scanner";
        names[10] = "x";
        names[11] = "y";
        for (int i = 0; i < names.length; i++) {
            env.table.define(names[i], i % 4);
        }
        // resolve a workload with some misses
        for (int round = 0; round < 3; round++) {
            for (int i = 0; i < names.length; i += 2) {
                env.resolve(names[i]);
            }
            env.resolve("missing" + round);
            env.warn("round " + round);
        }
        env.verbose = true;
        env.warn("last");
        System.out.println("symbols=" + env.table.count);
        System.out.println("errors=" + env.errorCount
                           + " warnings=" + env.warningCount);
        System.out.println("chain=" + env.table.maxChain());
        Symbol object = env.table.lookup("Object");
        System.out.println(object.describe());
        Symbol missing = env.table.lookup("missing1");
        System.out.println(missing.describe());
        for (int i = 0; i < env.errorCount && i < env.errors.length; i++) {
            System.out.println("E: " + env.errors[i]);
        }
    }
}
