"""Every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print something"
    assert "!!" not in result.stdout  # safety_demo's failure marker


def test_example_inventory():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3, "the paper reproduction ships >= 3 examples"
