"""Generic worklist dataflow solver over the SafeTSA CFG.

The solver is direction-agnostic (forward or backward), iterates to a
fixpoint over the *reachable* blocks in (reverse) postorder, merges at
joins -- exception edges included -- and supports per-edge fact
refinement (the hook branch- and trap-sensitive analyses use) plus
widening at loop heads so infinite-height lattices (intervals) still
terminate.

Lattice protocol
----------------

An analysis supplies its lattice operations directly (facts are opaque
to the solver):

``boundary(function)``
    the fact at the function entry (forward) / at every exit (backward);
``join(a, b)``
    least upper bound of two facts -- set union for may-analyses,
    intersection for must-analyses, interval hull for ranges;
``transfer(block, fact)``
    flow one whole block, returning the fact at the other end;
``edge(src, index, dst, kind, fact)`` (optional)
    refine ``src``'s out-fact for the specific out-edge at position
    ``index`` of ``src.succs`` (``kind`` is ``'norm'`` or ``'exc'``) --
    this is where branch conditions and trapping tails specialise facts;
``widen(old, new)`` (optional)
    called instead of ``join`` at loop heads once a block has been
    revisited :data:`WIDEN_AFTER` times;
``eq(a, b)`` (optional)
    convergence test, defaults to ``==``.

Facts must be treated as immutable values: ``transfer`` returns a new
fact and never mutates its argument.

Two small reusable lattices (:class:`SetLattice`,
:class:`IntervalLattice`-style helpers live with the range analysis)
cover the common cases.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.ssa.ir import Block, Function

#: after this many visits of the same block the solver widens instead of
#: joining (only when the analysis defines ``widen``)
WIDEN_AFTER = 3

FORWARD = "forward"
BACKWARD = "backward"


class SetLattice:
    """Finite powerset lattice; ``union`` (may) or ``intersect`` (must)."""

    def __init__(self, mode: str = "union"):
        assert mode in ("union", "intersect")
        self.mode = mode

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b if self.mode == "union" else a & b

    @staticmethod
    def bottom() -> frozenset:
        return frozenset()


class DataflowResult:
    """Fixpoint facts per block id.

    ``entry[b]``/``exit[b]`` are relative to the *flow* direction: for a
    backward analysis ``entry`` is the fact at the block's end (where
    flow enters) and ``exit`` the fact at its start.
    """

    def __init__(self, direction: str):
        self.direction = direction
        self.entry: dict[int, object] = {}
        self.exit: dict[int, object] = {}
        self.iterations = 0

    def in_fact(self, block: Block):
        """Fact at the block's *start* regardless of direction."""
        key = block.id
        return self.entry.get(key) if self.direction == FORWARD \
            else self.exit.get(key)

    def out_fact(self, block: Block):
        """Fact at the block's *end* regardless of direction."""
        key = block.id
        return self.exit.get(key) if self.direction == FORWARD \
            else self.entry.get(key)


def _forward_edges_into(block: Block):
    """(pred, edge-kind, succ-index-in-pred) triples feeding ``block``.

    A degenerate branch can route both arms to the same block; every
    matching out-edge of the predecessor is reported so the caller can
    join their (differently refined) facts.
    """
    for pred, kind in block.preds:
        for index, (succ, succ_kind) in enumerate(pred.succs):
            if succ is block and succ_kind == kind:
                yield pred, kind, index


def solve(function: Function, analysis) -> DataflowResult:
    """Run ``analysis`` to a fixpoint over ``function``'s reachable CFG."""
    direction = getattr(analysis, "direction", FORWARD)
    result = DataflowResult(direction)
    blocks = function.reachable_blocks()
    if not blocks:
        return result
    edge_fn: Optional[Callable] = getattr(analysis, "edge", None)
    widen_fn: Optional[Callable] = getattr(analysis, "widen", None)
    eq_fn: Callable = getattr(analysis, "eq", lambda a, b: a == b)

    order = _iteration_order(blocks, direction)
    position = {block.id: i for i, block in enumerate(order)}
    boundary = analysis.boundary(function)
    visits: dict[int, int] = {}

    worklist: deque[Block] = deque(order)
    queued = {block.id for block in order}
    while worklist:
        block = worklist.popleft()
        queued.discard(block.id)
        result.iterations += 1
        visits[block.id] = visits.get(block.id, 0) + 1

        incoming = _merge_incoming(block, direction, analysis, result,
                                   edge_fn, boundary, position)
        if incoming is None:
            continue  # no flowed-in fact yet (e.g. loop not entered)
        old_in = result.entry.get(block.id)
        if old_in is not None:
            if widen_fn is not None \
                    and visits[block.id] > WIDEN_AFTER:
                incoming = widen_fn(old_in, incoming)
            else:
                incoming = analysis.join(old_in, incoming)
            if eq_fn(old_in, incoming):
                # entry unchanged -> exit unchanged, nothing to propagate
                continue
        result.entry[block.id] = incoming
        outgoing = analysis.transfer(block, incoming)
        old_out = result.exit.get(block.id)
        result.exit[block.id] = outgoing
        if old_out is not None and eq_fn(old_out, outgoing):
            continue
        for succ in _flow_successors(block, direction):
            if succ.id in position and succ.id not in queued:
                worklist.append(succ)
                queued.add(succ.id)
    return result


def _iteration_order(blocks: list[Block], direction: str) -> list[Block]:
    # reachable_blocks() is a DFS preorder from the entry; a stable
    # approximation of RPO that keeps the worklist passes low.  The
    # fixpoint is order-independent, order only affects speed.
    return blocks if direction == FORWARD else list(reversed(blocks))


def _flow_successors(block: Block, direction: str) -> list[Block]:
    if direction == FORWARD:
        return [succ for succ, _kind in block.succs]
    return [pred for pred, _kind in block.preds]


def _merge_incoming(block: Block, direction: str, analysis, result,
                    edge_fn, boundary, position):
    """Join the facts flowing into ``block`` from all its flow-preds."""
    facts = []
    if direction == FORWARD:
        if not block.preds:
            return boundary
        for pred, kind, index in _forward_edges_into(block):
            if pred.id not in position:
                continue  # unreachable predecessor contributes nothing
            fact = result.exit.get(pred.id)
            if fact is None:
                continue
            if edge_fn is not None:
                fact = edge_fn(pred, index, block, kind, fact)
            facts.append(fact)
    else:
        flow_preds = block.succs  # backward: facts flow from successors
        if not flow_preds:
            return boundary
        for index, (succ, kind) in enumerate(flow_preds):
            if succ.id not in position:
                continue
            fact = result.exit.get(succ.id)
            if fact is None:
                continue
            if edge_fn is not None:
                fact = edge_fn(block, index, succ, kind, fact)
            facts.append(fact)
    if not facts:
        return None
    merged = facts[0]
    for fact in facts[1:]:
        merged = analysis.join(merged, fact)
    return merged
