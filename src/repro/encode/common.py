"""Shared wire-format vocabulary (alphabets and tags)."""

from __future__ import annotations

MAGIC = b"STSA1"

#: wire-format v2 distribution envelope (shared dictionaries / deltas);
#: the *payload* inside an envelope is always a v1 stream, so the
#: verifying decoder proper never changes per version.
MAGIC_V2 = b"STSA2"

#: wire magic -> canonical format-version string (cache-key component)
WIRE_VERSIONS = {MAGIC: "stsa1", MAGIC_V2: "stsa2"}


def wire_format_version(data: bytes) -> str:
    """Canonical version string for a wire blob (``"stsa1"``,
    ``"stsa2"``, or ``"unknown"``).  Pure prefix sniff -- never raises,
    usable on truncated or hostile input."""
    for magic, version in WIRE_VERSIONS.items():
        if data[:len(magic)] == magic:
            return version
    return "unknown"

#: instruction opcode alphabet, in wire order
OPCODES = (
    "const", "param", "primitive", "xprimitive", "refcmp",
    "nullcheck", "idxcheck", "upcast", "downcast",
    "getfield", "setfield", "getstatic", "setstatic",
    "getelt", "setelt", "arraylen",
    "new", "newarray", "instanceof",
    "xcall", "xdispatch", "caughtexc",
)
OPCODE_INDEX = {name: i for i, name in enumerate(OPCODES)}

#: CST region symbols (phase 1)
REGIONS = ("basic", "seq", "if", "ifelse", "while", "dowhile", "loop",
           "labeled", "try")
REGION_INDEX = {name: i for i, name in enumerate(REGIONS)}

#: leaf terminator kinds (structural, phase 1)
TERM_KINDS = ("fall", "return", "throw", "break", "continue", "unreachable")
TERM_INDEX = {name: i for i, name in enumerate(TERM_KINDS)}

#: the six primitive base types eligible for primitive/xprimitive
#: (indices into TypeTable PRIMITIVE_ORDER, excluding void)
PRIMITIVE_BASES = 6
