"""Lazy per-function body decoding.

A lazy load decodes the module header eagerly -- magic, type table,
class hierarchy, member tables -- so the world and every signature are
fully linked and trustworthy before any body is touched.  The
``module.functions`` mapping is then a :class:`LazyFunctions` view:
iteration, length, and membership work off the member tables alone,
while fetching a value decodes (and verifies) that function's body on
demand.

What is guaranteed before first touch: the header passed every decode
check, so types, the hierarchy, and method signatures are sound; the
set of methods-with-bodies is exact.  What is *not* yet checked: the
body bits themselves -- a first touch can therefore raise
``DecodeError``/``VerifyError`` (with full location context), and on a
cold load the stream's trailing-padding rule (``DEC-TRAILING``) is only
enforced once the last body has been materialized.

The wire format has no length prefixes, so a *cold* lazy load is
prefix-lazy: touching function *k* materializes bodies ``0..k`` (each
residual-checked as it lands).  Once all bodies have decoded, the
observed boundary index is published to the verified-module cache; a
*warm* lazy load reuses that index for true random access -- touch one
function, decode one body -- and skips the residual sweeps, with the
trailing check hoisted to load time (the index pins the stream end).
"""

from __future__ import annotations

import threading
from collections.abc import MutableMapping
from typing import Optional

from repro.encode.bitio import BitReader
from repro.encode.deserializer import DecodeError
from repro.loader.fused import (
    Boundaries,
    FusedDecoder,
    _decode_errors,
    _plausible,
    _ResidualChecker,
)
from repro.ssa.ir import Function, Module


class _LazyState:
    """Shared decode state behind one :class:`LazyFunctions` view."""

    def __init__(self, loader, decoder: FusedDecoder, bodies,
                 boundaries: Optional[Boundaries], key: Optional[str]):
        self.loader = loader
        self.decoder = decoder
        self.bodies = bodies                  # MethodInfo, stream order
        self.position = {m: i for i, m in enumerate(bodies)}
        self.boundaries = boundaries          # trusted index, or None
        self.key = key
        self.lock = threading.RLock()
        self.decoded: list[Optional[Function]] = [None] * len(bodies)
        self.prefix = 0                       # cold: bodies decoded so far
        self.error: Optional[BaseException] = None

    def materialize(self, method) -> Function:
        with self.lock:
            if self.error is not None:
                # the stream is mid-body garbage after a failure; every
                # later touch reports the same rejection
                raise self.error
            index = self.position[method]
            if self.decoded[index] is None:
                try:
                    if self.boundaries is not None:
                        self._decode_at(index)
                    else:
                        self._decode_prefix(index)
                except Exception as error:
                    self.error = error
                    raise
            return self.decoded[index]

    # -- warm: random access off the trusted boundary index ------------

    def _decode_at(self, index: int) -> None:
        decoder = self.decoder
        start, end = self.boundaries[index]
        with _decode_errors():
            reader = BitReader(decoder.data, start_bit=start)
            function = decoder._function_decoder(
                self.bodies[index], reader).decode()
            if reader.bit_position() != end:
                raise DecodeError("cached body boundary mismatch",
                                  "DEC-MALFORMED")
        self.decoded[index] = function

    # -- cold: sequential prefix decode, residual-checked per body -----

    def _decode_prefix(self, index: int) -> None:
        decoder = self.decoder
        while self.prefix <= index:
            method = self.bodies[self.prefix]
            with _decode_errors():
                function = decoder._decode_body(method)
            fn, domtree, dispatch_of = decoder.contexts[-1]
            _ResidualChecker(decoder.module, fn, domtree,
                             dispatch_of).verify()
            self.decoded[self.prefix] = function
            self.prefix += 1
        if self.prefix == len(self.bodies):
            with _decode_errors():
                decoder._require_end()
            cache, key = self.loader.cache, self.key
            if cache is not None and key is not None:
                cache.put(key, decoder.boundaries)
            self.loader.boundaries = decoder.boundaries
            self.loader.verified = True


class LazyFunctions(MutableMapping):
    """``module.functions`` for a lazily loaded module.

    Keys (the :class:`MethodInfo` of every method with a body, in
    stream order), length, and membership are available without any
    body decoding; ``[]``/``get``/``values()``/``items()`` materialize
    bodies on demand.
    """

    def __init__(self, state: _LazyState):
        self._state = state
        self._order = list(state.bodies)
        self._functions: dict = {}

    def __getitem__(self, method) -> Function:
        function = self._functions.get(method)
        if function is not None:
            return function
        if method not in self._state.position:
            raise KeyError(method)
        return self._state.materialize(method)

    def __setitem__(self, method, function) -> None:
        if method not in self._functions \
                and method not in self._state.position:
            self._order.append(method)
        self._functions[method] = function

    def __delitem__(self, method) -> None:
        self._order.remove(method)  # raises ValueError if absent
        self._functions.pop(method, None)
        self._state.position.pop(method, None)

    def __iter__(self):
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, method) -> bool:
        return method in self._functions or method in self._state.position

    def materialize_all(self) -> None:
        """Force every pending body (cold: also runs the trailing
        check and publishes the boundary index)."""
        for method in self._order:
            self[method]


def lazy_load(loader, key: Optional[str],
              boundaries: Optional[Boundaries]) -> Module:
    """Decode the header now, leave the bodies to first touch."""
    decoder = FusedDecoder(loader.data)
    with _decode_errors():
        bodies = decoder.decode_header()
        header_end = decoder.reader.bit_position()
        if boundaries is not None and _plausible(
                boundaries, bodies, header_end, len(loader.data) * 8):
            # trusted index: pin the stream end now so even a partial
            # consumer sees DEC-TRAILING violations at load time
            loader.cache_hit = True
            loader.boundaries = boundaries
            end = boundaries[-1][1] if boundaries else header_end
            tail_reader = BitReader(loader.data, start_bit=end)
            saved, decoder.reader = decoder.reader, tail_reader
            decoder._require_end()
            decoder.reader = saved
        else:
            boundaries = None
            if not bodies:  # nothing to defer behind
                decoder._require_end()
    state = _LazyState(loader, decoder, bodies, boundaries, key)
    decoder.module.functions = LazyFunctions(state)
    return decoder.module
