"""Unified Abstract Syntax Tree (UAST).

The UAST is the structured intermediate form the SSA generator consumes
(paper Section 7).  The builder normalises the typed front-end AST:

* short-circuit ``&&``/``||`` and ``?:`` become if-else statements writing
  synthetic temporaries (the paper's own treatment, Section 7 footnote 3);
* compound assignment, ``++``/``--`` and string concatenation are expanded;
* ``for`` loops become ``while`` loops with an inner labeled region so that
  ``continue`` reaches the update code;
* ``switch`` becomes nested labeled blocks (preserving fallthrough);
* ``try``/``finally`` is lowered with a mode variable so that the finally
  region is a join of normal completion, exceptional completion, and every
  ``break``/``continue``/``return`` leaving the try -- exactly the
  control-flow shape described in the paper;
* field initializers are folded into constructors, static initializers
  into a synthesized ``<clinit>``.
"""

from repro.uast import nodes
from repro.uast.builder import UastBuilder, build_uast
from repro.uast.printer import format_method

__all__ = ["nodes", "UastBuilder", "build_uast", "format_method"]
