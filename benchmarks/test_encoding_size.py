"""E7 in depth: where the bits go, and headroom under compression.

The paper (Section 8) attributes SafeTSA's file sizes partly to
"symbolic linking information and constants" and notes that "any
dictionary encoding scheme can be used to convert the symbol sequence
into a binary stream" -- i.e. the equal-probability prefix coder is the
floor, not the ceiling.  This bench decomposes the wire format and
compares both formats under a dictionary coder (zlib).
"""

from __future__ import annotations

import zlib

import pytest

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.encode.serializer import encode_module
from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze
from repro.jvm.classfile import class_file_bytes
from repro.jvm.codegen import compile_unit
from repro.pipeline import compile_to_module
from repro.uast.builder import UastBuilder


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for name in CORPUS_PROGRAMS:
        source = corpus_source(name)
        module = compile_to_module(source, optimize=True)
        report: dict = {}
        wire = encode_module(module, size_report=report)
        phases = report.pop("_phases")
        header = report.pop("_header")
        unit = parse_compilation_unit(source)
        world = analyze(unit)
        builder = UastBuilder(world)
        classes = compile_unit(world, {d.info: builder.build_class(d)
                                       for d in unit.classes})
        class_bytes = b"".join(class_file_bytes(c) for c in classes)
        rows.append({
            "name": name,
            "wire": wire,
            "classfile": class_bytes,
            "header_bits": header,
            "member_bits": sum(report.values())
            - sum(phases.values()),
            "cst_bits": phases["cst"],
            "instr_bits": phases["instructions"],
            "phi_bits": phases["phi_operands"],
        })
    return rows


def test_bit_breakdown_table(measurements):
    print()
    print(f"{'Program':16} {'total B':>8} {'linking%':>9} {'cst%':>6} "
          f"{'code%':>6} {'phi%':>5}")
    for row in measurements:
        total_bits = len(row["wire"]) * 8
        linking = row["header_bits"] + row["member_bits"]
        print(f"{row['name']:16} {len(row['wire']):8} "
              f"{100 * linking / total_bits:8.1f}% "
              f"{100 * row['cst_bits'] / total_bits:5.1f}% "
              f"{100 * row['instr_bits'] / total_bits:5.1f}% "
              f"{100 * row['phi_bits'] / total_bits:4.1f}%")
    # the paper: "a substantial amount of each file consists of symbolic
    # linking information and constants"
    total_bits = sum(len(r["wire"]) * 8 for r in measurements)
    linking = sum(r["header_bits"] + r["member_bits"]
                  for r in measurements)
    assert 0.05 < linking / total_bits < 0.8

    # phases must account for (nearly) the whole stream
    for row in measurements:
        accounted = (row["header_bits"] + row["member_bits"]
                     + row["cst_bits"] + row["instr_bits"]
                     + row["phi_bits"])
        assert abs(accounted - len(row["wire"]) * 8) < 48, row["name"]


def test_dictionary_coding_headroom(measurements):
    """zlib over the symbol stream still wins over zlib over class files
    (the format comparison is not an artifact of raw entropy)."""
    print()
    print(f"{'Program':16} {'wire':>7} {'wire.z':>7} {'class':>7} "
          f"{'class.z':>8}")
    total_wire_z = total_class_z = 0
    for row in measurements:
        wire_z = len(zlib.compress(row["wire"], 9))
        class_z = len(zlib.compress(row["classfile"], 9))
        total_wire_z += wire_z
        total_class_z += class_z
        print(f"{row['name']:16} {len(row['wire']):7} {wire_z:7} "
              f"{len(row['classfile']):7} {class_z:8}")
    assert total_wire_z < total_class_z


def test_wire_always_smaller_than_classfiles(measurements):
    for row in measurements:
        assert len(row["wire"]) < len(row["classfile"]), row["name"]


def test_encode_throughput_benchmark(benchmark):
    module = compile_to_module(corpus_source("BigInt"), optimize=True)
    wire = benchmark(lambda: encode_module(module))
    assert len(wire) > 100
