"""Versioned wire-format core: the distribution envelope around the
verifying codec.

Wire-format **v1** (``STSA1``, :mod:`repro.encode.serializer` /
:mod:`repro.encode.deserializer`) is the *verified* representation:
every symbol is drawn from a context-computed alphabet, so decoding is
verification.  Nothing here changes that.  **v2** (``STSA2``) is a
*distribution envelope* whose resolution always produces a v1 stream
that then goes through the unmodified verifying decoder -- the safety
argument is containment, not trust:

``full`` mode (0x01)
    ``STSA2 | 0x01 | varint dict_count | dict_count x 32-byte sha256 |
    literal tail``.  Each digest names a content-addressed *dictionary
    blob* in a :class:`repro.cache.DictionaryStore`; the payload is the
    concatenation of the blobs followed by the literal tail.  A
    dictionary blob is a literal stream *prefix* (it includes the
    ``STSA1`` magic when it is the first section), so self-similar
    modules from one publisher -- which share their bit-packed type
    table and member tables -- amortize that common prefix down to 32
    bytes each.  A missing digest is ``DEC-DICT``; content addressing
    makes "present but wrong" impossible.

``delta`` mode (0x02)
    ``STSA2 | 0x02 | 32-byte base sha256 | varint prefix_len | varint
    suffix_len | varint literal_len | literal | 32-byte target
    sha256``.  The payload is ``base[:prefix_len] + literal +
    base[len(base)-suffix_len:]`` and must hash to the target digest
    (``DEC-DELTA-BASE`` otherwise -- the reject-or-equivalent invariant
    extended to patches: a tampered or mismatched delta is rejected
    with a stable code, never decoded unverified).  A delta may target
    another envelope, bounded by :data:`MAX_DELTA_DEPTH`.

Streaming: :func:`resolve_stream_prefix` maps a *partial* envelope to
the longest payload prefix derivable from it, so the chunk-feedable
loader (:mod:`repro.loader.stream`) can verify-and-execute early
bodies while later bytes are still arriving.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.encode.common import (MAGIC, MAGIC_V2, WIRE_VERSIONS,
                                 wire_format_version)
from repro.encode.deserializer import DecodeError

DIGEST_BYTES = 32

#: section mode bytes inside a v2 envelope
MODE_FULL = 0x01
MODE_DELTA = 0x02

#: hard caps -- resource bounds checked before any allocation
MAX_DICTIONARIES = 64
MAX_DELTA_DEPTH = 4
MAX_VARINT_BYTES = 5  # 35 bits: far above any legal section size

#: a shared dictionary shorter than this costs more than it saves
#: (32-byte digest + envelope framing)
MIN_DICTIONARY_BYTES = 48


def blob_digest(blob: bytes) -> bytes:
    """Content address of a dictionary/base blob (raw sha256)."""
    return hashlib.sha256(blob).digest()


class _Incomplete(Exception):
    """Internal: the envelope needs more bytes (not a format error)."""


# -- varints ------------------------------------------------------------

def _write_varint(out: bytearray, value: int) -> None:
    """LEB128, low 7 bits first."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    value = 0
    for i in range(MAX_VARINT_BYTES):
        if pos >= len(data):
            raise _Incomplete
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << (7 * i)
        if not byte & 0x80:
            return value, pos
    raise DecodeError("oversized varint in v2 envelope", "DEC-LIMIT")


# -- the per-version registry ------------------------------------------

@dataclass(frozen=True)
class WireFormat:
    """One wire-format version: magic, and how a distribution unit in
    this format resolves to the verified v1 payload."""

    version: str
    magic: bytes
    description: str
    #: (data, store, depth) -> v1 payload bytes
    resolve: Callable[[bytes, object, int], bytes]


def _resolve_v1(data: bytes, store, depth: int) -> bytes:
    return bytes(data)


def _resolve_v2(data: bytes, store, depth: int) -> bytes:
    if depth >= MAX_DELTA_DEPTH:
        raise DecodeError("v2 envelope chain too deep", "DEC-DELTA")
    pos = len(MAGIC_V2)
    if pos >= len(data):
        raise _Incomplete
    mode = data[pos]
    pos += 1
    if mode == MODE_FULL:
        payload, _pos = _resolve_full(data, pos, store)
        return payload
    if mode == MODE_DELTA:
        target, pos = _resolve_delta(data, pos, store)
        if pos != len(data):
            raise DecodeError(
                f"{len(data) - pos} trailing bytes after delta envelope",
                "DEC-TRAILING")
        if target[:len(MAGIC_V2)] == MAGIC_V2:
            return _resolve_v2(target, store, depth + 1)
        return target
    raise DecodeError(f"unknown v2 section mode {mode:#04x}",
                      "DEC-MALFORMED")


def _resolve_full(data: bytes, pos: int, store) -> tuple[bytes, int]:
    """Full mode: dictionary digests then the literal tail.  Returns
    everything resolvable so far -- the tail is open-ended, which is
    exactly what streaming needs."""
    count, pos = _read_varint(data, pos)
    if count > MAX_DICTIONARIES:
        raise DecodeError(f"{count} dictionary sections exceeds the "
                          f"limit of {MAX_DICTIONARIES}", "DEC-LIMIT")
    parts = []
    for _ in range(count):
        if pos + DIGEST_BYTES > len(data):
            raise _Incomplete
        digest = bytes(data[pos:pos + DIGEST_BYTES])
        pos += DIGEST_BYTES
        blob = store.get(digest)
        if blob is None:
            raise DecodeError(
                f"dictionary {digest.hex()[:16]} is not in the store",
                "DEC-DICT")
        parts.append(blob)
    parts.append(bytes(data[pos:]))
    return b"".join(parts), len(data)


def _resolve_delta(data: bytes, pos: int, store) -> tuple[bytes, int]:
    """Delta mode: patch a stored base, then check the target digest.
    Needs the complete envelope -- a patch is all-or-nothing."""
    if pos + DIGEST_BYTES > len(data):
        raise _Incomplete
    base_digest = bytes(data[pos:pos + DIGEST_BYTES])
    pos += DIGEST_BYTES
    prefix_len, pos = _read_varint(data, pos)
    suffix_len, pos = _read_varint(data, pos)
    literal_len, pos = _read_varint(data, pos)
    if pos + literal_len + DIGEST_BYTES > len(data):
        raise _Incomplete
    literal = bytes(data[pos:pos + literal_len])
    pos += literal_len
    target_digest = bytes(data[pos:pos + DIGEST_BYTES])
    pos += DIGEST_BYTES
    base = store.get(base_digest)
    if base is None:
        raise DecodeError(
            f"delta base {base_digest.hex()[:16]} is not in the store",
            "DEC-DELTA-BASE")
    if prefix_len + suffix_len > len(base):
        raise DecodeError(
            f"delta copies {prefix_len}+{suffix_len} bytes from a "
            f"{len(base)}-byte base", "DEC-DELTA")
    target = base[:prefix_len] + literal \
        + (base[len(base) - suffix_len:] if suffix_len else b"")
    if blob_digest(target) != target_digest:
        raise DecodeError("delta reconstruction does not match the "
                          "target digest", "DEC-DELTA-BASE")
    return target, pos


WIRE_FORMATS = (
    WireFormat("stsa1", MAGIC,
               "bit-packed verified stream (the paper's format)",
               _resolve_v1),
    WireFormat("stsa2", MAGIC_V2,
               "distribution envelope: shared dictionaries and deltas "
               "around a v1 payload", _resolve_v2),
)
FORMAT_BY_VERSION = {fmt.version: fmt for fmt in WIRE_FORMATS}


def detect_format(data: bytes) -> Optional[WireFormat]:
    """The :class:`WireFormat` whose magic prefixes ``data``, if any."""
    for fmt in WIRE_FORMATS:
        if data[:len(fmt.magic)] == fmt.magic:
            return fmt
    return None


def _default_store(store):
    if store is not None:
        return store
    from repro.cache import default_dictionary_store
    return default_dictionary_store()


# -- resolution (the consumer side) ------------------------------------

def resolve_stream(data: bytes, store=None, depth: int = 0) -> bytes:
    """Reduce a distribution unit to its v1 payload.

    v1 streams (and unrecognized bytes -- the v1 decoder owns that
    rejection, keeping ``DEC-MAGIC`` stable) pass through unchanged.
    v2 envelopes are resolved against ``store``; every failure mode is
    a :class:`DecodeError` with a stable registered code -- an envelope
    never "partially" resolves.
    """
    fmt = detect_format(data)
    if fmt is None or fmt.version == "stsa1":
        return bytes(data)
    try:
        return fmt.resolve(data, _default_store(store), depth)
    except _Incomplete:
        raise DecodeError("truncated v2 envelope", "DEC-STREAM") from None


def resolve_stream_prefix(data: bytes, store=None) -> bytes:
    """Longest v1-payload prefix derivable from a *partial* unit.

    Returns ``b""`` while too little has arrived to resolve anything
    (including the first 4 bytes, where v1 and v2 share the ``STSA``
    magic prefix and the unit is not yet classifiable).  Deterministic
    envelope errors -- unknown dictionary, bad mode, oversized varint
    -- raise immediately: waiting for more bytes cannot fix them.
    """
    if len(data) < len(MAGIC_V2):
        return b""
    fmt = detect_format(data)
    if fmt is None or fmt.version == "stsa1":
        return bytes(data)
    try:
        return fmt.resolve(data, _default_store(store), 0)
    except _Incomplete:
        return b""


# -- encoding (the producer side) --------------------------------------

def encode_v2(wire: bytes, dictionaries: Sequence[bytes] = (), *,
              store=None) -> bytes:
    """Wrap a v1 stream in a v2 full envelope.

    Each dictionary must be a literal prefix of ``wire`` at its running
    offset (the envelope is a *factoring* of the stream, never a
    rewrite); blobs are published to ``store`` so the consumer's
    resolution can find them.  With no dictionaries the envelope is
    self-contained: 6 bytes of framing around the unchanged stream.
    """
    store = _default_store(store)
    out = bytearray(MAGIC_V2)
    out.append(MODE_FULL)
    _write_varint(out, len(dictionaries))
    pos = 0
    for blob in dictionaries:
        if not blob:
            raise ValueError("empty dictionary blob")
        if wire[pos:pos + len(blob)] != blob:
            raise ValueError(
                f"dictionary does not match the stream at offset {pos}")
        out += store.put(blob)
        pos += len(blob)
    out += wire[pos:]
    return bytes(out)


def encode_delta(base: bytes, target: bytes, *, store=None) -> bytes:
    """Encode ``target`` as a patch against ``base``.

    The base is published to ``store`` by content address; the patch
    carries the target digest so resolution is self-checking end to
    end.  Patch shape is prefix-copy + literal + suffix-copy -- the
    right shape for streams that share a bit-packed header (type table,
    member tables) and diverge in the bodies.
    """
    store = _default_store(store)
    limit = min(len(base), len(target))
    prefix = 0
    while prefix < limit and base[prefix] == target[prefix]:
        prefix += 1
    suffix = 0
    while (suffix < limit - prefix
           and base[len(base) - 1 - suffix] == target[len(target) - 1 - suffix]):
        suffix += 1
    literal = target[prefix:len(target) - suffix]
    out = bytearray(MAGIC_V2)
    out.append(MODE_DELTA)
    out += store.put(base)
    _write_varint(out, prefix)
    _write_varint(out, suffix)
    _write_varint(out, len(literal))
    out += literal
    out += blob_digest(target)
    return bytes(out)


def build_shared_dictionary(wires: Sequence[bytes]) -> bytes:
    """Longest common prefix of the given streams -- the shareable part.

    Self-similar modules (one publisher, one class library) share their
    bit-packed type table and member tables byte for byte, since those
    sections precede every body; the common prefix captures exactly
    that without parsing anything.
    """
    if not wires:
        return b""
    shortest = min(wires, key=len)
    for i in range(len(shortest)):
        byte = shortest[i]
        if any(wire[i] != byte for wire in wires):
            return bytes(shortest[:i])
    return bytes(shortest)


def encode_modules_v2(wires: Sequence[bytes], *, store=None) -> list[bytes]:
    """Publisher batch path: factor one shared dictionary out of a
    module set and envelope each stream against it.  Falls back to
    plain (zero-dictionary) envelopes when the common prefix is too
    short to pay for its digest."""
    store = _default_store(store)
    dictionary = build_shared_dictionary(wires)
    shared = (dictionary,) if len(dictionary) >= MIN_DICTIONARY_BYTES \
        else ()
    return [encode_v2(wire, shared, store=store) for wire in wires]
