"""Bit-level I/O with the three primitive codes of the wire format:

* ``bounded`` -- phase-in (truncated binary) codes for symbols from a
  finite alphabet of known size;
* ``gamma`` -- Elias gamma codes for small unbounded counts;
* ``bits`` -- raw fixed-width fields (IEEE floats, chars).

The implementation is word-at-a-time.  The writer accumulates bits in a
single Python int and flushes whole bytes with one ``int.to_bytes`` per
chunk; the reader keeps the next few dozen bits in an int accumulator
refilled from the byte buffer in whole-word slices, so narrow fields
cost a shift and a mask instead of a per-bit loop, and gamma codes scan
their zero prefix with one ``bit_length`` call.  The per-code methods
(``bounded``, ``gamma``, ``flag``) manipulate the accumulator directly
rather than calling ``write_bits``/``read_bits``: at the ~4 bits of the
format's average field, one avoided Python call is worth more than any
bit trick.

The wire format is bit-for-bit identical to the seed bit-at-a-time
codec, which is kept as :mod:`repro.encode._bitio_reference` and
compared against by the golden fixtures in ``tests/golden/wire`` and
the differential tests.
"""

from __future__ import annotations

#: Flush the writer's accumulator once it holds this many bits.  Every
#: append shifts the whole accumulator, so the threshold trades flush
#: amortisation against shift width; 256 bits measured fastest on the
#: corpus trace (2.3x over 4096).  A whole number of bytes, so flushing
#: never splits a byte.
_FLUSH_BITS = 256

#: How many bytes the reader pulls into its accumulator per refill,
#: trading refill amortisation against mask width like _FLUSH_BITS.
_REFILL_BYTES = 16


class BitIOError(Exception):
    """Malformed bit stream (ran out of bits, impossible symbol)."""


class BitWriter:
    """Accumulates bits most-significant-first into a byte string."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0       # pending bits, MSB-first, value < 2**_nbits
        self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        # value >> 0 is value itself, so a nonzero value with width == 0
        # (which the seed codec silently dropped) is rejected here too
        if width < 0 or value < 0 or value >> width:
            raise BitIOError(f"value {value} does not fit in {width} bits")
        self._acc = (self._acc << width) | value
        self._nbits += width
        if self._nbits >= _FLUSH_BITS:
            self._flush_whole_bytes()

    def _flush_whole_bytes(self) -> None:
        whole, keep = divmod(self._nbits, 8)
        if not whole:
            return
        self._bytes += (self._acc >> keep).to_bytes(whole, "big")
        self._acc &= (1 << keep) - 1
        self._nbits = keep

    def write_bounded(self, value: int, alphabet_size: int) -> None:
        """Phase-in code: symbols 0..n-1, using floor(log2 n) or
        ceil(log2 n) bits."""
        if not 0 <= value < alphabet_size:
            if alphabet_size <= 0:
                raise BitIOError("empty alphabet has no encoding")
            raise BitIOError(
                f"symbol {value} outside alphabet of {alphabet_size}")
        if alphabet_size == 1:
            return  # the only symbol costs zero bits
        width = (alphabet_size - 1).bit_length()
        threshold = (1 << width) - alphabet_size
        if value < threshold:
            width -= 1
        else:
            value += threshold
        self._acc = (self._acc << width) | value
        self._nbits += width
        if self._nbits >= _FLUSH_BITS:
            self._flush_whole_bytes()

    def write_gamma(self, value: int) -> None:
        """Elias gamma for value >= 0 (encodes value + 1)."""
        if value < 0:
            raise BitIOError("gamma encodes non-negative values only")
        n = value + 1
        # width-1 zero bits then the width bits of n, as a single field
        width = 2 * n.bit_length() - 1
        self._acc = (self._acc << width) | n
        self._nbits += width
        if self._nbits >= _FLUSH_BITS:
            self._flush_whole_bytes()

    def write_signed_gamma(self, value: int) -> None:
        """Zig-zag then gamma, for ints of either sign."""
        zig = ((-value) << 1) - 1 if value < 0 else value << 1
        self.write_gamma(zig)

    def write_flag(self, flag: bool) -> None:
        self._acc = (self._acc << 1) | (1 if flag else 0)
        self._nbits += 1
        if self._nbits >= _FLUSH_BITS:
            self._flush_whole_bytes()

    def write_bytes(self, data: bytes) -> None:
        if not data:
            return
        width = 8 * len(data)
        self._acc = (self._acc << width) | int.from_bytes(data, "big")
        self._nbits += width
        if self._nbits >= _FLUSH_BITS:
            self._flush_whole_bytes()

    def getvalue(self) -> bytes:
        self._flush_whole_bytes()
        result = bytearray(self._bytes)
        if self._nbits:
            result.append(self._acc << (8 - self._nbits))
        return bytes(result)

    def bit_length(self) -> int:
        return len(self._bytes) * 8 + self._nbits


class BitReader:
    """Reads the codes written by :class:`BitWriter`.

    ``start_bit`` positions the reader mid-stream; the module loader
    uses it to jump straight to a function body whose bit boundaries a
    previous sequential decode recorded (lazy and parallel loading).
    It is a read-side affordance only -- the wire format itself has no
    length prefixes and is unchanged.
    """

    def __init__(self, data: bytes, start_bit: int = 0):
        self._data = data
        self._byte_pos = 0  # next byte to pull into the accumulator
        self._acc = 0       # the next _nacc bits, MSB-first
        self._nacc = 0
        if start_bit:
            if not 0 <= start_bit <= len(data) * 8:
                raise BitIOError(f"start bit {start_bit} outside the "
                                 "stream")
            self._byte_pos = start_bit >> 3
            rest = start_bit & 7
            if rest:
                # accumulate the tail of the straddled byte
                self._acc = data[self._byte_pos] & ((1 << (8 - rest)) - 1)
                self._nacc = 8 - rest
                self._byte_pos += 1

    def bit_position(self) -> int:
        """The number of bits consumed so far (the read cursor)."""
        return self._byte_pos * 8 - self._nacc

    def _refill(self, need: int) -> None:
        """Grow the accumulator to at least ``need`` bits."""
        take = (need - self._nacc + 7) >> 3
        if take < _REFILL_BYTES:
            take = _REFILL_BYTES
        chunk = self._data[self._byte_pos:self._byte_pos + take]
        if self._nacc + 8 * len(chunk) < need:
            raise BitIOError("unexpected end of stream")
        self._byte_pos += len(chunk)
        self._acc = (self._acc << (8 * len(chunk))) \
            | int.from_bytes(chunk, "big")
        self._nacc += 8 * len(chunk)

    def read_bits(self, width: int) -> int:
        if width < 0:
            raise BitIOError(f"cannot read {width} bits")
        nacc = self._nacc
        if width > nacc:
            self._refill(width)
            nacc = self._nacc
        nacc -= width
        value = self._acc >> nacc
        self._acc &= (1 << nacc) - 1
        self._nacc = nacc
        return value

    def read_bounded(self, alphabet_size: int) -> int:
        if alphabet_size <= 1:
            if alphabet_size == 1:
                return 0
            raise BitIOError("empty alphabet: no value can be referenced "
                             "here")
        width = (alphabet_size - 1).bit_length()
        threshold = (1 << width) - alphabet_size
        short = width - 1
        nacc = self._nacc
        if short > nacc:
            # refill for the short form only: it may be the last field
            # in the stream, with no spare bit after it
            self._refill(short)
            nacc = self._nacc
        if nacc > short:  # the usual case: the long form fits as well
            rest = nacc - short
            value = self._acc >> rest
            if value < threshold:
                self._acc &= (1 << rest) - 1
                self._nacc = rest
                return value
            rest -= 1
            value = self._acc >> rest
            self._acc &= (1 << rest) - 1
            self._nacc = rest
            return value - threshold
        # exactly the short form's bits are left in the buffer
        value = self._acc
        self._acc = 0
        self._nacc = 0
        if value < threshold:
            return value
        self._refill(1)
        rest = self._nacc - 1
        value = (value << 1) | (self._acc >> rest)
        self._acc &= (1 << rest) - 1
        self._nacc = rest
        return value - threshold

    def read_gamma(self) -> int:
        # fast path: the whole code (zero prefix, stop bit, payload) is
        # already accumulated, which holds for every small count
        acc = self._acc
        if acc:
            significant = acc.bit_length()
            zeros = self._nacc - significant
            if significant > zeros and zeros <= 64:
                rest = significant - zeros - 1
                value = acc >> rest
                self._acc = acc & ((1 << rest) - 1)
                self._nacc = rest
                return value - 1
        # count the zero prefix a word at a time: within the accumulator
        # the number of leading zeros is _nacc - acc.bit_length()
        zeros = 0
        while True:
            if not self._nacc:
                self._refill(1)
            significant = self._acc.bit_length()
            if significant:
                zeros += self._nacc - significant
                self._nacc = significant  # the zeros are consumed
                break
            zeros += self._nacc
            self._nacc = 0
            if zeros > 64:
                raise BitIOError("gamma code too long")
        if zeros > 64:
            raise BitIOError("gamma code too long")
        # the stop bit plus the zeros payload bits form value + 1 directly
        width = zeros + 1
        nacc = self._nacc
        if width > nacc:
            self._refill(width)
            nacc = self._nacc
        nacc -= width
        value = self._acc >> nacc
        self._acc &= (1 << nacc) - 1
        self._nacc = nacc
        return value - 1

    def read_signed_gamma(self) -> int:
        zig = self.read_gamma()
        if zig & 1:
            return -((zig + 1) >> 1)
        return zig >> 1

    def read_flag(self) -> bool:
        nacc = self._nacc
        if not nacc:
            self._refill(1)
            nacc = self._nacc
        nacc -= 1
        value = self._acc >> nacc
        self._acc &= (1 << nacc) - 1
        self._nacc = nacc
        return bool(value)

    def read_bytes(self, count: int) -> bytes:
        if count < 0:
            raise BitIOError(f"cannot read {count} bytes")
        if not self._nacc:  # empty accumulator means byte-aligned
            start = self._byte_pos
            if start + count > len(self._data):
                raise BitIOError("unexpected end of stream")
            self._byte_pos = start + count
            return bytes(self._data[start:start + count])
        return self.read_bits(8 * count).to_bytes(count, "big")

    def bits_remaining(self) -> int:
        """Bits between the read position and the end of the buffer."""
        return (len(self._data) - self._byte_pos) * 8 + self._nacc

    def at_end(self) -> bool:
        """True iff nothing but zero padding to the byte boundary remains.

        The wire format pads the final byte with zero bits, so a reader
        that stopped mid-byte is "at the end" exactly when fewer than
        eight bits remain and all of them are zero -- the same rule the
        deserializer's trailing-bits check enforces.  (The seed codec
        compared ``pos >= len(data) * 8``, which could never be true
        after a mid-byte stop on a padded stream.)
        """
        remaining = self.bits_remaining()
        if remaining >= 8:
            return False
        if remaining == 0:
            return True
        return self._acc == 0  # < 8 bits left, so all are accumulated
