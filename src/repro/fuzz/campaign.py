"""Budgeted fuzzing campaigns (the engine behind ``repro-cc fuzz``).

Two campaign modes, both deterministic under a fixed seed:

* **programs** -- generate seeded programs and run each through the
  differential oracle (:mod:`repro.fuzz.oracle`); a divergence is
  shrunk with :func:`repro.fuzz.minimize.minimize_lines`;
* **streams** -- mutate known-good wire streams and classify each
  mutant against the reject-or-equivalent invariant
  (:mod:`repro.fuzz.mutate`); a finding is shrunk with
  :func:`repro.fuzz.minimize.minimize_bytes` and can be persisted as a
  regression fixture;
* **streams-v2** -- the same invariant over wire-format v2
  distribution units (shared-dictionary envelopes and deltas), with
  envelope-targeted mutators and the campaign's own dictionary store.

``mode="all"`` runs a program campaign at a tenth of the budget plus a
v1 stream campaign at the full budget plus a v2 stream campaign at
half budget.

Determinism contract: iteration ``i`` of a program campaign uses
generator seed ``seed * 1_000_003 + i``; a stream campaign draws every
decision from one ``random.Random`` derived from the seed.  Two runs
with the same seed and budget therefore see the same programs, the
same mutants, the same findings, and byte-identical fixtures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.fuzz.gen import RandomSource, generate_seeded
from repro.fuzz.minimize import minimize_bytes, minimize_lines, save_fixture
from repro.fuzz.mutate import check_stream, mutate_stream, mutate_stream_v2
from repro.fuzz.oracle import check_program

#: deterministic seed programs whose encodings are the mutation bases;
#: they deliberately span the encoding's feature set (type table,
#: hierarchy + dispatch, fields, arrays + safe planes, try/catch,
#: loops/phis, constants)
BASE_PROGRAMS: tuple[tuple[str, str], ...] = (
    ("arith", """
class T {
    static int f(int a, int b) {
        int r = 0;
        for (int i = 0; i < 4; i++) { r = r + a / b; }
        return r;
    }
    static void main() { System.out.println(f(12, 3)); }
}
"""),
    ("dispatch", """
class A { int v; int get() { return v; } }
class B extends A { int get() { return v * 2; } }
class T {
    static void main() {
        A x = new B();
        x.v = 21;
        System.out.println(x.get());
    }
}
"""),
    ("arrays", """
class T {
    static void main() {
        int[] xs = new int[5];
        int total = 0;
        for (int i = 0; i < 5; i++) { xs[i] = i * i; }
        try { total = xs[7]; }
        catch (ArrayIndexOutOfBoundsException e) { total = -1; }
        for (int i = 0; i < 5; i++) { total += xs[i]; }
        System.out.println(total);
    }
}
"""),
    ("strings", """
class T {
    static String tag(boolean hot) { return hot ? "hot" : "cold"; }
    static void main() {
        System.out.println(tag(true) + "/" + tag(false));
    }
}
"""),
)


@dataclass(frozen=True)
class ProgramFinding:
    """One oracle divergence, with its shrunken reproducer."""

    seed: int
    pipeline: str
    detail: str
    source: str
    minimized: str


@dataclass(frozen=True)
class StreamFinding:
    """One reject-or-equivalent violation, with its shrunken stream."""

    base: str
    mutator: str
    code: str
    detail: str
    data: bytes
    minimized: bytes


@dataclass
class CampaignResult:
    mode: str
    seed: int
    budget: int
    #: program campaign
    programs: int = 0
    pipelines_compared: int = 0
    program_findings: list = field(default_factory=list)
    #: stream campaign
    mutations: int = 0
    accepted: int = 0
    rejected: int = 0
    taxonomy: dict = field(default_factory=dict)
    mutator_counts: dict = field(default_factory=dict)
    stream_findings: list = field(default_factory=list)
    seconds: dict = field(default_factory=dict)

    @property
    def findings(self) -> list:
        return list(self.program_findings) + list(self.stream_findings)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        lines = [f"fuzz campaign: mode={self.mode} seed={self.seed} "
                 f"budget={self.budget}"]
        if self.programs:
            seconds = self.seconds.get("programs", 0.0)
            rate = self.programs / seconds if seconds else 0.0
            lines.append(
                f"  programs  {self.programs} generated, "
                f"{self.pipelines_compared} pipeline runs agreed, "
                f"{len(self.program_findings)} divergence(s)  "
                f"[{seconds:.1f}s, {rate:.1f}/s]")
        if self.mutations:
            seconds = self.seconds.get("streams", 0.0)
            rate = self.mutations / seconds if seconds else 0.0
            lines.append(
                f"  streams   {self.mutations} mutants: "
                f"{self.rejected} rejected, {self.accepted} accepted, "
                f"{len(self.stream_findings)} finding(s)  "
                f"[{seconds:.1f}s, {rate:.0f}/s]")
            top = sorted(self.taxonomy.items(),
                         key=lambda item: (-item[1], item[0]))[:8]
            for code, count in top:
                lines.append(f"    {code:<24} {count}")
        for finding in self.program_findings:
            lines.append(f"  DIVERGENCE [{finding.pipeline}] "
                         f"seed={finding.seed}: {finding.detail}")
        for finding in self.stream_findings:
            lines.append(f"  FINDING [{finding.code}] via {finding.mutator} "
                         f"on {finding.base} "
                         f"({len(finding.minimized)} bytes minimized): "
                         f"{finding.detail}")
        return "\n".join(lines)

    def report(self) -> dict:
        """JSON-able campaign report (consumed by ``BENCH_fuzz.json``)."""
        program_seconds = self.seconds.get("programs", 0.0)
        stream_seconds = self.seconds.get("streams", 0.0)
        return {
            "mode": self.mode,
            "seed": self.seed,
            "budget": self.budget,
            "programs": {
                "count": self.programs,
                "pipelines_compared": self.pipelines_compared,
                "divergences": len(self.program_findings),
                "seconds": round(program_seconds, 3),
                "per_second": round(self.programs / program_seconds, 2)
                if program_seconds else None,
            },
            "streams": {
                "mutations": self.mutations,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "findings": len(self.stream_findings),
                "seconds": round(stream_seconds, 3),
                "per_second": round(self.mutations / stream_seconds, 1)
                if stream_seconds else None,
                "taxonomy": dict(sorted(self.taxonomy.items())),
                "mutators": dict(sorted(self.mutator_counts.items())),
            },
            "findings": [
                {"kind": "program", "pipeline": f.pipeline, "seed": f.seed,
                 "detail": f.detail}
                for f in self.program_findings
            ] + [
                {"kind": "stream", "code": f.code, "mutator": f.mutator,
                 "base": f.base, "bytes": f.minimized.hex(),
                 "detail": f.detail}
                for f in self.stream_findings
            ],
        }


def program_seed(campaign_seed: int, index: int) -> int:
    """Generator seed for iteration ``index`` (the determinism contract)."""
    return campaign_seed * 1_000_003 + index


def stream_bases() -> list[tuple[str, bytes]]:
    """The known-good wire streams a stream campaign mutates: every
    base program encoded both plain and optimised."""
    from repro.encode.serializer import encode_module
    from repro.pipeline import compile_to_module
    bases = []
    for name, source in BASE_PROGRAMS:
        plain = compile_to_module(source, cache=False)
        bases.append((name, encode_module(plain)))
        optimized = compile_to_module(source, optimize=True, cache=False)
        bases.append((f"{name}+opt", encode_module(optimized)))
    return bases


def stream_bases_v2(store) -> list[tuple[str, bytes]]:
    """Known-good *v2* distribution units over the same base programs:
    per program, a shared-dictionary envelope pair (plain + optimised
    factored against their common prefix) and a plain->optimised delta,
    all resolvable through ``store``."""
    from repro.encode.format import encode_delta, encode_modules_v2
    bases = []
    v1 = stream_bases()
    for index in range(0, len(v1), 2):
        (name, plain), (opt_name, optimized) = v1[index], v1[index + 1]
        enveloped = encode_modules_v2([plain, optimized], store=store)
        bases.append((f"{name}+v2", enveloped[0]))
        bases.append((f"{opt_name}+v2", enveloped[1]))
        bases.append((f"{name}+delta",
                      encode_delta(plain, optimized, store=store)))
    return bases


# ======================================================================
# the two campaign bodies

def _run_programs(result: CampaignResult, seed: int, budget: int,
                  minimize: bool,
                  on_progress: Optional[Callable]) -> None:
    start = time.perf_counter()
    for index in range(budget):
        generated = generate_seeded(program_seed(seed, index))
        oracle = check_program(generated.source, generated.main_class)
        result.programs += 1
        result.pipelines_compared += oracle.pipelines
        if oracle.divergence is not None:
            divergence = oracle.divergence
            minimized = generated.source
            if minimize:
                pipeline = divergence.pipeline

                def still_diverges(candidate: str) -> bool:
                    shrunk = check_program(candidate, None)
                    return (shrunk.divergence is not None
                            and shrunk.divergence.pipeline == pipeline)

                try:
                    minimized = minimize_lines(generated.source,
                                               still_diverges)
                except ValueError:
                    # divergence needs the named main class; keep as-is
                    minimized = generated.source
            result.program_findings.append(ProgramFinding(
                seed=generated.seed, pipeline=divergence.pipeline,
                detail=str(divergence), source=generated.source,
                minimized=minimized))
        if on_progress and (index + 1) % 100 == 0:
            on_progress(f"programs {index + 1}/{budget}, "
                        f"{len(result.program_findings)} divergence(s)")
    result.seconds["programs"] = time.perf_counter() - start


def _run_streams(result: CampaignResult, seed: int, budget: int,
                 minimize: bool, fixtures_dir,
                 on_progress: Optional[Callable]) -> None:
    bases = stream_bases()
    rng = RandomSource(seed * 2_147_483_659 + 17)
    start = time.perf_counter()
    for index in range(budget):
        base_name, base = bases[rng.integer(0, len(bases) - 1)]
        mutator, mutant = mutate_stream(base, rng)
        outcome = check_stream(mutant)
        result.mutations += 1
        result.mutator_counts[mutator] = \
            result.mutator_counts.get(mutator, 0) + 1
        result.taxonomy[outcome.code] = \
            result.taxonomy.get(outcome.code, 0) + 1
        if outcome.kind == "rejected":
            result.rejected += 1
        elif outcome.kind == "accepted":
            result.accepted += 1
        else:
            minimized = mutant
            if minimize:
                code = outcome.code

                def same_finding(candidate: bytes) -> bool:
                    shrunk = check_stream(candidate)
                    return shrunk.is_finding and shrunk.code == code

                minimized = minimize_bytes(mutant, same_finding)
            finding = StreamFinding(
                base=base_name, mutator=mutator, code=outcome.code,
                detail=outcome.detail, data=mutant, minimized=minimized)
            result.stream_findings.append(finding)
            if fixtures_dir is not None:
                save_fixture(fixtures_dir, minimized, {
                    "code": outcome.code,
                    "detail": outcome.detail,
                    "mutator": mutator,
                    "base": base_name,
                    "campaign_seed": seed,
                })
        if on_progress and (index + 1) % 1000 == 0:
            on_progress(f"streams {index + 1}/{budget}, "
                        f"{len(result.stream_findings)} finding(s)")
    result.seconds["streams"] = time.perf_counter() - start


def _run_streams_v2(result: CampaignResult, seed: int, budget: int,
                    minimize: bool, fixtures_dir,
                    on_progress: Optional[Callable]) -> None:
    """The v2 lane: mutate envelope/delta units and classify against
    the campaign's own dictionary store, so honest units decode and
    every mutation must reject-or-stay-equivalent.  Draws from its own
    stream (seed offset differs from the v1 lane) to keep both lanes
    individually reproducible."""
    from repro.cache import DictionaryStore
    store = DictionaryStore()
    bases = stream_bases_v2(store)
    rng = RandomSource(seed * 2_147_483_659 + 29)
    start = time.perf_counter()
    for index in range(budget):
        base_name, base = bases[rng.integer(0, len(bases) - 1)]
        mutator, mutant = mutate_stream_v2(base, rng)
        outcome = check_stream(mutant, store=store)
        result.mutations += 1
        result.mutator_counts[mutator] = \
            result.mutator_counts.get(mutator, 0) + 1
        result.taxonomy[outcome.code] = \
            result.taxonomy.get(outcome.code, 0) + 1
        if outcome.kind == "rejected":
            result.rejected += 1
        elif outcome.kind == "accepted":
            result.accepted += 1
        else:
            minimized = mutant
            if minimize:
                code = outcome.code

                def same_finding(candidate: bytes) -> bool:
                    shrunk = check_stream(candidate, store=store)
                    return shrunk.is_finding and shrunk.code == code

                minimized = minimize_bytes(mutant, same_finding)
            finding = StreamFinding(
                base=base_name, mutator=mutator, code=outcome.code,
                detail=outcome.detail, data=mutant, minimized=minimized)
            result.stream_findings.append(finding)
            if fixtures_dir is not None:
                save_fixture(fixtures_dir, minimized, {
                    "code": outcome.code,
                    "detail": outcome.detail,
                    "mutator": mutator,
                    "base": base_name,
                    "campaign_seed": seed,
                    "lane": "v2",
                })
        if on_progress and (index + 1) % 1000 == 0:
            on_progress(f"streams-v2 {index + 1}/{budget}, "
                        f"{len(result.stream_findings)} finding(s)")
    result.seconds["streams"] = \
        result.seconds.get("streams", 0.0) + time.perf_counter() - start


def run_campaign(seed: int = 0, budget: int = 1000, mode: str = "all", *,
                 minimize: bool = True, fixtures_dir=None,
                 on_progress: Optional[Callable] = None) -> CampaignResult:
    """Run one deterministic campaign; see the module docstring for the
    budget/seed semantics.  ``mode="all"`` adds the v2 envelope lane at
    half budget on top of the program and v1 stream lanes."""
    if mode not in ("programs", "streams", "streams-v2", "all"):
        raise ValueError(f"unknown fuzz mode {mode!r}")
    result = CampaignResult(mode=mode, seed=seed, budget=budget)
    if mode in ("programs", "all"):
        program_budget = budget if mode == "programs" \
            else max(1, budget // 10)
        _run_programs(result, seed, program_budget, minimize, on_progress)
    if mode in ("streams", "all"):
        _run_streams(result, seed, budget, minimize, fixtures_dir,
                     on_progress)
    if mode in ("streams-v2", "all"):
        v2_budget = budget if mode == "streams-v2" \
            else max(1, budget // 2)
        _run_streams_v2(result, seed, v2_budget, minimize, fixtures_dir,
                        on_progress)
    return result
