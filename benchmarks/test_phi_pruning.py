"""E3 -- Section 7's claim: Briggs-style liveness pruning removes
superfluous eagerly-inserted phi instructions (the paper: 31% on average
over their JDK corpus).

The magnitude is corpus-dependent -- dead merges come from exception
dispatch joins and variables that die before loop exits, which real
javac-era code has far more of than this corpus (see EXPERIMENTS.md).
The mechanism is asserted here: pruning removes phis, never adds them,
and try-heavy / array-heavy programs show clear reductions.
"""

from __future__ import annotations

import pytest

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.bench.tables import phi_pruning_table
from repro.pipeline import compile_to_module
from repro.ssa.phi_pruning import prune_dead_phis


def _phi_counts(name: str) -> tuple[int, int]:
    source = corpus_source(name)
    unpruned = compile_to_module(source, prune_phis=False)
    pruned = compile_to_module(source, prune_phis=True)
    return unpruned.count_opcodes("phi"), pruned.count_opcodes("phi")


def test_pruning_table_shape():
    results = []
    for name in CORPUS_PROGRAMS:
        unpruned, pruned = _phi_counts(name)
        results.append((name, unpruned, pruned))
    print()
    print(phi_pruning_table(results))
    total_unpruned = sum(r[1] for r in results)
    total_pruned = sum(r[2] for r in results)
    assert total_pruned < total_unpruned, "pruning removed nothing"
    assert all(p <= u for _, u, p in results)


def test_pruning_strong_on_exception_heavy_code():
    """Dispatch-join phis for variables the handlers never read are the
    classic dead-phi population; a try-heavy method shows the paper-sized
    effect."""
    source = """
    class T {
        static int f(int[] data, int n) {
            int a = 0; int b = 1; int c = 2; int d = 3; int e = 4;
            try {
                for (int i = 0; i < n; i++) {
                    a += data[i]; b *= 2; c ^= a; d += b; e -= c;
                }
            } catch (ArrayIndexOutOfBoundsException oob) {
                return -1;
            }
            return a;
        }
    }
    """
    unpruned = compile_to_module(source, prune_phis=False)
    pruned = compile_to_module(source, prune_phis=True)
    before = unpruned.count_opcodes("phi")
    after = pruned.count_opcodes("phi")
    reduction = 1 - after / before
    assert reduction >= 0.30, f"only {reduction:.1%} of phis pruned"


def test_pruning_preserves_semantics():
    from repro.interp.interpreter import Interpreter
    for name in ("BitSieve", "Linpack"):
        source = corpus_source(name)
        unpruned = Interpreter(compile_to_module(source, prune_phis=False),
                               max_steps=50_000_000).run_main(name)
        pruned = Interpreter(compile_to_module(source, prune_phis=True),
                             max_steps=50_000_000).run_main(name)
        assert unpruned.stdout == pruned.stdout


def test_pruning_throughput_benchmark(benchmark):
    source = corpus_source("Linpack")
    module = compile_to_module(source, prune_phis=False)

    def run():
        fresh = compile_to_module(source, prune_phis=False)
        return sum(prune_dead_phis(f) for f in fresh.functions.values())

    removed = benchmark(run)
    assert removed >= 0
