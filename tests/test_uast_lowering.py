"""UAST lowering tests: the normalisations of Section 7."""

import pytest

from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze
from repro.uast import nodes as u
from repro.uast.builder import build_uast


def lower(source: str):
    unit = parse_compilation_unit(source)
    world = analyze(unit)
    methods = {}
    for decl in unit.classes:
        for umethod in build_uast(decl, world):
            methods[umethod.method.name] = umethod
    return methods


def lower_body(body: str, extra: str = ""):
    methods = lower(f"class T {{ {extra}\n static void f() {{ {body} }} }}")
    return methods["f"]


def walk_stmts(stmt):
    yield stmt
    if isinstance(stmt, u.SBlock):
        for inner in stmt.stmts:
            yield from walk_stmts(inner)
    elif isinstance(stmt, u.SIf):
        yield from walk_stmts(stmt.then_body)
        if stmt.else_body is not None:
            yield from walk_stmts(stmt.else_body)
    elif isinstance(stmt, (u.SWhile, u.SDoWhile, u.SLabeled)):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, u.STry):
        yield from walk_stmts(stmt.body)
        for catch in stmt.catches:
            yield from walk_stmts(catch.body)


def stmts_of(umethod, kind):
    return [s for s in walk_stmts(umethod.body) if isinstance(s, kind)]


class TestExpressionLowering:
    def test_short_circuit_becomes_if(self):
        method = lower_body(
            "boolean x = 1 < 2 && 3 < 4; if (x) { }")
        ifs = stmts_of(method, u.SIf)
        assert len(ifs) >= 2  # the && plus the source if

    def test_ternary_becomes_if(self):
        method = lower_body("int x = 1 < 2 ? 3 : 4;")
        assert stmts_of(method, u.SIf)

    def test_string_concat_becomes_calls(self):
        method = lower_body('String s = "a" + 1;')
        writes = stmts_of(method, u.SLocalWrite)
        call = writes[-1].value
        assert isinstance(call, u.ECall)
        assert call.method.name == "concat"
        assert call.args[0].method.name == "valueOf"

    def test_compound_assignment_single_location_eval(self):
        method = lower_body("int[] a = new int[3]; a[1] += 5;")
        gets = [s for s in walk_stmts(method.body)
                if isinstance(s, u.SLocalWrite)
                and isinstance(s.value, u.EArrayGet)]
        assert len(gets) == 1  # location read exactly once

    def test_postfix_increment_produces_old_value(self):
        method = lower_body("int i = 5; int j = i++;")
        writes = stmts_of(method, u.SLocalWrite)
        assert writes[-1].local.name == "j"
        assert isinstance(writes[-1].value, u.ELocal)
        assert writes[-1].value.local.name.startswith("$t")

    def test_multidim_new_is_symbolic(self):
        method = lower_body("int[][] g = new int[2][3];")
        writes = stmts_of(method, u.SLocalWrite)
        assert isinstance(writes[0].value, u.ENewMultiArray)
        assert len(writes[0].value.dims) == 2


class TestControlLowering:
    def test_for_becomes_while(self):
        method = lower_body("for (int i = 0; i < 3; i++) { }")
        assert stmts_of(method, u.SWhile)

    def test_for_continue_targets_update(self):
        method = lower_body(
            "int s = 0;"
            "for (int i = 0; i < 3; i++) { if (i == 1) continue; s += i; }")
        labeled = stmts_of(method, u.SLabeled)
        assert labeled, "continue-in-for should produce a labeled region"
        breaks = stmts_of(method, u.SBreak)
        assert any(b.target_id == labeled[0].target_id for b in breaks)

    def test_switch_becomes_nested_labels(self):
        method = lower_body(
            "int r = 0; switch (r) { case 0: r = 1; case 1: r = 2; break;"
            "default: r = 3; }")
        labeled = stmts_of(method, u.SLabeled)
        assert len(labeled) >= 3  # exit + one per case position

    def test_try_finally_becomes_mode_dispatch(self):
        methods = lower(
            "class T { static int f() {"
            "try { return 1; } finally { System.out.println(\"x\"); } } }")
        method = methods["f"]
        tries = stmts_of(method, u.STry)
        assert len(tries) == 1
        catch = tries[0].catches[-1]
        assert catch.catch_class.name == "java.lang.Throwable"
        # dispatch comparisons on the mode variable exist
        assert stmts_of(method, u.SIf)

    def test_constructor_gets_implicit_super_and_field_inits(self):
        methods = lower("class T { int v = 41; }")
        ctor = methods["<init>"]
        evals = stmts_of(ctor, u.SEval)
        assert evals and evals[0].expr.method.is_constructor
        field_writes = stmts_of(ctor, u.SFieldWrite)
        assert field_writes and field_writes[0].field.name == "v"

    def test_static_inits_become_clinit(self):
        methods = lower("class T { static int v = 7; }")
        clinit = methods["<clinit>"]
        writes = stmts_of(clinit, u.SStaticWrite)
        assert writes and writes[0].field.name == "v"

    def test_this_delegation_skips_field_inits(self):
        methods = lower(
            "class T { int v = 5; T() { this(1); } T(int x) { } }")
        # two constructors: the delegating one must not write v
        unit = parse_compilation_unit(
            "class T { int v = 5; T() { this(1); } T(int x) { } }")
        world = analyze(unit)
        ctors = [m for m in build_uast(unit.classes[0], world)
                 if m.method.is_constructor]
        delegating = next(c for c in ctors
                          if not c.method.param_types)
        target = next(c for c in ctors if c.method.param_types)
        assert not stmts_of(delegating, u.SFieldWrite)
        assert stmts_of(target, u.SFieldWrite)

    def test_while_with_effectful_condition(self):
        method = lower_body(
            "int i = 0; while (i++ < 3) { }", extra="")
        loops = stmts_of(method, u.SWhile)
        assert loops
        cond = loops[0].cond
        assert isinstance(cond, u.EConst) and cond.value is True
