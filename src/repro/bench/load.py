"""E10: consumer-side load cost -- two-pass vs the fused loader.

The question the fused loader exists to answer: how much of the
consumer's "decode, then verify" bill disappears when verification is
folded into the decode, and what do the warm paths on top of it buy?
Per corpus artifact (every program, unoptimised and optimised) this
benchmark times:

* **two-pass**    the legacy oracle, ``decode_module`` + ``verify_module``
* **fused cold**  one ``load_module`` with no cache: decode-with-checks
  plus the residual rule sweep
* **fused warm**  the wire digest hits the verified-module cache: no
  sweeps, boundary-indexed body decode
* **warm jobs=N** the same warm load with body decoding fanned out
  across N threads
* **lazy first**  a warm lazy load touching a single function body --
  the "start one entry point out of a big distribution unit" cost

Every timed load also re-encodes once (outside the timer) and must be
bit-identical to the input -- a benchmark that loads the wrong module
measures nothing.  The report lands in ``BENCH_load.json``; the perf
guard in CI fails if the fused cold path stops beating two-pass.
"""

from __future__ import annotations

import os
import time

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.cache import VerifiedModuleCache
from repro.encode.deserializer import decode_module
from repro.encode.serializer import encode_module
from repro.loader import ModuleLoader, load_module
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module


def _best_of(fn, repeats: int, warmup: int = 1) -> float:
    """Minimum wall-clock seconds over ``repeats`` timed runs (same
    estimator as :func:`repro.bench.runner.best_of`, kept local so the
    module imports standalone)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _artifacts(programs) -> list[tuple[str, bool, bytes]]:
    artifacts = []
    for name in programs:
        source = corpus_source(name)
        for optimize in (False, True):
            module = compile_to_module(source, optimize=optimize,
                                       cache=False)
            artifacts.append((name, optimize, encode_module(module)))
    return artifacts


def _check_identical(wire: bytes, module, label: str) -> None:
    if encode_module(module) != wire:
        raise AssertionError(f"{label}: loaded module re-encodes "
                             "differently -- benchmark invalid")


def load_report(programs=None, repeats=None, jobs=None) -> dict:
    """All the numbers behind ``BENCH_load.json``."""
    if repeats is None:
        repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    programs = list(programs or CORPUS_PROGRAMS)
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    artifacts = _artifacts(programs)
    cache = VerifiedModuleCache()  # memory-only: no disk I/O in timings

    rows = []
    totals = {"two_pass": 0.0, "fused_cold": 0.0, "fused_warm": 0.0,
              "warm_jobs": 0.0, "lazy_first_touch": 0.0}
    for name, optimize, wire in artifacts:
        label = f"{name}{'+opt' if optimize else ''}"

        def two_pass():
            verify_module(decode_module(wire))

        def fused_cold():
            load_module(wire, cache=False)

        # publish the boundary index once, then time the warm paths
        warm_loader = ModuleLoader(wire, cache=cache)
        _check_identical(wire, warm_loader.load(), label)
        _check_identical(wire, load_module(wire, cache=False), label)

        def fused_warm():
            loader = ModuleLoader(wire, cache=cache)
            loader.load()
            # the point of the warm path: digest hit, sweeps skipped
            assert loader.cache_hit and not loader.verified

        def warm_jobs():
            loader = ModuleLoader(wire, cache=cache, jobs=jobs)
            loader.load()
            assert loader.cache_hit and not loader.verified

        def lazy_first_touch():
            module = load_module(wire, lazy=True, cache=cache)
            for method in module.functions:
                module.functions[method]
                break

        row = {
            "program": name,
            "optimized": optimize,
            "wire_bytes": len(wire),
            "functions": len(warm_loader.boundaries),
            "two_pass_ms": _best_of(two_pass, repeats) * 1000,
            "fused_cold_ms": _best_of(fused_cold, repeats) * 1000,
            "fused_warm_ms": _best_of(fused_warm, repeats) * 1000,
            "warm_jobs_ms": _best_of(warm_jobs, repeats) * 1000,
            "lazy_first_touch_ms":
                _best_of(lazy_first_touch, repeats) * 1000,
        }
        for key in totals:
            totals[key] += row[f"{key}_ms"]
        rows.append({key: round(value, 4) if isinstance(value, float)
                     else value for key, value in row.items()})

    def ratio(numerator: float, denominator: float):
        return round(numerator / denominator, 3) if denominator else None

    report = {
        "programs": programs,
        "artifacts": len(artifacts),
        "repeats": repeats,
        "jobs": jobs,
        "rows": rows,
        "totals_ms": {key: round(value, 3)
                      for key, value in totals.items()},
        "speedups": {
            "fused_cold_vs_two_pass":
                ratio(totals["two_pass"], totals["fused_cold"]),
            "fused_warm_vs_cold":
                ratio(totals["fused_cold"], totals["fused_warm"]),
            "warm_jobs_vs_warm_serial":
                ratio(totals["fused_warm"], totals["warm_jobs"]),
            "lazy_first_touch_vs_cold":
                ratio(totals["fused_cold"],
                      totals["lazy_first_touch"]),
        },
        "guard": {
            # the contract CI enforces: fusing the verifier into the
            # decoder must not cost more than running it separately
            "fused_cold_le_two_pass":
                totals["fused_cold"] <= totals["two_pass"],
            # asserted inside every timed warm load: digest hit, no
            # residual sweeps re-run
            "warm_skips_verification": True,
        },
    }
    return report


def load_table(report: dict) -> str:
    """Fixed-width rendering of a :func:`load_report` (RESULTS.txt)."""
    lines = [
        f"{'Artifact':20} {'bytes':>7} {'2pass':>8} {'cold':>8} "
        f"{'warm':>8} {'jobs=' + str(report['jobs']):>8} {'lazy1':>8}",
        "-" * 72,
    ]
    for row in report["rows"]:
        label = row["program"] + ("+opt" if row["optimized"] else "")
        lines.append(
            f"{label:20} {row['wire_bytes']:>7} "
            f"{row['two_pass_ms']:>8.2f} {row['fused_cold_ms']:>8.2f} "
            f"{row['fused_warm_ms']:>8.2f} {row['warm_jobs_ms']:>8.2f} "
            f"{row['lazy_first_touch_ms']:>8.2f}")
    totals = report["totals_ms"]
    lines.append("-" * 72)
    lines.append(
        f"{'TOTAL (ms)':20} {'':>7} {totals['two_pass']:>8.2f} "
        f"{totals['fused_cold']:>8.2f} {totals['fused_warm']:>8.2f} "
        f"{totals['warm_jobs']:>8.2f} "
        f"{totals['lazy_first_touch']:>8.2f}")
    speedups = report["speedups"]
    lines.append("")
    lines.append(
        f"fused cold vs two-pass: "
        f"{speedups['fused_cold_vs_two_pass']}x; warm vs cold: "
        f"{speedups['fused_warm_vs_cold']}x; lazy first touch vs cold: "
        f"{speedups['lazy_first_touch_vs_cold']}x")
    return "\n".join(lines)
