"""Disassembly in the paper's notation (Figures 4 and 9).

Where :mod:`repro.ssa.printer` shows the in-memory SSA with global value
ids, this view renders what is actually *transmitted*: every instruction
deposits into the next register of its implied plane, and every operand
is a dominator-relative ``(l-r)`` pair -- ``l`` levels up the dominator
tree, register ``r`` on the instruction's plane there.  Phi operands use
``l = 0`` for the corresponding predecessor block.

Example output::

    B0:
      boolean r0 <- const True
      int     r0 <- const 1
      branch (0-0)
    B2:
      int     r0 <- primitive int.neg (1-0)
      fall
"""

from __future__ import annotations

from typing import Optional

from repro.ssa import ir
from repro.ssa.ir import Block, Function, Instr, Module, Phi
from repro.tsa.layout import FunctionLayout


def _plane_label(plane) -> str:
    if plane is None:
        return ""
    if plane.kind == "prim":
        return str(plane.key)
    if plane.kind == "ref":
        return _short(str(plane.key))
    if plane.kind == "safe":
        return f"safe-{_short(str(plane.key))}"
    return f"safe-index({_short(str(plane.key.type))})"


def _short(name: str) -> str:
    return name.rsplit(".", 1)[-1]


class _Disassembler:
    def __init__(self, function: Function):
        self.function = function
        self.layout = FunctionLayout(function)

    def _ref(self, use_block: Block, operand: Instr) -> str:
        level, register = self.layout.ref_of(use_block, operand)
        return f"({level}-{register})"

    def _phi_ref(self, pred: Block, operand: Instr) -> str:
        level, register = self.layout.phi_ref(pred, operand)
        return f"({level}-{register})"

    def _operands(self, block: Block, instr: Instr) -> str:
        return " ".join(self._ref(block, op) for op in instr.operands)

    def _mnemonic(self, instr: Instr) -> str:
        if isinstance(instr, ir.Prim):
            return f"{instr.opcode} {instr.operation.qualified_name}"
        if isinstance(instr, ir.Call):
            return f"{instr.opcode} {_short(instr.base.name)}" \
                f".{instr.method.name}"
        if isinstance(instr, (ir.GetField, ir.SetField)):
            return f"{instr.opcode} {_short(instr.base.name)}" \
                f".{instr.field.name}"
        if isinstance(instr, (ir.GetStatic, ir.SetStatic)):
            return f"{instr.opcode} " \
                f"{_short(instr.field.declaring.name)}.{instr.field.name}"
        if isinstance(instr, ir.Const):
            return f"const {instr.value!r}"
        if isinstance(instr, ir.Param):
            return f"param {instr.index}"
        if isinstance(instr, (ir.Upcast, ir.InstanceOf)):
            return f"{instr.opcode} {_short(str(instr.target_type))}"
        if isinstance(instr, (ir.NewArray, ir.ArrayLen, ir.GetElt,
                              ir.SetElt)):
            return f"{instr.opcode} {_short(str(instr.array_type))}"
        if isinstance(instr, ir.New):
            return f"new {_short(instr.class_info.name)}"
        if isinstance(instr, ir.NullCheck):
            return f"nullcheck {_short(str(instr.ref_type))}"
        return instr.opcode

    def format(self) -> str:
        lines = [f"method {self.function.name}"]
        width = 18
        for block in self.layout.order:
            lines.append(f"B{block.id}:")
            for phi in block.phis:
                label = _plane_label(phi.plane)
                _, _, register = self.layout.position[phi.id]
                refs = " ".join(
                    self._phi_ref(pred, operand)
                    for operand, (pred, _k) in zip(phi.operands,
                                                   block.preds))
                lines.append(f"  {label:<{width}} r{register} <- "
                             f"phi {refs}")
            for instr in block.instrs:
                operands = self._operands(block, instr)
                mnemonic = self._mnemonic(instr)
                body = f"{mnemonic} {operands}".rstrip()
                if instr.plane is None:
                    lines.append(f"  {'':<{width}} {body}")
                else:
                    label = _plane_label(instr.plane)
                    _, _, register = self.layout.position[instr.id]
                    lines.append(f"  {label:<{width}} r{register} <- "
                                 f"{body}")
            term = block.term
            if term is not None:
                suffix = ""
                if term.value is not None:
                    suffix = " " + self._ref(block, term.value)
                elif term.kind in ("break", "continue"):
                    suffix = f" depth={term.depth}"
                lines.append(f"  {'':<{width}} {term.kind}{suffix}")
        return "\n".join(lines)


def format_function_lr(function: Function) -> str:
    """Disassemble one function in (l-r) notation."""
    return _Disassembler(function).format()


def format_module_lr(module: Module) -> str:
    return "\n\n".join(format_function_lr(f)
                       for f in module.functions.values())
