"""Shared wire-format vocabulary (alphabets and tags)."""

from __future__ import annotations

MAGIC = b"STSA1"

#: instruction opcode alphabet, in wire order
OPCODES = (
    "const", "param", "primitive", "xprimitive", "refcmp",
    "nullcheck", "idxcheck", "upcast", "downcast",
    "getfield", "setfield", "getstatic", "setstatic",
    "getelt", "setelt", "arraylen",
    "new", "newarray", "instanceof",
    "xcall", "xdispatch", "caughtexc",
)
OPCODE_INDEX = {name: i for i, name in enumerate(OPCODES)}

#: CST region symbols (phase 1)
REGIONS = ("basic", "seq", "if", "ifelse", "while", "dowhile", "loop",
           "labeled", "try")
REGION_INDEX = {name: i for i, name in enumerate(REGIONS)}

#: leaf terminator kinds (structural, phase 1)
TERM_KINDS = ("fall", "return", "throw", "break", "continue", "unreachable")
TERM_INDEX = {name: i for i, name in enumerate(TERM_KINDS)}

#: the six primitive base types eligible for primitive/xprimitive
#: (indices into TypeTable PRIMITIVE_ORDER, excluding void)
PRIMITIVE_BASES = 6
