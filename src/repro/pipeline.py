"""Compilation pipeline: source text to SafeTSA module (and the bytecode
baseline).

These are the historical convenience entry points; the machinery lives
in :mod:`repro.driver`.  Each call builds a one-shot
:class:`~repro.driver.session.CompilationSession`, which owns the front
end, the pass manager, the shared analysis cache, and the compilation
cache.  Hold a session yourself when compiling the same source more
than one way (SafeTSA + bytecode baseline share a parse) or when you
want pass reports and analysis-cache statistics.
"""

from __future__ import annotations

from repro.driver.session import (
    CompilationSession,
    _intern_type,
    _intern_used_types,
)
from repro.ssa.ir import Module

#: Producer-pipeline flag defaults; the compilation-cache key covers
#: exactly these, so cache writers and readers must agree on them.
#: ``optimize``/``passes`` jointly resolve to a canonical pipeline-spec
#: string (see :func:`repro.driver.passes.effective_passes`), which is
#: what the key actually hashes.
PIPELINE_FLAG_DEFAULTS = {
    "optimize": False, "passes": None,
    "prune_phis": True, "eager_phis": True}


def pipeline_cache_key(cache, source: str, **flags) -> str:
    """The cache key :func:`compile_to_module` uses for this compile.

    Unknown flag names raise ``TypeError``: a misspelled flag
    (``optimise=True``) would otherwise silently hash into a key no
    compile ever writes, turning every lookup into a miss.
    """
    unknown = sorted(set(flags) - set(PIPELINE_FLAG_DEFAULTS))
    if unknown:
        raise TypeError(
            f"unknown pipeline flag(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(PIPELINE_FLAG_DEFAULTS))}")
    from repro.driver.passes import effective_passes, spec_string
    merged = dict(PIPELINE_FLAG_DEFAULTS)
    merged.update(flags)
    spec = spec_string(effective_passes(merged["optimize"],
                                        merged["passes"]))
    return cache.key(source, passes=spec,
                     prune_phis=merged["prune_phis"],
                     eager_phis=merged["eager_phis"])


def compile_to_module(source: str, *, optimize: bool = False,
                      passes=None, prune_phis: bool = True,
                      eager_phis: bool = True,
                      filename: str = "<source>",
                      cache=None, stage_seconds=None,
                      jobs=None) -> Module:
    """Full producer pipeline: parse, check, lower, build SSA, optimise.

    ``passes`` is an optional pipeline spec (a comma-separated string or
    an iterable of pass names, see :func:`repro.driver.passes.
    parse_pass_spec`) and overrides ``optimize`` when given.

    ``cache`` is an optional :class:`repro.cache.CompilationCache` (pass
    ``False`` to force a cold compile even when a process-wide default
    cache is enabled).  On a hit the producer pipeline is skipped
    entirely and the cached wire bytes are decoded -- the cheap,
    self-validating consumer path.

    ``stage_seconds`` is an optional mutable mapping; wall-clock seconds
    for the ``parse``, ``ssa`` and ``opt`` stages (and ``load`` on a
    cache hit -- the fused-loader consumer path) are accumulated into
    it.

    ``jobs`` fans per-function optimisation out across a thread pool
    (None/1 serial, 0 one worker per CPU); the result is
    instruction-identical to a serial compile.
    """
    session = CompilationSession(
        optimize=optimize, passes=passes, prune_phis=prune_phis,
        eager_phis=eager_phis, filename=filename, cache=cache,
        jobs=jobs)
    module = session.compile(source)
    if stage_seconds is not None:
        for stage, seconds in session.stage_seconds.items():
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds
    return module


def compile_to_classfiles(source: str, *, filename: str = "<source>"):
    """Baseline pipeline: parse, check, lower, emit stack bytecode."""
    session = CompilationSession(filename=filename, cache=False)
    return session.compile_to_classfiles(source)
