"""Tests for the measurement harness itself (tables, metrics, runner)."""

import json

import pytest

from repro.bench.metrics import (
    ClassMetrics,
    corpus_compile_jobs,
    measure_corpus,
    measure_program,
    warm_cache,
)
from repro.bench.tables import (
    _fmt_delta,
    ablation_table,
    figure5_table,
    figure6_table,
    phi_pruning_table,
)


class TestFormatting:
    def test_delta_formatting(self):
        assert _fmt_delta(100, 50) == "-50%"
        assert _fmt_delta(100, 100) == "+0%"
        assert _fmt_delta(100, 138) == "+38%"
        assert _fmt_delta(0, 5) == "N/A"

    def test_delta_pct_on_metrics(self):
        row = ClassMetrics("P", "C")
        assert row.delta_pct(0, 3) is None
        assert row.delta_pct(10, 7) == -30


class TestMeasurement:
    @pytest.fixture(scope="class")
    def rows(self):
        source = """
        class Pair {
            int a; int b;
            Pair(int a, int b) { this.a = a; this.b = b; }
            int total() { return a + b + a + b; }
            static int run(Pair p) { return p.total() + p.total(); }
        }
        """
        return measure_program("inline", source)

    def test_row_per_class(self, rows):
        assert [row.class_name for row in rows] == ["Pair"]

    def test_all_columns_populated(self, rows):
        row = rows[0]
        assert row.bytecode_size > 0
        assert row.tsa_size > 0
        assert row.tsa_opt_size > 0
        assert row.bytecode_insns > 0
        assert row.tsa_insns > 0
        assert row.tsa_opt_insns <= row.tsa_insns
        assert row.nullchecks_after <= row.nullchecks_before

    def test_tables_render(self, rows):
        for text in (figure5_table(rows), figure6_table(rows)):
            assert "Pair" in text
            assert "TOTAL" in text

    def test_other_tables_render(self):
        pruning = phi_pruning_table([("P", 10, 7)])
        assert "-30%" in pruning
        ablation = ablation_table([("P", {"none": 10, "constprop": 9,
                                          "cse": 8, "dce": 9, "all": 7})])
        assert "P" in ablation


class TestCachedMeasurement:
    def test_warm_cache_then_measure_matches_cold(self):
        from repro.cache import CompilationCache
        cache = CompilationCache()
        programs = ["BitSieve"]
        compiled = warm_cache(cache, corpus_compile_jobs(programs))
        assert compiled == 2  # plain + optimised
        assert warm_cache(cache, corpus_compile_jobs(programs)) == 0
        warm = measure_corpus(programs, cache=cache)
        cold = measure_corpus(programs, cache=False)
        assert [row.as_dict() for row in warm] \
            == [row.as_dict() for row in cold]
        assert cache.hits > 0


class TestRunnerCommands:
    def test_command_inventory(self):
        from repro.bench.runner import COMMANDS
        assert set(COMMANDS) == {"figure5", "figure6", "pruning",
                                 "ablation", "verifycost", "jitspeed"}

    def test_unknown_command_prints_usage(self, capsys):
        from repro.bench.runner import main
        assert main(["nope"]) == 2
        assert "figure5" in capsys.readouterr().out

    def test_best_of_takes_minimum_and_warms_up(self, monkeypatch):
        from repro.bench import runner
        calls = []
        ticks = iter(range(100))
        monkeypatch.setattr(runner.time, "perf_counter",
                            lambda: next(ticks))
        seconds = runner.best_of(lambda: calls.append(1), repeats=3,
                                 warmup=2)
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert seconds == 1  # consecutive fake ticks
        monkeypatch.setenv("REPRO_BENCH_REPEATS", "1")
        calls.clear()
        runner.best_of(lambda: calls.append(1))
        assert len(calls) == 2  # 1 warmup + 1 timed via the env default

    def test_codec_command_writes_report(self, tmp_path, capsys,
                                         monkeypatch):
        from repro.bench.runner import main
        monkeypatch.setenv("REPRO_BENCH_REPEATS", "1")
        output = tmp_path / "BENCH_codec.json"
        assert main(["codec", "--smoke", "--output", str(output)]) == 0
        assert "codec benchmark" in capsys.readouterr().out
        report = json.loads(output.read_text())
        codec = report["codec"]
        assert codec["trace_ops"] > 0
        assert codec["encode_mbps"] > 0 and codec["decode_mbps"] > 0
        assert codec["speedup_vs_reference"] == \
            codec["combined_speedup"]
        stages = report["module_path"]["stage_seconds"]
        assert {"parse", "ssa", "opt", "encode", "decode",
                "verify"} <= set(stages)
        cache = report["cache"]
        assert cache["corpus_compiles"] == 6
        assert 0 < cache["hit_rate"] <= 1
        assert cache["warm_seconds"] >= 0
