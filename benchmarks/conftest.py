"""Shared fixtures for the benchmark harness.

Each ``test_*`` module regenerates one of the paper's tables/figures
(see DESIGN.md's experiment index).  The pytest-benchmark timings measure
the toolchain stages themselves; the table *contents* are printed and
asserted against the paper's qualitative shape.
"""

from __future__ import annotations

import pytest

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.bench.metrics import measure_corpus


@pytest.fixture(scope="session")
def corpus_rows():
    """Per-class metrics for the whole corpus (computed once)."""
    return measure_corpus()


@pytest.fixture(scope="session")
def corpus_sources():
    return {name: corpus_source(name) for name in CORPUS_PROGRAMS}


def totals(rows, *keys):
    return {key: sum(getattr(row, key) for row in rows) for key in keys}
