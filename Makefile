# Convenience targets for the SafeTSA reproduction.

PYTHON ?= python3

# Targets work from a bare checkout too (no editable install needed).
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test test-unit test-campaign bench bench-smoke bench-analysis \
	bench-pipeline bench-load bench-loops bench-wire bench-serve \
	bench-trace fuzz-smoke serve-smoke lint-corpus tables examples \
	all clean

test:
	$(PYTHON) -m pytest tests/ -q

# Fast lane: everything except the corpus/campaign tests (the `slow`
# marker); this is what CI's unit shard runs on every matrix entry.
test-unit:
	$(PYTHON) -m pytest tests/ -q -m "not slow"

# Campaign lane: only the long-running mutation campaigns and corpus
# sweeps. test-unit + test-campaign together cover the full suite.
test-campaign:
	$(PYTHON) -m pytest tests/ -q -m slow

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Small codec + cache throughput run; writes BENCH_codec.json (CI runs
# this after the test suite).
bench-smoke:
	$(PYTHON) -m repro.bench.runner codec --smoke

# Verify + lint cost over a corpus subset; writes BENCH_analysis.json.
bench-analysis:
	$(PYTHON) -m repro.bench.runner analysis --smoke

# Pass-pipeline benchmark: shared-analysis reuse, per-pass timing, and
# the parallel fan-out determinism check; writes BENCH_pipeline.json.
bench-pipeline:
	$(PYTHON) -m repro.bench.runner pipeline --smoke

# Consumer-side load cost: two-pass decode+verify vs the fused
# loader's cold/warm/parallel/lazy paths; writes BENCH_load.json and
# fails if the fused cold path stops beating the two-pass baseline.
bench-load:
	$(PYTHON) -m repro.bench.runner load --smoke

# Loop-tier benchmark: dynamic check counts per pipeline over the
# loop-heavy corpus; writes BENCH_loops.json and fails unless the loop
# tier (hoist_checks,licm) strictly reduces executed checks.
bench-loops:
	$(PYTHON) -m repro.bench.runner loops --smoke

# Wire-format v2 distribution benchmark: shared-dictionary and delta
# shipping ratios plus streaming vs eager time-to-first-execute on a
# simulated link; writes BENCH_wire.json and fails if any of the three
# guards regress.
bench-wire:
	$(PYTHON) -m repro.bench.runner wire --smoke

# Distribution-service benchmark: sustained req/s and p50/p99 latency
# over a live server plus a compile-coalescing fan-in; writes
# BENCH_serve.json and fails if coalescing stops collapsing identical
# in-flight compiles or coalesced bytes diverge.
bench-serve:
	$(PYTHON) -m repro.bench.runner serve --smoke

# Trace-tier benchmark: speculative trace execution vs the untraced
# interpreter on the loop-heavy corpus (warm trace cache), plus the
# guard-abort/blacklist path and the dispatch micro-opt baseline;
# writes BENCH_trace.json and fails if traced execution stops beating
# untraced (geomean) or abort overhead escapes the blacklist bound.
bench-trace:
	$(PYTHON) -m repro.bench.runner trace --smoke

# Deterministic fuzzing smoke: differential oracle over generated
# programs + wire-stream mutation under a fixed seed (~30 s); writes
# BENCH_fuzz.json and fails on any reject-or-equivalent violation.
fuzz-smoke:
	$(PYTHON) -m repro.bench.runner fuzz --smoke

# End-to-end serving smoke against a live HTTP server: full
# compile/publish/fetch/verify/run lifecycle, hostile-stream
# rejection, and rate-limit enforcement (~5 s).
serve-smoke:
	$(PYTHON) -m repro.serve.smoke

# Lint every corpus program with the structured-diagnostics driver;
# a non-zero exit (any error-severity diagnostic) fails the build.
lint-corpus:
	@set -e; for f in src/repro/bench/corpus/*.java; do \
		echo "== $$f"; $(PYTHON) -m repro.cli lint $$f; \
	done

tables:
	$(PYTHON) -m repro.bench.runner all

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

all: test bench tables

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +; rm -rf .pytest_cache .hypothesis
