"""Host runtime: native library methods, statics, and Java formatting.

The natives implement exactly the builtin ("imported") classes declared in
:mod:`repro.typesys.world`.  Both interpreters share this runtime so their
observable behaviour is identical.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro import jmath
from repro.typesys.types import BOOLEAN, CHAR
from repro.interp.heap import (
    ArrayRef,
    JavaError,
    JStr,
    ObjectRef,
    default_value,
)
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World


def format_double(value: float) -> str:
    """Format a double the way ``Double.toString`` does (approximation).

    Java: values in [1e-3, 1e7) print decimally, others in scientific
    ``dE+n`` notation; integral doubles keep a trailing ``.0``.
    """
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == 0.0:
        return "-0.0" if math.copysign(1.0, value) < 0 else "0.0"
    magnitude = abs(value)
    if 1e-3 <= magnitude < 1e7:
        text = repr(value)
        if "e" in text or "E" in text:
            # repr switched to scientific although Java would not
            decimals = f"{value:.17f}".rstrip("0")
            if decimals.endswith("."):
                decimals += "0"
            return decimals
        if "." not in text:
            text += ".0"
        return text
    mantissa, _, exponent = f"{value:e}".partition("e")
    # recompute the shortest mantissa from repr
    text = repr(value)
    if "e" in text:
        mantissa, _, exponent = text.partition("e")
    else:
        exp = int(exponent)
        mantissa = repr(value / (10.0 ** exp))
        exponent = str(exp)
    if "." not in mantissa:
        mantissa += ".0"
    return f"{mantissa}E{int(exponent)}"


class JChar(int):
    """An int tagged as a Java char for display purposes.

    SafeTSA keeps chars on their own register plane; at the native-call
    boundary the runtime tags char-typed arguments so println/valueOf can
    format them as characters rather than code points.
    """

    __slots__ = ()


def format_value(value, world: Optional[World] = None) -> str:
    """String conversion used by println/valueOf for non-object types."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, JChar):
        return chr(value & 0xFFFF)
    if isinstance(value, float):
        return format_double(value)
    if isinstance(value, JStr):
        return value.value
    if value is None:
        return "null"
    return str(value)


class Runtime:
    """Statics, stdout, and the native-method table for one execution."""

    def __init__(self, world: World):
        self.world = world
        self.stdout: list[str] = []
        self.statics: dict[tuple[str, str], object] = {}
        self._print_stream = ObjectRef(world.require("java.io.PrintStream"))
        self._natives = _build_native_table()
        #: callback into the interpreter for re-entrant virtual calls
        #: (e.g. String.valueOf(Object) invoking a user toString)
        self.invoke_virtual: Optional[Callable] = None
        self.time_counter = 0

    # ------------------------------------------------------------------
    # statics

    def get_static(self, field: FieldInfo):
        key = (field.declaring.name, field.name)
        if key == ("java.lang.System", "out"):
            return self._print_stream
        if key not in self.statics:
            if field.const_value is not None:
                return field.const_value
            self.statics[key] = default_value(field.type)
        return self.statics[key]

    def set_static(self, field: FieldInfo, value) -> None:
        self.statics[(field.declaring.name, field.name)] = value

    # ------------------------------------------------------------------
    # exceptions

    def throw(self, class_name: str, message: Optional[str] = None):
        info = self.world.require(class_name)
        exc = ObjectRef(info)
        if message is not None:
            field = info.find_field("message")
            if field is not None:
                exc.fields[field.slot] = JStr(message)
        raise JavaError(exc)

    # ------------------------------------------------------------------
    # natives

    def invoke_native(self, method: MethodInfo, args: list):
        if CHAR in method.param_types or BOOLEAN in method.param_types:
            offset = 0 if method.is_static else 1
            args = list(args)
            for i, param in enumerate(method.param_types):
                if param is CHAR:
                    args[offset + i] = JChar(args[offset + i])
                elif param is BOOLEAN:
                    # bytecode materialises booleans as ints 0/1
                    args[offset + i] = bool(args[offset + i])
        key = (method.declaring.name, method.name, len(method.param_types),
               tuple(str(t) for t in method.param_types))
        handler = self._natives.get(key)
        if handler is None:
            # fall back to a name/arity match (covers overload tables)
            handler = self._natives.get(
                (method.declaring.name, method.name, len(method.param_types),
                 None))
        if handler is None:
            raise NotImplementedError(
                f"native method {method.qualified_name} is not implemented")
        return handler(self, args)

    def to_string(self, value) -> str:
        """Virtual toString used by valueOf(Object)/println(Object)."""
        if value is None:
            return "null"
        if isinstance(value, JStr):
            return value.value
        if isinstance(value, ArrayRef):
            return f"[{value.array_type.element}@{value.serial}"
        if isinstance(value, ObjectRef):
            if self.invoke_virtual is not None:
                to_string = _find_method(self.world, "java.lang.Object",
                                         "toString")
                result = self.invoke_virtual(value, to_string)
                return result.value if isinstance(result, JStr) else "null"
            return f"{value.class_info.name}@{value.serial}"
        return format_value(value)


def _find_method(world: World, class_name: str, method_name: str) -> MethodInfo:
    for method in world.require(class_name).methods:
        if method.name == method_name:
            return method
    raise KeyError(f"{class_name}.{method_name}")


def _string_index(runtime: Runtime, text: str, index: int) -> int:
    if not 0 <= index < len(text):
        runtime.throw("java.lang.ArrayIndexOutOfBoundsException",
                      f"String index out of range: {index}")
    return index


def _message_of(runtime: Runtime, obj: ObjectRef):
    field = obj.class_info.find_field("message")
    if field is None:
        return None
    return obj.fields[field.slot]


def _default_to_string(runtime: Runtime, obj) -> JStr:
    if isinstance(obj, JStr):
        return obj
    if isinstance(obj, ObjectRef):
        info = obj.class_info
        if info.is_subclass_of(runtime.world.require("java.lang.Throwable")):
            message = _message_of(runtime, obj)
            if isinstance(message, JStr):
                return JStr(f"{info.name}: {message.value}")
            return JStr(info.name)
        return JStr(f"{info.name}@{obj.serial}")
    return JStr(format_value(obj))


def _build_native_table() -> dict:
    table: dict = {}

    def native(class_name, method_name, arity, sig=None):
        def register(fn):
            table[(class_name, method_name, arity, sig)] = fn
            return fn
        return register

    # -- java.lang.Object ------------------------------------------------
    @native("java.lang.Object", "<init>", 0)
    def object_init(rt, args):
        return None

    @native("java.lang.Object", "toString", 0)
    def object_to_string(rt, args):
        return _default_to_string(rt, args[0])

    @native("java.lang.Object", "equals", 1)
    def object_equals(rt, args):
        return args[0] is args[1]

    @native("java.lang.Object", "hashCode", 0)
    def object_hash(rt, args):
        receiver = args[0]
        if isinstance(receiver, JStr):
            return _string_hash(receiver.value)
        return jmath.i32(receiver.serial * 31)

    # -- java.lang.String ------------------------------------------------
    def string_arg(rt, value) -> str:
        if value is None:
            rt.throw("java.lang.NullPointerException")
        return value.value

    @native("java.lang.String", "length", 0)
    def string_length(rt, args):
        return len(string_arg(rt, args[0]))

    @native("java.lang.String", "charAt", 1)
    def string_char_at(rt, args):
        text = string_arg(rt, args[0])
        return ord(text[_string_index(rt, text, args[1])])

    @native("java.lang.String", "equals", 1)
    def string_equals(rt, args):
        other = args[1]
        return isinstance(other, JStr) \
            and other.value == string_arg(rt, args[0])

    @native("java.lang.String", "compareTo", 1)
    def string_compare(rt, args):
        left = string_arg(rt, args[0])
        right = string_arg(rt, args[1])
        if left == right:
            return 0
        # Java compares char by char, then by length
        for a, b in zip(left, right):
            if a != b:
                return ord(a) - ord(b)
        return len(left) - len(right)

    @native("java.lang.String", "concat", 1)
    def string_concat(rt, args):
        return JStr(string_arg(rt, args[0]) + string_arg(rt, args[1]))

    @native("java.lang.String", "substring", 2)
    def string_substring(rt, args):
        text = string_arg(rt, args[0])
        begin, end = args[1], args[2]
        if begin < 0 or end > len(text) or begin > end:
            rt.throw("java.lang.ArrayIndexOutOfBoundsException",
                     f"begin {begin}, end {end}, length {len(text)}")
        return JStr(text[begin:end])

    @native("java.lang.String", "substring", 1)
    def string_substring_tail(rt, args):
        text = string_arg(rt, args[0])
        begin = args[1]
        if begin < 0 or begin > len(text):
            rt.throw("java.lang.ArrayIndexOutOfBoundsException",
                     f"begin {begin}, length {len(text)}")
        return JStr(text[begin:])

    @native("java.lang.String", "indexOf", 1)
    def string_index_of(rt, args):
        return string_arg(rt, args[0]).find(string_arg(rt, args[1]))

    @native("java.lang.String", "startsWith", 1)
    def string_starts(rt, args):
        return string_arg(rt, args[0]).startswith(string_arg(rt, args[1]))

    @native("java.lang.String", "endsWith", 1)
    def string_ends(rt, args):
        return string_arg(rt, args[0]).endswith(string_arg(rt, args[1]))

    @native("java.lang.String", "trim", 0)
    def string_trim(rt, args):
        return JStr(string_arg(rt, args[0]).strip())

    @native("java.lang.String", "toString", 0)
    def string_to_string(rt, args):
        return args[0]

    @native("java.lang.String", "hashCode", 0)
    def string_hash(rt, args):
        return _string_hash(string_arg(rt, args[0]))

    @native("java.lang.String", "valueOf", 1)
    def string_value_of(rt, args):
        value = args[0]
        if isinstance(value, (ObjectRef, ArrayRef)) or value is None \
                or isinstance(value, JStr):
            return JStr(rt.to_string(value))
        return JStr(format_value(value))

    # -- StringBuilder ----------------------------------------------------
    @native("java.lang.StringBuilder", "<init>", 0)
    def sb_init(rt, args):
        args[0].fields = [""]  # raw python string buffer
        return None

    @native("java.lang.StringBuilder", "append", 1)
    def sb_append(rt, args):
        receiver, value = args
        if isinstance(value, (ObjectRef, ArrayRef)) or value is None \
                or isinstance(value, JStr):
            text = rt.to_string(value)
        else:
            text = format_value(value)
        receiver.fields[0] += text
        return receiver

    @native("java.lang.StringBuilder", "toString", 0)
    def sb_to_string(rt, args):
        return JStr(args[0].fields[0])

    @native("java.lang.StringBuilder", "length", 0)
    def sb_length(rt, args):
        return len(args[0].fields[0])

    # -- PrintStream -------------------------------------------------------
    def print_text(rt, value) -> str:
        if isinstance(value, (ObjectRef, ArrayRef)) or value is None \
                or isinstance(value, JStr):
            return rt.to_string(value)
        return format_value(value)

    @native("java.io.PrintStream", "println", 0)
    def println_empty(rt, args):
        rt.stdout.append("\n")
        return None

    @native("java.io.PrintStream", "println", 1)
    def println(rt, args):
        rt.stdout.append(print_text(rt, args[1]) + "\n")
        return None

    @native("java.io.PrintStream", "print", 1)
    def print_(rt, args):
        rt.stdout.append(print_text(rt, args[1]))
        return None

    # -- System -------------------------------------------------------------
    @native("java.lang.System", "currentTimeMillis", 0)
    def current_time(rt, args):
        rt.time_counter += 1
        return rt.time_counter

    # -- Math -----------------------------------------------------------------
    @native("java.lang.Math", "sqrt", 1)
    def math_sqrt(rt, args):
        value = args[0]
        return math.nan if value < 0 else math.sqrt(value)

    @native("java.lang.Math", "pow", 2)
    def math_pow(rt, args):
        try:
            return math.pow(args[0], args[1])
        except (OverflowError, ValueError):
            return math.nan

    @native("java.lang.Math", "floor", 1)
    def math_floor(rt, args):
        value = args[0]
        if math.isnan(value) or math.isinf(value):
            return value
        return float(math.floor(value))

    @native("java.lang.Math", "ceil", 1)
    def math_ceil(rt, args):
        value = args[0]
        if math.isnan(value) or math.isinf(value):
            return value
        return float(math.ceil(value))

    @native("java.lang.Math", "abs", 1)
    def math_abs(rt, args):
        value = args[0]
        if isinstance(value, float):
            return abs(value)
        if value == jmath.INT_MIN:
            return value  # Java Math.abs(MIN_VALUE) wraps
        if value == jmath.LONG_MIN:
            return value
        return abs(value)

    @native("java.lang.Math", "min", 2)
    def math_min(rt, args):
        a, b = args
        if isinstance(a, float) and (math.isnan(a) or math.isnan(b)):
            return math.nan
        return min(a, b)

    @native("java.lang.Math", "max", 2)
    def math_max(rt, args):
        a, b = args
        if isinstance(a, float) and (math.isnan(a) or math.isnan(b)):
            return math.nan
        return max(a, b)

    # -- Integer / Long -------------------------------------------------------
    @native("java.lang.Integer", "toString", 1)
    def int_to_string(rt, args):
        return JStr(str(args[0]))

    @native("java.lang.Integer", "parseInt", 1)
    def parse_int(rt, args):
        text = args[0]
        if text is None:
            rt.throw("java.lang.NullPointerException")
        try:
            value = int(text.value.strip())
        except ValueError:
            rt.throw("java.lang.IllegalArgumentException",
                     f'For input string: "{text.value}"')
        if not jmath.INT_MIN <= value <= jmath.INT_MAX:
            rt.throw("java.lang.IllegalArgumentException",
                     f'For input string: "{text.value}"')
        return value

    @native("java.lang.Integer", "bitCount", 1)
    def bit_count(rt, args):
        return bin(args[0] & 0xFFFFFFFF).count("1")

    @native("java.lang.Integer", "numberOfLeadingZeros", 1)
    def nlz(rt, args):
        value = args[0] & 0xFFFFFFFF
        if value == 0:
            return 32
        return 32 - value.bit_length()

    @native("java.lang.Integer", "numberOfTrailingZeros", 1)
    def ntz(rt, args):
        value = args[0] & 0xFFFFFFFF
        if value == 0:
            return 32
        return (value & -value).bit_length() - 1

    @native("java.lang.Long", "toString", 1)
    def long_to_string(rt, args):
        return JStr(str(args[0]))

    # -- Character ---------------------------------------------------------------
    @native("java.lang.Character", "isDigit", 1)
    def is_digit(rt, args):
        return chr(args[0]).isdigit()

    @native("java.lang.Character", "isLetter", 1)
    def is_letter(rt, args):
        return chr(args[0]).isalpha()

    @native("java.lang.Character", "isWhitespace", 1)
    def is_whitespace(rt, args):
        return chr(args[0]).isspace()

    @native("java.lang.Character", "isLetterOrDigit", 1)
    def is_letter_or_digit(rt, args):
        ch = chr(args[0])
        return ch.isalpha() or ch.isdigit()

    # -- Throwable hierarchy -----------------------------------------------------
    def throwable_init0(rt, args):
        return None

    def throwable_init1(rt, args):
        obj, message = args
        field = obj.class_info.find_field("message")
        if field is not None:
            obj.fields[field.slot] = message
        return None

    for cls in ("java.lang.Throwable", "java.lang.Exception",
                "java.lang.RuntimeException", "java.lang.Error",
                "java.lang.NullPointerException",
                "java.lang.ArithmeticException",
                "java.lang.ArrayIndexOutOfBoundsException",
                "java.lang.ClassCastException",
                "java.lang.NegativeArraySizeException",
                "java.lang.IllegalArgumentException",
                "java.lang.IllegalStateException"):
        table[(cls, "<init>", 0, None)] = throwable_init0
        table[(cls, "<init>", 1, None)] = throwable_init1

    @native("java.lang.Throwable", "getMessage", 0)
    def get_message(rt, args):
        return _message_of(rt, args[0])

    @native("java.lang.Throwable", "toString", 0)
    def throwable_to_string(rt, args):
        return _default_to_string(rt, args[0])

    return table


def _string_hash(text: str) -> int:
    value = 0
    for ch in text:
        value = jmath.i32(value * 31 + ord(ch))
    return value
