"""The benchmark corpus.

The paper measures classes from the Sun JDK (``sun.tools.javac``,
``sun.tools.java``, ``sun.math``) plus Linpack.  Those sources are
proprietary, so this corpus contains programs of matching character
(see DESIGN.md, "Substitutions"):

=================  ====================================================
program            stands in for
=================  ====================================================
Scanner            sun.tools.java.Scanner (lexing, char tests, switch)
Parser             sun.tools.java.Parser (recursive descent, AST)
Environment        sun.tools.javac.BatchEnvironment (symbol tables)
BigInt             sun.math.BigInteger (limb arrays, carries)
MutableBigInt      sun.math.MutableBigInteger (in-place limb updates)
BigDecimalLite     sun.math.BigDecimal (scaled arithmetic, rounding)
BinaryCode         sun.tools.java.BinaryCode (stream decoding, try/catch)
BitSieve           sun.math.BitSieve (bit manipulation)
MiniVM             the "java" interpreter classes (switch dispatch loop)
Linpack            Linpack (dgefa/dgesl/daxpy, the array-check case)
=================  ====================================================

Every program has a deterministic ``main`` whose output is pinned by the
test suite and compared across the SafeTSA interpreter, the optimised
module, the decoded module and the bytecode interpreter.
"""

from __future__ import annotations

from pathlib import Path

_CORPUS_DIR = Path(__file__).parent / "corpus"

#: program name -> main class name (the file stem)
CORPUS_PROGRAMS = (
    "Scanner",
    "Parser",
    "Environment",
    "BinaryCode",
    "BigInt",
    "MutableBigInt",
    "BigDecimalLite",
    "BitSieve",
    "MiniVM",
    "Linpack",
)


def corpus_names() -> tuple[str, ...]:
    return CORPUS_PROGRAMS


def corpus_source(name: str) -> str:
    """The MiniJava++ source text of a corpus program."""
    path = _CORPUS_DIR / f"{name}.java"
    if not path.exists():
        raise KeyError(f"no corpus program {name!r}")
    return path.read_text()


def corpus_sources() -> dict[str, str]:
    return {name: corpus_source(name) for name in CORPUS_PROGRAMS}
