"""The unified compile path: session, pass manager, analysis cache.

``repro.driver`` is the home of the machinery every entry point now
shares:

* :class:`~repro.driver.session.CompilationSession` -- owns the front
  end, the compilation cache, stage timing, and diagnostics for one
  compilation configuration;
* :class:`~repro.driver.manager.PassManager` -- runs a declarative
  pipeline spec (``"constprop,safephi,cse_fields,dce,cleanup"``) over
  functions, producing structured
  :class:`~repro.driver.report.PassReport` timing/statistics;
* :class:`~repro.analysis.manager.AnalysisManager` (re-exported) --
  per-function cache of dataflow results, invalidated by each pass's
  ``preserves`` declaration.

The legacy surfaces (:func:`repro.pipeline.compile_to_module`,
:func:`repro.opt.pipeline.optimize_function`, ...) remain as thin
wrappers over these classes.
"""

from repro.analysis.manager import ANALYSES, AnalysisManager, \
    register_analysis
from repro.driver.manager import PassManager
from repro.driver.passes import (
    ALL_PASSES,
    CANONICAL_SPEC,
    DEFAULT_PASSES,
    PASS_REGISTRY,
    Pass,
    PassCheckError,
    STEP_FUNCTIONS,
    effective_passes,
    parse_pass_spec,
    register_pass,
    spec_string,
)
from repro.driver.report import PassReport, merge_stats
from repro.driver.session import CompilationSession

__all__ = [
    "ALL_PASSES",
    "ANALYSES",
    "AnalysisManager",
    "CANONICAL_SPEC",
    "CompilationSession",
    "DEFAULT_PASSES",
    "PASS_REGISTRY",
    "Pass",
    "PassCheckError",
    "PassManager",
    "PassReport",
    "STEP_FUNCTIONS",
    "effective_passes",
    "merge_stats",
    "parse_pass_spec",
    "register_analysis",
    "register_pass",
    "spec_string",
]
