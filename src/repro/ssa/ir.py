"""The SafeTSA instruction set and its in-memory SSA representation.

Every instruction produces at most one value, deposited on the *register
plane* selected implicitly by the instruction and its type operands
(paper Section 3: type separation).  Operands are direct references to the
producing instructions; the wire format's ``(l, r)`` numbering is computed
by :mod:`repro.tsa.layout`.

Planes
------

* ``('prim', T)`` -- one plane per primitive type;
* ``('ref', T)``  -- one plane per reference type (classes and arrays);
* ``('safe', T)`` -- the matching null-checked plane of a reference type;
* ``('safeidx', a)`` -- the in-bounds index plane of the *array value* ``a``
  (Appendix A: safe-index types are bound to array values, not array types).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.typesys.ops import Operation
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    ClassType,
    INT,
    PrimitiveType,
    Type,
    VOID,
)
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World

THROWABLE = ClassType("java.lang.Throwable")


class Plane:
    """A register plane: the implicit destination/source file of a type."""

    __slots__ = ("kind", "key")

    def __init__(self, kind: str, key: object):
        self.kind = kind  # 'prim' | 'ref' | 'safe' | 'safeidx'
        self.key = key

    # -- constructors ---------------------------------------------------

    @staticmethod
    def of_type(type: Type) -> "Plane":
        if isinstance(type, PrimitiveType):
            return Plane("prim", type)
        return Plane("ref", type)

    @staticmethod
    def safe(type: Type) -> "Plane":
        return Plane("safe", type)

    @staticmethod
    def safe_index(array_value: "Instr") -> "Plane":
        return Plane("safeidx", array_value)

    # -- structure ------------------------------------------------------

    @property
    def type(self) -> Optional[Type]:
        return self.key if self.kind != "safeidx" else INT

    def is_safe_ref(self) -> bool:
        return self.kind == "safe"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Plane) and other.kind == self.kind
                and (other.key is self.key or other.key == self.key))

    def __hash__(self) -> int:
        if self.kind == "safeidx":
            return hash((self.kind, id(self.key)))
        return hash((self.kind, self.key))

    def __str__(self) -> str:
        if self.kind == "prim":
            return str(self.key)
        if self.kind == "ref":
            return f"ref:{self.key}"
        if self.kind == "safe":
            return f"safe:{self.key}"
        return f"safeidx:v{self.key.id}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<plane {self}>"


_instr_ids = itertools.count(1)


class Instr:
    """Base class of all SafeTSA instructions."""

    #: wire opcode mnemonic; subclasses override
    opcode = "?"
    #: True when the instruction may raise (must be an x-instruction)
    traps = False

    __slots__ = ("id", "block", "operands", "users", "plane")

    def __init__(self, plane: Optional[Plane], operands: Iterable["Instr"]):
        self.id = next(_instr_ids)
        self.block: Optional["Block"] = None
        self.operands: list[Instr] = []
        self.users: set[Instr] = set()
        self.plane = plane
        for operand in operands:
            self.add_operand(operand)

    # -- operand management ----------------------------------------------

    def add_operand(self, value: "Instr") -> None:
        self.operands.append(value)
        value.users.add(self)

    def set_operand(self, index: int, value: "Instr") -> None:
        old = self.operands[index]
        self.operands[index] = value
        if old not in self.operands:
            old.users.discard(self)
        value.users.add(self)

    def replace_all_uses(self, replacement: "Instr") -> None:
        """Rewrite every user (terminators included) to ``replacement``."""
        for user in list(self.users):
            for i, operand in enumerate(user.operands):
                if operand is self:
                    user.set_operand(i, replacement)

    def drop_operands(self) -> None:
        for operand in self.operands:
            operand.users.discard(self)
        self.operands = []

    # -- queries ----------------------------------------------------------

    @property
    def type(self) -> Optional[Type]:
        return self.plane.type if self.plane is not None else None

    def is_pure(self) -> bool:
        """True when the instruction has no side effect and cannot trap."""
        return not self.traps

    def describe(self) -> str:
        return self.opcode

    def __repr__(self) -> str:  # pragma: no cover
        return f"<v{self.id} {self.describe()}>"


class Const(Instr):
    """A constant, pre-loaded in the entry block (paper Section 5)."""

    opcode = "const"
    __slots__ = ("value",)

    def __init__(self, type: Type, value: object):
        super().__init__(Plane.of_type(type), [])
        self.value = value

    def describe(self) -> str:
        return f"const {self.value!r}:{self.type}"


class Param(Instr):
    """A parameter, pre-loaded in the entry block.  ``this`` (index 0 of an
    instance method) is intrinsically non-null and lives on the safe plane."""

    opcode = "param"
    __slots__ = ("index", "name")

    def __init__(self, index: int, type: Type, name: str = "",
                 is_this: bool = False):
        plane = Plane.safe(type) if is_this else Plane.of_type(type)
        super().__init__(plane, [])
        self.index = index
        self.name = name

    def describe(self) -> str:
        return f"param {self.index} ({self.name}):{self.plane}"


class Phi(Instr):
    """A phi-instruction; operands parallel the owning block's pred list.

    All operands and the result live on the same plane (paper Section 4:
    "phi-functions are strictly type-separated")."""

    opcode = "phi"
    __slots__ = ("var", "removed", "replacement", "is_eager")

    def __init__(self, plane: Plane, var: object = None,
                 is_eager: bool = False):
        super().__init__(plane, [])
        #: the source variable this phi merges (debugging / pruning stats)
        self.var = var
        #: set when removed as trivial; ``replacement`` forwards reads
        self.removed = False
        self.replacement: Optional[Instr] = None
        #: inserted eagerly (Brandis/Moessenboeck style): kept during
        #: construction even when trivial, so that Briggs pruning is what
        #: removes it (the paper's 31%)
        self.is_eager = is_eager

    def describe(self) -> str:
        refs = ", ".join(f"v{op.id}" for op in self.operands)
        return f"phi:{self.plane} [{refs}]"


class Prim(Instr):
    """``primitive``/``xprimitive``: apply a type-table operation."""

    __slots__ = ("operation",)

    def __init__(self, operation: Operation, args: list[Instr]):
        super().__init__(Plane.of_type(operation.result), args)
        self.operation = operation

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return "xprimitive" if self.operation.traps else "primitive"

    @property
    def traps(self) -> bool:  # type: ignore[override]
        return self.operation.traps

    def describe(self) -> str:
        args = ", ".join(f"v{a.id}" for a in self.operands)
        return f"{self.opcode} {self.operation.qualified_name}({args})"


class RefCmp(Instr):
    """Reference equality on a common plane."""

    opcode = "refcmp"
    __slots__ = ("is_eq", "plane_type")

    def __init__(self, is_eq: bool, plane_type: Type, left: Instr,
                 right: Instr):
        super().__init__(Plane.of_type(BOOLEAN), [left, right])
        self.is_eq = is_eq
        self.plane_type = plane_type

    def describe(self) -> str:
        op = "==" if self.is_eq else "!="
        return f"refcmp v{self.operands[0].id} {op} v{self.operands[1].id}"


class NullCheck(Instr):
    """Copy a ref value to its safe-ref plane after a runtime null check."""

    opcode = "nullcheck"
    traps = True
    __slots__ = ("ref_type",)

    def __init__(self, ref_type: Type, value: Instr):
        super().__init__(Plane.safe(ref_type), [value])
        self.ref_type = ref_type

    def describe(self) -> str:
        return f"nullcheck v{self.operands[0].id} -> {self.plane}"


class IdxCheck(Instr):
    """Copy an int to the safe-index plane of an array value after a
    bounds check."""

    opcode = "idxcheck"
    traps = True
    __slots__ = ()

    def __init__(self, array: Instr, index: Instr):
        super().__init__(Plane.safe_index(array), [array, index])

    def set_operand(self, index: int, value: "Instr") -> None:
        super().set_operand(index, value)
        if index == 0:
            # the safe-index plane is bound to the array *value*; follow it
            self.plane = Plane.safe_index(value)

    @property
    def array(self) -> Instr:
        return self.operands[0]

    @property
    def index(self) -> Instr:
        return self.operands[1]

    def describe(self) -> str:
        return f"idxcheck v{self.array.id}[v{self.index.id}]"


class Upcast(Instr):
    """The paper's *upcast*: dynamically checked cast; traps on failure."""

    opcode = "upcast"
    traps = True
    __slots__ = ("target_type",)

    def __init__(self, target_type: Type, value: Instr):
        super().__init__(Plane.of_type(target_type), [value])
        self.target_type = target_type

    def describe(self) -> str:
        return f"upcast v{self.operands[0].id} to {self.target_type}"


class Downcast(Instr):
    """The paper's *downcast*: statically safe plane change, no runtime
    effect (safe-ref -> ref of the same class, or widening to a superclass
    plane)."""

    opcode = "downcast"
    __slots__ = ()

    def __init__(self, plane: Plane, value: Instr):
        super().__init__(plane, [value])

    def describe(self) -> str:
        return f"downcast v{self.operands[0].id} to {self.plane}"


class GetField(Instr):
    opcode = "getfield"
    __slots__ = ("base", "field")

    def __init__(self, base: ClassInfo, obj: Instr, field: FieldInfo):
        super().__init__(Plane.of_type(field.type), [obj])
        self.base = base
        self.field = field

    def describe(self) -> str:
        return f"getfield v{self.operands[0].id}.{self.field.name}"


class SetField(Instr):
    opcode = "setfield"
    __slots__ = ("base", "field")

    def __init__(self, base: ClassInfo, obj: Instr, field: FieldInfo,
                 value: Instr):
        super().__init__(None, [obj, value])
        self.base = base
        self.field = field

    def is_pure(self) -> bool:
        return False

    def describe(self) -> str:
        return (f"setfield v{self.operands[0].id}.{self.field.name}"
                f" = v{self.operands[1].id}")


class GetStatic(Instr):
    opcode = "getstatic"
    __slots__ = ("field",)

    def __init__(self, field: FieldInfo):
        super().__init__(Plane.of_type(field.type), [])
        self.field = field

    def describe(self) -> str:
        return f"getstatic {self.field.qualified_name}"


class SetStatic(Instr):
    opcode = "setstatic"
    __slots__ = ("field",)

    def __init__(self, field: FieldInfo, value: Instr):
        super().__init__(None, [value])
        self.field = field

    def is_pure(self) -> bool:
        return False

    def describe(self) -> str:
        return f"setstatic {self.field.qualified_name} = v{self.operands[0].id}"


class GetElt(Instr):
    opcode = "getelt"
    __slots__ = ("array_type",)

    def __init__(self, array_type: ArrayType, obj: Instr, index: Instr):
        super().__init__(Plane.of_type(array_type.element), [obj, index])
        self.array_type = array_type

    def describe(self) -> str:
        return f"getelt v{self.operands[0].id}[v{self.operands[1].id}]"


class SetElt(Instr):
    opcode = "setelt"
    __slots__ = ("array_type",)

    def __init__(self, array_type: ArrayType, obj: Instr, index: Instr,
                 value: Instr):
        super().__init__(None, [obj, index, value])
        self.array_type = array_type

    @property
    def traps(self) -> bool:  # type: ignore[override]
        # Java array covariance: a reference store is checked against the
        # runtime element type and may raise ArrayStoreException
        return self.array_type.element.is_reference()

    def is_pure(self) -> bool:
        return False

    def describe(self) -> str:
        return (f"setelt v{self.operands[0].id}[v{self.operands[1].id}]"
                f" = v{self.operands[2].id}")


class ArrayLen(Instr):
    opcode = "arraylen"
    __slots__ = ("array_type",)

    def __init__(self, array_type: ArrayType, obj: Instr):
        super().__init__(Plane.of_type(INT), [obj])
        self.array_type = array_type

    def describe(self) -> str:
        return f"arraylen v{self.operands[0].id}"


class New(Instr):
    """Allocate an instance; the result is intrinsically non-null and is
    deposited directly on the safe-ref plane."""

    opcode = "new"
    __slots__ = ("class_info",)

    def __init__(self, class_info: ClassInfo):
        super().__init__(Plane.safe(class_info.type), [])
        self.class_info = class_info

    def is_pure(self) -> bool:
        return False  # allocation is observable (identity)

    def describe(self) -> str:
        return f"new {self.class_info.name}"


class NewArray(Instr):
    opcode = "newarray"
    traps = True  # NegativeArraySizeException
    __slots__ = ("array_type",)

    def __init__(self, array_type: ArrayType, length: Instr):
        super().__init__(Plane.safe(array_type), [length])
        self.array_type = array_type

    def is_pure(self) -> bool:
        return False

    def describe(self) -> str:
        return f"newarray {self.array_type}[v{self.operands[0].id}]"


class InstanceOf(Instr):
    opcode = "instanceof"
    __slots__ = ("target_type",)

    def __init__(self, target_type: Type, value: Instr):
        super().__init__(Plane.of_type(BOOLEAN), [value])
        self.target_type = target_type

    def describe(self) -> str:
        return f"instanceof v{self.operands[0].id} {self.target_type}"


class Call(Instr):
    """``xcall`` (static binding) / ``xdispatch`` (virtual).

    For instance calls ``operands[0]`` is the receiver on the safe-ref
    plane of ``base``; the remaining operands are the arguments."""

    traps = True
    __slots__ = ("base", "method", "dispatch")

    def __init__(self, base: ClassInfo, method: MethodInfo,
                 args: list[Instr], dispatch: bool):
        result = method.return_type
        plane = Plane.of_type(result) if result is not VOID else None
        super().__init__(plane, args)
        self.base = base
        self.method = method
        self.dispatch = dispatch

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return "xdispatch" if self.dispatch else "xcall"

    def is_pure(self) -> bool:
        return False

    def describe(self) -> str:
        args = ", ".join(f"v{a.id}" for a in self.operands)
        return f"{self.opcode} {self.method.qualified_name}({args})"


class CaughtExc(Instr):
    """The exception value at the head of an exception-handling join block
    (the paper's special exception phi).  Non-null by construction."""

    opcode = "caughtexc"
    __slots__ = ()

    def __init__(self):
        super().__init__(Plane.safe(THROWABLE), [])

    def describe(self) -> str:
        return "caughtexc"


# ======================================================================
# blocks, terminators, functions

class Term:
    """Block terminator descriptor.

    kind: 'fall' | 'branch' | 'return' | 'throw' | 'break' | 'continue'
    ``value`` is the condition (branch), return value, or thrown value;
    ``depth`` is the relative nesting index for break/continue.
    """

    __slots__ = ("kind", "value", "depth")

    def __init__(self, kind: str, value: Optional[Instr] = None,
                 depth: int = 0):
        self.kind = kind
        self.value = value
        self.depth = depth
        if value is not None:
            value.users.add(_TermUse(self))

    def __repr__(self) -> str:  # pragma: no cover
        extra = f" v{self.value.id}" if self.value is not None else ""
        if self.kind in ("break", "continue"):
            extra += f" depth={self.depth}"
        return f"<term {self.kind}{extra}>"


class _TermUse:
    """Adapter so terminators participate in use tracking."""

    __slots__ = ("term", "id")

    def __init__(self, term: Term):
        self.term = term
        self.id = -1

    @property
    def operands(self) -> list:
        return [self.term.value]

    def set_operand(self, index: int, value: Instr) -> None:
        old = self.term.value
        self.term.value = value
        value.users.add(self)
        if old is not None:
            old.users.discard(self)

    def __hash__(self) -> int:
        return id(self.term)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _TermUse) and other.term is self.term


_block_ids = itertools.count(0)


class Block:
    """A basic block: phis, ordinary instructions, and a terminator."""

    __slots__ = ("id", "function", "phis", "instrs", "term", "preds",
                 "succs", "exc_target", "caught")

    def __init__(self, function: Optional["Function"] = None):
        self.id = next(_block_ids)
        self.function = function
        self.phis: list[Phi] = []
        self.instrs: list[Instr] = []
        self.term: Optional[Term] = None
        #: (pred_block, kind) pairs, kind 'norm' | 'exc'; order defines
        #: the operand order of this block's phis
        self.preds: list[tuple["Block", str]] = []
        #: (succ_block, kind) pairs in edge-creation order; for a branch
        #: terminator the first two normal successors are (true, false)
        self.succs: list[tuple["Block", str]] = []
        #: dispatch block for exception edges (set while inside a try body)
        self.exc_target: Optional["Block"] = None
        #: the CaughtExc instruction if this is a dispatch block
        self.caught: Optional[CaughtExc] = None

    def append(self, instr: Instr) -> Instr:
        instr.block = self
        if isinstance(instr, Phi):
            self.phis.append(instr)
        elif isinstance(instr, CaughtExc):
            self.caught = instr
            self.instrs.append(instr)
        else:
            self.instrs.append(instr)
        return instr

    def all_instrs(self) -> list[Instr]:
        return list(self.phis) + self.instrs

    def add_pred(self, pred: "Block", kind: str = "norm") -> None:
        self.preds.append((pred, kind))
        pred.succs.append((self, kind))

    def normal_succs(self) -> list["Block"]:
        return [succ for succ, kind in self.succs if kind == "norm"]

    def exc_succ(self) -> Optional["Block"]:
        for succ, kind in self.succs:
            if kind == "exc":
                return succ
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<block B{self.id}>"


def trapping_tail_gate(def_block: Block, instr: Instr) -> Optional[Block]:
    """The block past which ``instr``'s result is actually defined.

    A trapping instruction that closes a subblock with an exception edge
    assigns its result only on the fall-through path -- when it traps,
    control leaves for the dispatch block *before* the definition.  The
    result is therefore defined exactly beneath the normal successor,
    not beneath the defining block: a use point merely dominated by
    ``def_block`` can still be reached through the exception edge with
    the register unassigned.  Returns that normal successor ("gate"), or
    None when the value is unconditionally defined at the end of
    ``def_block`` (non-trapping, no exception edge, or not the tail).
    """
    if not instr.traps or def_block.exc_succ() is None:
        return None
    if not def_block.instrs or def_block.instrs[-1] is not instr:
        return None
    succs = def_block.normal_succs()
    return succs[0] if len(succs) == 1 else None


class Function:
    """A SafeTSA method body: entry block, block list, CST, parameters."""

    def __init__(self, method: MethodInfo, class_info: ClassInfo):
        self.method = method
        self.class_info = class_info
        self.blocks: list[Block] = []
        self.entry: Optional[Block] = None
        self.cst = None  # set by construction (repro.ssa.cst region)
        self.params: list[Param] = []
        #: phi statistics (set by construction / pruning)
        self.phi_count_unpruned = 0

    def new_block(self) -> Block:
        block = Block(self)
        self.blocks.append(block)
        return block

    @property
    def name(self) -> str:
        return self.method.qualified_name

    def instruction_count(self) -> int:
        """Number of SafeTSA instructions in reachable blocks (phis
        included, paper Figure 5).  Unreachable blocks (e.g. a dispatch
        whose try lost all its exception points to optimisation) are not
        transmitted and therefore not counted."""
        return sum(len(b.phis) + len(b.instrs)
                   for b in self.reachable_blocks())

    def reachable_blocks(self) -> list[Block]:
        seen: set[int] = set()
        order: list[Block] = []
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block is None or block.id in seen:
                continue
            seen.add(block.id)
            order.append(block)
            stack.extend(succ for succ, _ in block.succs)
        return order

    def __repr__(self) -> str:  # pragma: no cover
        return f"<function {self.name}>"


class Module:
    """A SafeTSA code distribution unit: classes plus their method bodies."""

    def __init__(self, world: World, type_table):
        self.world = world
        self.type_table = type_table
        #: user classes in declaration order
        self.classes: list[ClassInfo] = []
        #: MethodInfo -> Function for every method with a body
        self.functions: dict[MethodInfo, Function] = {}

    def add_function(self, function: Function) -> None:
        self.functions[function.method] = function

    def function_named(self, class_name: str, method_name: str) -> Function:
        for method, function in self.functions.items():
            if method.declaring.name.split(".")[-1] == class_name.split(".")[-1] \
                    and method.name == method_name:
                return function
        raise KeyError(f"no function {class_name}.{method_name}")

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def count_opcodes(self, *opcodes: str) -> int:
        total = 0
        for function in self.functions.values():
            for block in function.reachable_blocks():
                for instr in block.all_instrs():
                    if instr.opcode in opcodes:
                        total += 1
        return total
