"""Java numeric semantics: wrap-around two's-complement ints and IEEE floats.

These helpers are shared by the operation tables, the constant folder, the
SafeTSA interpreter and the bytecode interpreter, so that all executors agree
bit-for-bit on arithmetic results.
"""

from __future__ import annotations

import math
import struct

INT_MIN = -(2**31)
INT_MAX = 2**31 - 1
LONG_MIN = -(2**63)
LONG_MAX = 2**63 - 1


def i32(value: int) -> int:
    """Truncate to a signed 32-bit integer (Java ``int`` overflow)."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def i64(value: int) -> int:
    """Truncate to a signed 64-bit integer (Java ``long`` overflow)."""
    value &= 0xFFFFFFFFFFFFFFFF
    return value - 0x10000000000000000 if value >= 0x8000000000000000 else value


def f32(value: float) -> float:
    """Round to IEEE-754 single precision (Java ``float``)."""
    return struct.unpack("f", struct.pack("f", value))[0]


def idiv(a: int, b: int, bits: int = 32) -> int:
    """Java integer division: truncates toward zero; (MIN / -1) wraps."""
    if b == 0:
        raise ZeroDivisionError("/ by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return i32(q) if bits == 32 else i64(q)


def irem(a: int, b: int, bits: int = 32) -> int:
    """Java integer remainder: sign follows the dividend; (MIN % -1) is 0."""
    if b == 0:
        raise ZeroDivisionError("% by zero")
    r = a - idiv(a, b, bits) * b
    return i32(r) if bits == 32 else i64(r)


def ishl(a: int, b: int, bits: int = 32) -> int:
    """Java shift-left; the shift amount is masked to the type width."""
    shift = b & (bits - 1)
    return i32(a << shift) if bits == 32 else i64(a << shift)


def ishr(a: int, b: int, bits: int = 32) -> int:
    """Java arithmetic shift-right with masked shift amount."""
    shift = b & (bits - 1)
    return a >> shift


def iushr(a: int, b: int, bits: int = 32) -> int:
    """Java logical (unsigned) shift-right with masked shift amount."""
    shift = b & (bits - 1)
    mask = (1 << bits) - 1
    shifted = (a & mask) >> shift
    return i32(shifted) if bits == 32 else i64(shifted)


def fdiv(a: float, b: float) -> float:
    """IEEE division: never traps, produces inf/nan."""
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.inf * sign
    return a / b


def frem(a: float, b: float) -> float:
    """Java floating remainder (same as C fmod, unlike Python %)."""
    if math.isnan(a) or math.isnan(b) or math.isinf(a) or b == 0.0:
        return math.nan
    if math.isinf(b):
        return a
    return math.fmod(a, b)


def d2i(value: float) -> int:
    """Java narrowing double->int: NaN -> 0, saturate at the int range."""
    if math.isnan(value):
        return 0
    if value >= INT_MAX:
        return INT_MAX
    if value <= INT_MIN:
        return INT_MIN
    return int(value)


def d2l(value: float) -> int:
    """Java narrowing double->long: NaN -> 0, saturate at the long range."""
    if math.isnan(value):
        return 0
    if value >= LONG_MAX:
        return LONG_MAX
    if value <= LONG_MIN:
        return LONG_MIN
    return int(value)


def l2i(value: int) -> int:
    return i32(value)


def i2c(value: int) -> int:
    """Java narrowing int->char: keep the low 16 bits, zero-extended."""
    return value & 0xFFFF
