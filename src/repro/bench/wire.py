"""E12: wire-format v2 distribution cost -- size and time-to-first-execute.

The paper's Figure 5 sizes the *verified* representation; this
benchmark sizes the *distribution* layer built on top of it (the ACC
"shrink what is shipped, not what is verified" line).  Three questions,
over every corpus program compiled plain and optimised:

* **shared dictionaries** -- per program, the plain and optimised
  streams are factored against their common prefix (the bit-packed
  type table and member tables, identical between the two) and
  enveloped; total shipped bytes = both envelopes + the dictionary
  blob once.  The corpus ratio vs raw v1 is the headline number.
* **deltas** -- the optimised stream encoded as a patch against the
  plain stream's digest: the "publisher pushes a recompiled module"
  cost, compared to shipping the optimised stream whole.
* **time-to-first-execute** -- chunks "arrive" on a simulated
  fixed-bandwidth link (a discrete-event clock, no sleeping: feed *i*
  cannot start before byte *i* has arrived or before feed *i-1*
  finished, and each feed's real CPU cost advances the clock).  The
  streaming loader decodes-and-verifies each body inside the arrival
  gaps and stops the clock when the entry point's body is ready; the
  eager baseline must wait for the full transfer and then decode
  everything.  The gap is exactly the decode work streaming overlaps
  with the transfer -- the paper's "verify while the code arrives"
  claim, measured.

Every sized unit is also resolved and decoded back (outside the
timers) and must reproduce the original stream -- a benchmark that
ships the wrong bytes measures nothing.  The report lands in
``BENCH_wire.json``; CI guards that the v2 corpus ratio and the delta
ratio stay below 1.0 and that streaming TTFE stays at or below eager.
"""

from __future__ import annotations

import os
import time

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.cache import DictionaryStore
from repro.encode.deserializer import decode_module
from repro.encode.format import (
    MIN_DICTIONARY_BYTES,
    build_shared_dictionary,
    encode_delta,
    encode_v2,
    resolve_stream,
)
from repro.encode.serializer import encode_module
from repro.loader import StreamingLoader, load_module
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module

#: chunk size for the streaming TTFE measurement -- small enough that
#: every corpus artifact spans several feeds
STREAM_CHUNK = 256

#: simulated link bandwidth (bytes/second) for the TTFE discrete-event
#: clock.  32 KiB/s is a mobile-code-era link: slow enough that decode
#: work fits inside the arrival gaps, which is the regime the paper's
#: streaming argument is about.  Both sides pay the same transfer time;
#: only the overlap differs.
STREAM_BANDWIDTH = 32 * 1024


def _best_sim(fn, repeats: int, warmup: int = 1) -> float:
    """Minimum simulated TTFE over ``repeats`` runs of ``fn`` (which
    returns a simulated-clock reading, already including its own
    measured CPU cost)."""
    for _ in range(warmup):
        fn()
    return min(fn() for _ in range(max(repeats, 1)))


def _pairs(programs) -> list[tuple[str, bytes, bytes]]:
    """(name, plain wire, optimised wire) per corpus program."""
    pairs = []
    for name in programs:
        source = corpus_source(name)
        plain = compile_to_module(source, cache=False)
        optimized = compile_to_module(source, optimize=True, cache=False)
        pairs.append((name, encode_module(plain),
                      encode_module(optimized)))
    return pairs


def _main_method(module):
    for method in module.functions:
        if method.name == "main" and method.is_static:
            return method
    return None


def _ttfe_stream(wire: bytes) -> float:
    """Simulated time until ``main`` could start when decode overlaps
    the transfer.  Feed *i* cannot begin before its last byte arrived
    or before feed *i-1* returned; each feed's real measured CPU cost
    advances the clock.  Retry overhead therefore only hurts when it
    spills out of an arrival gap -- exactly as it would on a real
    link."""
    loader = StreamingLoader(cache=False)
    clock = 0.0
    for offset in range(0, len(wire), STREAM_CHUNK):
        chunk = wire[offset:offset + STREAM_CHUNK]
        arrival = (offset + len(chunk)) / STREAM_BANDWIDTH
        start = time.perf_counter()
        module = loader.feed(chunk)
        ready = False
        if module is not None:
            main = _main_method(module)
            ready = main is not None and module.functions.ready(main)
        cpu = time.perf_counter() - start
        clock = max(clock, arrival) + cpu
        if ready:
            return clock
    raise AssertionError("corpus artifact has no static main")


def _ttfe_eager(wire: bytes) -> float:
    """The eager baseline: the full transfer must land before the
    one-shot decode can even begin, so TTFE is transfer time plus the
    whole measured decode."""
    start = time.perf_counter()
    module = load_module(wire, cache=False)
    main = _main_method(module)
    cpu = time.perf_counter() - start
    if main is None:
        raise AssertionError("corpus artifact has no static main")
    return len(wire) / STREAM_BANDWIDTH + cpu


def wire_report(programs=None, repeats=None) -> dict:
    """All the numbers behind ``BENCH_wire.json``."""
    if repeats is None:
        repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    programs = list(programs or CORPUS_PROGRAMS)
    store = DictionaryStore()  # memory-only: no disk I/O in timings

    rows = []
    totals = {"v1": 0, "v2_shipped": 0, "dict": 0, "v1_opt": 0,
              "delta": 0, "ttfe_stream_ms": 0.0, "ttfe_eager_ms": 0.0}
    for name, plain, optimized in _pairs(programs):
        dictionary = build_shared_dictionary([plain, optimized])
        shared = (dictionary,) \
            if len(dictionary) >= MIN_DICTIONARY_BYTES else ()
        envelopes = [encode_v2(wire, shared, store=store)
                     for wire in (plain, optimized)]
        delta = encode_delta(plain, optimized, store=store)

        # correctness outside the timers: every unit must resolve to
        # the exact v1 bytes and decode to a verifying module
        for unit, wire in zip(envelopes + [delta],
                              (plain, optimized, optimized)):
            if resolve_stream(unit, store) != wire:
                raise AssertionError(f"{name}: v2 unit does not resolve "
                                     "to its v1 bytes")
        verify_module(decode_module(envelopes[0], store=store))

        dict_bytes = len(dictionary) if shared else 0
        ttfe_stream = sum(
            _best_sim(lambda w=wire: _ttfe_stream(w), repeats) * 1000
            for wire in (plain, optimized))
        ttfe_eager = sum(
            _best_sim(lambda w=wire: _ttfe_eager(w), repeats) * 1000
            for wire in (plain, optimized))

        row = {
            "program": name,
            "v1_bytes": len(plain) + len(optimized),
            "v2_envelope_bytes": sum(map(len, envelopes)),
            "dict_bytes": dict_bytes,
            "v2_shipped_bytes": sum(map(len, envelopes)) + dict_bytes,
            "v1_opt_bytes": len(optimized),
            "delta_bytes": len(delta),
            "ttfe_stream_ms": round(ttfe_stream, 4),
            "ttfe_eager_ms": round(ttfe_eager, 4),
        }
        totals["v1"] += row["v1_bytes"]
        totals["v2_shipped"] += row["v2_shipped_bytes"]
        totals["dict"] += dict_bytes
        totals["v1_opt"] += row["v1_opt_bytes"]
        totals["delta"] += row["delta_bytes"]
        totals["ttfe_stream_ms"] += ttfe_stream
        totals["ttfe_eager_ms"] += ttfe_eager
        rows.append(row)

    def ratio(numerator: float, denominator: float):
        return round(numerator / denominator, 4) if denominator else None

    v2_ratio = ratio(totals["v2_shipped"], totals["v1"])
    delta_ratio = ratio(totals["delta"], totals["v1_opt"])
    ttfe_ratio = ratio(totals["ttfe_stream_ms"], totals["ttfe_eager_ms"])
    report = {
        "programs": programs,
        "repeats": repeats,
        "stream_chunk": STREAM_CHUNK,
        "stream_bandwidth": STREAM_BANDWIDTH,
        "rows": rows,
        "totals": {key: round(value, 3) if isinstance(value, float)
                   else value for key, value in totals.items()},
        "ratios": {
            # corpus bytes shipped under shared-dictionary v2, vs raw v1
            "v2_vs_v1": v2_ratio,
            # pushing a recompile as a delta, vs shipping it whole
            "delta_vs_v1_opt": delta_ratio,
            # time until main could start on the simulated link:
            # overlapped streaming decode vs transfer-then-decode
            "ttfe_stream_vs_eager": ttfe_ratio,
        },
        "guard": {
            "v2_smaller_than_v1": totals["v2_shipped"] < totals["v1"],
            "delta_smaller_than_full": totals["delta"] < totals["v1_opt"],
            "streaming_ttfe_le_eager":
                totals["ttfe_stream_ms"] <= totals["ttfe_eager_ms"],
        },
    }
    return report


def wire_table(report: dict) -> str:
    """Fixed-width rendering of a :func:`wire_report` (RESULTS.txt)."""
    lines = [
        f"{'Program':16} {'v1':>7} {'v2+dict':>8} {'delta':>7} "
        f"{'ttfe-s':>8} {'ttfe-e':>8}",
        "-" * 58,
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['program']:16} {row['v1_bytes']:>7} "
            f"{row['v2_shipped_bytes']:>8} {row['delta_bytes']:>7} "
            f"{row['ttfe_stream_ms']:>8.2f} {row['ttfe_eager_ms']:>8.2f}")
    totals = report["totals"]
    lines.append("-" * 58)
    lines.append(
        f"{'TOTAL':16} {totals['v1']:>7} {totals['v2_shipped']:>8} "
        f"{totals['delta']:>7} {totals['ttfe_stream_ms']:>8.2f} "
        f"{totals['ttfe_eager_ms']:>8.2f}")
    ratios = report["ratios"]
    lines.append("")
    lines.append(
        f"v2 shipped vs v1: {ratios['v2_vs_v1']}x; delta vs full "
        f"optimised: {ratios['delta_vs_v1_opt']}x; streaming vs eager "
        f"time-to-first-execute: {ratios['ttfe_stream_vs_eager']}x")
    return "\n".join(lines)
