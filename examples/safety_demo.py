"""Why hand-crafted malicious SafeTSA cannot exist (paper Sections 2-4).

Three demonstrations:

1. the Figure 1 referential-integrity attack -- referencing a value from
   the untaken side of a phi-join -- has no ``(l, r)`` encoding;
2. a type-confusion attack -- using an integer where a reference is
   required -- is rejected by plane selection (type separation);
3. skipping a null check -- passing an unchecked reference to
   ``getfield`` -- is rejected because the operand is not on the
   safe-ref plane.

Run with:  python examples/safety_demo.py
"""

from repro.ssa.cst import RBasic, RIf, RSeq, derive_cfg
from repro.ssa.ir import (
    Block,
    Const,
    Function,
    GetField,
    Module,
    NullCheck,
    Plane,
    Prim,
    Term,
)
from repro.tsa.layout import FunctionLayout, LayoutError
from repro.tsa.verifier import VerifyError, verify_function
from repro.typesys.ops import lookup_op
from repro.typesys.table import TypeTable
from repro.typesys.types import BOOLEAN, INT, ClassType
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World


def build_world():
    world = World()
    point = ClassInfo("Point", "java.lang.Object")
    point.add_field(FieldInfo("x", INT))
    world.define_class(point)
    world.link()
    table = TypeTable(world)
    table.declare_class(point)
    module = Module(world, table)
    module.classes.append(point)
    return world, table, module, point


def demo_figure1_attack() -> None:
    print("1. Figure 1: reference a value from the wrong phi path")
    world, table, module, point = build_world()
    method = MethodInfo("attack", [], INT, is_static=True)
    point.add_method(method)
    function = Function(method, point)
    entry = function.new_block()
    function.entry = entry
    cond = Const(BOOLEAN, True)
    entry.append(cond)
    entry.term = Term("branch", cond)
    then_block = function.new_block()
    secret = Const(INT, 10)   # defined only on the then-path
    then_block.append(secret)
    then_block.term = Term("fall")
    else_block = function.new_block()
    other = Const(INT, 11)
    else_block.append(other)
    else_block.term = Term("fall")
    join = function.new_block()
    join.term = Term("return", secret)  # the attack
    function.cst = RSeq([RIf(entry, RBasic(then_block), RBasic(else_block)),
                         RBasic(join)])
    derive_cfg(function)
    layout = FunctionLayout(function)
    try:
        layout.ref_of(join, secret)
        print("   !! attack succeeded (this must never print)")
    except LayoutError as error:
        print(f"   unrepresentable: {error}")
    try:
        verify_function(module, function)
        print("   !! verifier accepted the attack")
    except VerifyError as error:
        print(f"   verifier: {error}")


def demo_type_confusion() -> None:
    print("\n2. type separation: an int cannot impersonate a boolean")
    world, table, module, point = build_world()
    method = MethodInfo("confuse", [], BOOLEAN, is_static=True)
    point.add_method(method)
    function = Function(method, point)
    entry = function.new_block()
    function.entry = entry
    number = Const(INT, 1)
    entry.append(number)
    # boolean.not applied to an int-plane value
    attack = Prim(lookup_op(BOOLEAN, "not"), [number])
    entry.append(attack)
    entry.term = Term("return", attack)
    function.cst = RSeq([RBasic(entry)])
    derive_cfg(function)
    try:
        verify_function(module, function)
        print("   !! verifier accepted type confusion")
    except VerifyError as error:
        print(f"   verifier: {error}")


def demo_skipped_null_check() -> None:
    print("\n3. memory safety: getfield demands a safe-ref operand")
    world, table, module, point = build_world()
    field = point.fields[0]
    method = MethodInfo("skip", [ClassType("Point")], INT, is_static=True)
    point.add_method(method)
    function = Function(method, point)
    entry = function.new_block()
    function.entry = entry
    from repro.ssa.ir import Param
    ref = Param(0, ClassType("Point"), "p")   # unchecked reference
    entry.append(ref)
    function.params.append(ref)
    attack = GetField(point, ref, field)      # no nullcheck first
    entry.append(attack)
    entry.term = Term("return", attack)
    function.cst = RSeq([RBasic(entry)])
    derive_cfg(function)
    try:
        verify_function(module, function)
        print("   !! verifier accepted the unchecked access")
    except VerifyError as error:
        print(f"   verifier: {error}")
    # the honest version passes:
    function2 = Function(method, point)
    entry2 = function2.new_block()
    function2.entry = entry2
    ref2 = Param(0, ClassType("Point"), "p")
    entry2.append(ref2)
    function2.params.append(ref2)
    checked = NullCheck(ClassType("Point"), ref2)
    entry2.append(checked)
    honest = GetField(point, checked, field)
    entry2.append(honest)
    entry2.term = Term("return", honest)
    function2.cst = RSeq([RBasic(entry2)])
    derive_cfg(function2)
    verify_function(module, function2)
    print("   (with the nullcheck in place, verification passes)")


def main() -> None:
    demo_figure1_attack()
    demo_type_confusion()
    demo_skipped_null_check()


if __name__ == "__main__":
    main()
