// Stand-in for sun.tools.java.Parser: a recursive-descent parser building
// an AST of Node objects, then folding and evaluating it.  Exercises
// virtual dispatch, recursion, field traffic and exceptions.
class ParseError extends Exception {
    int position;
    ParseError(String message, int position) {
        super(message);
        this.position = position;
    }
}

class Node {
    int eval(int[] env) throws ParseError { return 0; }
    int size() { return 1; }
    String show() { return "?"; }
}

class NumNode extends Node {
    int value;
    NumNode(int value) { this.value = value; }
    int eval(int[] env) { return value; }
    String show() { return "" + value; }
}

class VarNode extends Node {
    int index;
    VarNode(int index) { this.index = index; }
    int eval(int[] env) throws ParseError {
        if (index < 0 || index >= env.length) {
            throw new ParseError("unbound variable", index);
        }
        return env[index];
    }
    String show() { return "v" + index; }
}

class BinNode extends Node {
    char op;
    Node left;
    Node right;
    BinNode(char op, Node left, Node right) {
        this.op = op;
        this.left = left;
        this.right = right;
    }
    int eval(int[] env) throws ParseError {
        int a = left.eval(env);
        int b = right.eval(env);
        switch (op) {
            case '+': return a + b;
            case '-': return a - b;
            case '*': return a * b;
            case '/':
                if (b == 0) throw new ParseError("division by zero", 0);
                return a / b;
            default:
                throw new ParseError("bad operator", op);
        }
    }
    int size() { return 1 + left.size() + right.size(); }
    String show() {
        return "(" + left.show() + op + right.show() + ")";
    }
}

class Parser {
    String text;
    int pos;

    Parser(String text) {
        this.text = text;
        this.pos = 0;
    }

    char peek() {
        if (pos >= text.length()) return '\0';
        return text.charAt(pos);
    }

    void skip() {
        while (peek() == ' ') pos = pos + 1;
    }

    boolean eat(char c) {
        skip();
        if (peek() == c) { pos = pos + 1; return true; }
        return false;
    }

    Node parseExpr() throws ParseError {
        Node node = parseTerm();
        while (true) {
            if (eat('+')) node = new BinNode('+', node, parseTerm());
            else if (eat('-')) node = new BinNode('-', node, parseTerm());
            else return node;
        }
    }

    Node parseTerm() throws ParseError {
        Node node = parseFactor();
        while (true) {
            if (eat('*')) node = new BinNode('*', node, parseFactor());
            else if (eat('/')) node = new BinNode('/', node, parseFactor());
            else return node;
        }
    }

    Node parseFactor() throws ParseError {
        skip();
        char c = peek();
        if (c == '(') {
            pos = pos + 1;
            Node inner = parseExpr();
            if (!eat(')')) throw new ParseError("missing )", pos);
            return inner;
        }
        if (c == 'v') {
            pos = pos + 1;
            return new VarNode(parseNumber());
        }
        if (Character.isDigit(c)) {
            return new NumNode(parseNumber());
        }
        throw new ParseError("unexpected character", pos);
    }

    int parseNumber() throws ParseError {
        skip();
        if (!Character.isDigit(peek())) {
            throw new ParseError("expected a number", pos);
        }
        int value = 0;
        while (Character.isDigit(peek())) {
            value = value * 10 + (peek() - '0');
            pos = pos + 1;
        }
        return value;
    }

    // constant folding: a producer-side optimisation in miniature
    static Node fold(Node node) {
        if (node instanceof BinNode) {
            BinNode bin = (BinNode) node;
            Node left = fold(bin.left);
            Node right = fold(bin.right);
            if (left instanceof NumNode && right instanceof NumNode) {
                int a = ((NumNode) left).value;
                int b = ((NumNode) right).value;
                if (bin.op == '+') return new NumNode(a + b);
                if (bin.op == '-') return new NumNode(a - b);
                if (bin.op == '*') return new NumNode(a * b);
                if (bin.op == '/' && b != 0) return new NumNode(a / b);
            }
            return new BinNode(bin.op, left, right);
        }
        return node;
    }

    static void main() {
        int[] env = new int[4];
        env[0] = 7;
        env[1] = -3;
        env[2] = 100;
        env[3] = 0;
        String[] programs = new String[5];
        programs[0] = "1 + 2 * 3";
        programs[1] = "(v0 + v1) * (4 - 2) / 2";
        programs[2] = "v2 / (v0 - 7)";
        programs[3] = "10 * (2 + 3) - 8 / 4";
        programs[4] = "v9 + 1";
        for (int i = 0; i < programs.length; i++) {
            Parser parser = new Parser(programs[i]);
            try {
                Node tree = parser.parseExpr();
                Node folded = fold(tree);
                int value = folded.eval(env);
                System.out.println(i + ": " + folded.show() + " = " + value
                                   + " (size " + tree.size() + "->"
                                   + folded.size() + ")");
            } catch (ParseError e) {
                System.out.println(i + ": error " + e.getMessage());
            }
        }
    }
}
