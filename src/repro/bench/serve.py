"""E13: distribution-service throughput and latency.

Starts a real :class:`~repro.serve.service.ServeServer` on an
ephemeral port, publishes the corpus through it (v1 singles plus one
shared-dictionary v2 batch), then hammers it with many concurrent
clients issuing a fetch-heavy mixed workload -- the access pattern of
a mobile-code install base: many consumers pulling and re-verifying
artifacts, few producers publishing.  Reports sustained requests per
second and the p50/p99 request latency, measured end to end through
the HTTP stack.  The workload runs twice: once with one connection
per request (the pre-pool client, kept as the A/B baseline) and once
with the keep-alive connection pool that is now the client default;
the headline numbers are the pooled run and the ``keep_alive``
section records the req/s delta between the two.

The **coalescing guard** is the correctness half: N clients released
by a barrier all request the *same fresh compile*; the service must
perform ~one underlying compilation (everything else coalesces onto
the in-flight future or hits the settled compilation cache) and every
client must receive the identical wire digest -- bit-identical bytes,
the determinism contract of PR 4 carried over the network.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.serve import ServeClient, ServeServer, ServeService, TenantLimits

#: quotas sized so the benchmark itself never trips them -- the
#: benchmark measures capacity, the tests exercise rejection
_BENCH_LIMITS = TenantLimits(requests_per_window=None,
                             stored_bytes=None, compile_seconds=None)


def _percentile(sorted_values: list, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(len(sorted_values) * fraction),
                len(sorted_values) - 1)
    return sorted_values[index]


def serve_report(programs=None, *, clients: int = 8,
                 requests_per_client: int = 50,
                 coalesce_clients: int = 8) -> dict:
    """All the numbers behind ``BENCH_serve.json``."""
    programs = list(programs or CORPUS_PROGRAMS)
    service = ServeService(limits=_BENCH_LIMITS)
    server = ServeServer(service).start()
    try:
        return _measure(service, server, programs, clients,
                        requests_per_client, coalesce_clients)
    finally:
        server.stop()


def _measure(service: ServeService, server: ServeServer,
             programs: list, clients: int, requests_per_client: int,
             coalesce_clients: int) -> dict:
    # -- publish the corpus: plain artifacts as v1 singles, optimised
    # artifacts as one v2 batch sharing a dictionary
    start = time.perf_counter()
    digests = []
    with ServeClient("127.0.0.1", server.port,
                     tenant="bench") as publisher:
        for name in programs:
            entry = publisher.publish(name,
                                      source=corpus_source(name))
            digests.append(entry["digest"])
        batch = publisher.publish_batch(
            [{"name": f"{name}.opt", "source": corpus_source(name),
              "optimize": True} for name in programs], wire_v2=True)
        digests.extend(entry["digest"]
                       for entry in batch["published"])
    publish_s = time.perf_counter() - start

    # -- the mixed serving workload, one thread per client, run twice:
    # once with the keep-alive connection pool (the client default) and
    # once with one connection per request (the pre-pool behaviour,
    # kept as the A/B baseline).  The mix is deterministic per request
    # index: mostly fetches (the install path), some verifies (the
    # paranoid consumer), some log reads (the auditor's incremental
    # pull).
    def run_workload(keep_alive: bool):
        errors: list = []
        latencies_by_client: list[list] = [[] for _ in range(clients)]

        def client_worker(client_index: int) -> None:
            client = ServeClient("127.0.0.1", server.port,
                                 tenant=f"bench-{client_index}",
                                 keep_alive=keep_alive)
            latencies = latencies_by_client[client_index]
            try:
                for request_index in range(requests_per_client):
                    digest = digests[(client_index + 3 * request_index)
                                     % len(digests)]
                    kind = request_index % 10
                    begin = time.perf_counter()
                    try:
                        if kind < 6:
                            client.fetch(digest)
                        elif kind < 9:
                            client.verify(digest=digest)
                        else:
                            client.log_entries()
                    except Exception as error:  # any failure -> guard
                        errors.append(f"client {client_index} "
                                      f"request {request_index}: "
                                      f"{error}")
                        return
                    latencies.append(time.perf_counter() - begin)
            finally:
                client.close()

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            for _ in pool.map(client_worker, range(clients)):
                pass
        seconds = time.perf_counter() - start
        flat = sorted(lat for per_client in latencies_by_client
                      for lat in per_client)
        return seconds, flat, errors

    close_s, close_latencies, close_errors = run_workload(False)
    serving_s, latencies, errors = run_workload(True)
    errors = errors + close_errors

    # -- coalescing guard: one fresh source, N simultaneous compiles
    marker = f"{len(digests)}{serving_s:.0f}".replace(".", "")
    fresh_source = (f"class Main {{ static int main() "
                    f"{{ int x = {marker}; int y = 0; "
                    f"for (int i = 0; i < x; i = i + 1) "
                    f"{{ y = y + i; }} return y; }} }}")
    performed_before = service.counters["compiles_performed"]
    barrier = threading.Barrier(coalesce_clients)
    coalesce_digests: list = [None] * coalesce_clients

    def coalesce_worker(index: int) -> None:
        with ServeClient("127.0.0.1", server.port,
                         tenant="coalesce") as client:
            barrier.wait()
            result = client.compile(fresh_source, optimize=True)
            coalesce_digests[index] = result["digest"]

    with ThreadPoolExecutor(max_workers=coalesce_clients) as pool:
        for _ in pool.map(coalesce_worker, range(coalesce_clients)):
            pass
    performed = service.counters["compiles_performed"] \
        - performed_before
    identical = len(set(coalesce_digests)) == 1 \
        and coalesce_digests[0] is not None

    total_requests = len(latencies)
    stats = service.counters
    return {
        "programs": programs,
        "artifacts": len(digests),
        "publish": {
            "modules": len(digests),
            "seconds": round(publish_s, 4),
            "v2_batch_dictionaries": batch["dictionaries"],
        },
        "serving": {
            "clients": clients,
            "requests_per_client": requests_per_client,
            "requests": total_requests,
            "seconds": round(serving_s, 4),
            "req_per_s": round(total_requests / serving_s, 1)
            if serving_s else None,
            "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
            "errors": errors,
        },
        "keep_alive": {
            "pooled_req_per_s": round(total_requests / serving_s, 1)
            if serving_s else None,
            "per_request_close_req_per_s":
            round(len(close_latencies) / close_s, 1)
            if close_s else None,
            "per_request_close_p50_ms":
            round(_percentile(close_latencies, 0.50) * 1000, 3),
            "speedup": round(close_s / serving_s, 2)
            if serving_s else None,
        },
        "coalescing": {
            "concurrent_clients": coalesce_clients,
            "compiles_performed": performed,
            "coalesced_or_cached": coalesce_clients - performed,
            "identical_digests": identical,
        },
        "server_counters": dict(stats),
        "guard": {
            # one barrier-released fan-in must cost ~one compile; two
            # tolerates the scheduler landing one request after the
            # winner already settled into the compilation cache
            "coalescing_single_compile": 1 <= performed <= 2,
            "coalesced_bit_identical": identical,
            "no_request_errors": not errors,
        },
    }


def serve_table(report: dict) -> str:
    serving = report["serving"]
    coalescing = report["coalescing"]
    lines = [
        f"{'corpus artifacts published':34} {report['artifacts']:>8}",
        f"{'publish wall-clock':34} "
        f"{report['publish']['seconds']:>7.2f}s",
        f"{'concurrent clients':34} {serving['clients']:>8}",
        f"{'requests served':34} {serving['requests']:>8}",
        f"{'sustained throughput (keep-alive)':34} "
        f"{serving['req_per_s']:>6.1f}/s",
        f"{'throughput, conn-per-request':34} "
        f"{report['keep_alive']['per_request_close_req_per_s']:>6.1f}"
        f"/s",
        f"{'keep-alive speedup':34} "
        f"{report['keep_alive']['speedup']:>7.2f}x",
        f"{'latency p50':34} {serving['p50_ms']:>6.2f}ms",
        f"{'latency p99':34} {serving['p99_ms']:>6.2f}ms",
        f"{'coalescing: concurrent compiles':34} "
        f"{coalescing['concurrent_clients']:>8}",
        f"{'coalescing: compiles performed':34} "
        f"{coalescing['compiles_performed']:>8}",
        f"{'coalescing: identical digests':34} "
        f"{str(coalescing['identical_digests']):>8}",
    ]
    return "\n".join(lines)
