"""The SafeTSA type table.

Every type, field and method referenced by a SafeTSA instruction is a
*symbolic reference* into this table (paper Sections 4-6).  The table has
two parts:

* an **implicit part** -- primitive types and host-library ("imported")
  classes -- generated identically by producer and consumer and therefore
  tamper-proof, and
* a **declared part** -- the mobile program's own classes and the array
  types it uses -- transmitted in the distribution unit for safe linking.

Indices are stable and dense, so the wire format can encode a type
reference as a bounded symbol whose alphabet is the current table size.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    Type,
    VOID,
)
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World

#: canonical order of the primitive entries (index 0..6)
PRIMITIVE_ORDER: tuple[Type, ...] = (INT, LONG, FLOAT, DOUBLE, BOOLEAN, CHAR, VOID)


class TypeEntry:
    """One row of the type table."""

    def __init__(self, index: int, type: Type, implicit: bool):
        self.index = index
        self.type = type
        #: True for the tamper-proof implicit part
        self.implicit = implicit

    def __repr__(self) -> str:  # pragma: no cover
        origin = "implicit" if self.implicit else "declared"
        return f"<type #{self.index} {self.type} ({origin})>"


class TypeTableError(Exception):
    """Raised for references to types absent from the table."""


class TypeTable:
    """Dense, deterministic numbering of all types a module references."""

    def __init__(self, world: World):
        self.world = world
        self.entries: list[TypeEntry] = []
        self._index: dict[Type, int] = {}
        self._field_tables: dict[str, list[FieldInfo]] = {}
        self._method_tables: dict[str, list[MethodInfo]] = {}
        for prim in PRIMITIVE_ORDER:
            self._add(prim, implicit=True)
        for info in world.classes.values():
            if info.is_builtin:
                self._add(info.type, implicit=True)

    # ------------------------------------------------------------------
    # construction

    def _add(self, type: Type, implicit: bool) -> int:
        if type in self._index:
            return self._index[type]
        entry = TypeEntry(len(self.entries), type, implicit)
        self.entries.append(entry)
        self._index[type] = entry.index
        return entry.index

    def declare_class(self, info: ClassInfo) -> int:
        """Register a user class (declared part of the table)."""
        return self._add(info.type, implicit=False)

    def intern(self, type: Type) -> int:
        """Ensure ``type`` has an index, registering array types on demand."""
        if type in self._index:
            return self._index[type]
        if isinstance(type, ArrayType):
            self.intern(type.element)
            return self._add(type, implicit=False)
        if isinstance(type, ClassType):
            info = self.world.lookup(type.name)
            if info is None:
                raise TypeTableError(f"unknown class type {type}")
            return self._add(info.type, implicit=False)
        raise TypeTableError(f"cannot intern type {type}")

    # ------------------------------------------------------------------
    # lookup

    def index_of(self, type: Type) -> int:
        index = self._index.get(type)
        if index is None:
            raise TypeTableError(f"type {type} is not in the type table")
        return index

    def __contains__(self, type: Type) -> bool:
        return type in self._index

    def type_at(self, index: int) -> Type:
        if not 0 <= index < len(self.entries):
            raise TypeTableError(f"type index {index} out of range")
        return self.entries[index].type

    def __len__(self) -> int:
        return len(self.entries)

    def declared_entries(self) -> list[TypeEntry]:
        return [e for e in self.entries if not e.implicit]

    # ------------------------------------------------------------------
    # member tables (symbolic field / method references)

    def field_table(self, info: ClassInfo) -> list[FieldInfo]:
        """Deterministic list of all fields accessible through ``info``.

        Instance fields come first in slot order (superclass first), then
        static fields from the class chain, outermost superclass first.
        """
        cached = self._field_tables.get(info.name)
        if cached is not None:
            return cached
        table = list(info.all_instance_fields)
        chain: list[ClassInfo] = []
        cls: Optional[ClassInfo] = info
        while cls is not None:
            chain.append(cls)
            cls = cls.superclass
        for cls in reversed(chain):
            table.extend(f for f in cls.fields if f.is_static)
        self._field_tables[info.name] = table
        return table

    def method_table(self, info: ClassInfo) -> list[MethodInfo]:
        """Deterministic list of all methods invocable through ``info``.

        The order is: the visible methods of the class chain, innermost
        class first, each class's declarations in declaration order, with
        overridden superclass declarations omitted.
        """
        cached = self._method_tables.get(info.name)
        if cached is not None:
            return cached
        table: list[MethodInfo] = []
        seen: set[tuple] = set()
        cls: Optional[ClassInfo] = info
        while cls is not None:
            for method in cls.methods:
                if method.is_constructor and cls is not info:
                    # Constructors are not inherited; a super(...) call names
                    # the superclass as its base type and therefore uses the
                    # superclass's own method table.
                    continue
                key = method.signature
                if key not in seen:
                    table.append(method)
                    seen.add(key)
            cls = cls.superclass
        self._method_tables[info.name] = table
        return table

    def field_index(self, info: ClassInfo, field: FieldInfo) -> int:
        table = self.field_table(info)
        for i, candidate in enumerate(table):
            if candidate is field:
                return i
        raise TypeTableError(f"field {field.qualified_name} not reachable from {info.name}")

    def method_index(self, info: ClassInfo, method: MethodInfo) -> int:
        table = self.method_table(info)
        for i, candidate in enumerate(table):
            if candidate is method:
                return i
        raise TypeTableError(
            f"method {method.qualified_name} not reachable from {info.name}")

    def invalidate_member_tables(self) -> None:
        """Drop caches (used after the consumer links decoded classes)."""
        self._field_tables.clear()
        self._method_tables.clear()
