"""Bytecode interpreter: the differential oracle for the SafeTSA pipeline.

Shares the heap model and host runtime with the SafeTSA interpreter, so
any observable divergence between the two executions is a compiler bug,
not an environment difference.
"""

from __future__ import annotations

import math
from typing import Optional

from repro import jmath
from repro.interp.heap import (
    ArrayRef,
    JavaError,
    JStr,
    ObjectRef,
    runtime_class,
    value_instanceof,
)
from repro.interp.runtime import Runtime
from repro.jvm.codegen import CompiledClass, CompiledMethod
from repro.typesys.types import ArrayType, BOOLEAN, ClassType, PrimitiveType
from repro.typesys.world import ClassInfo, MethodInfo, World


class BytecodeError(Exception):
    """Internal interpreter failure (bad code or interpreter bug)."""


class BytecodeInterpreter:
    """Executes compiled classes."""

    def __init__(self, classes: list[CompiledClass], world: World,
                 max_steps: int = 50_000_000):
        self.classes = classes
        self.world = world
        self.runtime = Runtime(world)
        self.runtime.invoke_virtual = self._invoke_virtual_for_runtime
        self.max_steps = max_steps
        self.steps = 0
        self.methods: dict[MethodInfo, CompiledMethod] = {}
        for cls in classes:
            for compiled in cls.methods:
                self.methods[compiled.method] = compiled
        self._initialized = False

    # ------------------------------------------------------------------

    def run_main(self, class_name: Optional[str] = None,
                 method_name: str = "main"):
        from repro.interp.interpreter import ExecutionResult
        target = None
        for method, compiled in self.methods.items():
            if method.name != method_name or not method.is_static:
                continue
            if class_name is not None and \
                    method.declaring.name.split(".")[-1] != \
                    class_name.split(".")[-1]:
                continue
            target = compiled
            break
        if target is None:
            raise BytecodeError(f"no static {method_name} found")
        self._ensure_initialized()
        args = [None] if target.method.param_types else []
        exception = None
        value = None
        try:
            value = self.invoke(target, args)
        except JavaError as error:
            exception = error.value
        return ExecutionResult(value, exception,
                               "".join(self.runtime.stdout), self.steps)

    def _ensure_initialized(self) -> None:
        if self._initialized:
            return
        self._initialized = True
        for cls in self.classes:
            for compiled in cls.methods:
                if compiled.method.name == "<clinit>":
                    self.invoke(compiled, [])

    # ------------------------------------------------------------------

    def invoke(self, compiled: CompiledMethod, args: list):
        locals_: dict[int, object] = {}
        slot = 0
        method = compiled.method
        types = ([method.declaring.type] if not method.is_static else []) \
            + list(method.param_types)
        for value, type in zip(args, types):
            locals_[slot] = value
            slot += 2 if type in _WIDE else 1
        stack: list = []
        pc = 0
        insns = compiled.insns
        while True:
            self.steps += 1
            if self.steps > self.max_steps:
                raise BytecodeError("step limit exceeded")
            if pc >= len(insns):
                raise BytecodeError(
                    f"fell off the end of {method.qualified_name}")
            insn = insns[pc]
            try:
                result = self._step(insn, stack, locals_)
            except JavaError as error:
                handler = self._find_handler(compiled, pc, error.value)
                if handler is None:
                    raise
                stack.clear()
                stack.append(error.value)
                pc = handler
                continue
            if result is None:
                pc += 1
            elif result[0] == "jump":
                pc = result[1]
            elif result[0] == "return":
                return result[1]
            else:  # pragma: no cover
                raise BytecodeError(f"bad step result {result!r}")

    def _find_handler(self, compiled: CompiledMethod, pc: int,
                      exception: ObjectRef) -> Optional[int]:
        for start, end, handler, catch in compiled.exception_table:
            if start <= pc < end:
                if catch is None \
                        or exception.class_info.is_subclass_of(catch):
                    return handler
        return None

    # ------------------------------------------------------------------

    def _step(self, insn, stack: list, locals_: dict):
        op = insn.op
        rt = self.runtime

        # constants -----------------------------------------------------
        if op == "iconst" or op == "lconst":
            stack.append(insn.args[0])
            return None
        if op == "fconst" or op == "dconst":
            stack.append(insn.args[0])
            return None
        if op == "ldc_string":
            stack.append(JStr.intern(insn.args[0]))
            return None
        if op == "aconst_null":
            stack.append(None)
            return None

        # locals ----------------------------------------------------------
        if op in ("iload", "lload", "fload", "dload", "aload"):
            stack.append(locals_.get(insn.args[0]))
            return None
        if op in ("istore", "lstore", "fstore", "dstore", "astore"):
            locals_[insn.args[0]] = stack.pop()
            return None

        # stack ----------------------------------------------------------
        if op == "pop" or op == "pop2":
            stack.pop()
            return None
        if op == "dup":
            stack.append(stack[-1])
            return None
        if op == "dup_x1":
            stack.insert(-2, stack[-1])
            return None
        if op == "swap":
            stack[-1], stack[-2] = stack[-2], stack[-1]
            return None
        if op == "nop":
            return None

        # arithmetic -------------------------------------------------------
        handler = _ARITH.get(op)
        if handler is not None:
            return handler(self, stack)

        # branches ----------------------------------------------------------
        if op in ("goto",):
            return ("jump", insn.args[0])
        if op in _IF_ZERO:
            value = stack.pop()
            if _IF_ZERO[op](value):
                return ("jump", insn.args[0])
            return None
        if op in _IF_ICMP:
            right = stack.pop()
            left = stack.pop()
            if _IF_ICMP[op](left, right):
                return ("jump", insn.args[0])
            return None
        if op == "if_acmpeq" or op == "if_acmpne":
            right = stack.pop()
            left = stack.pop()
            same = left is right
            if same == (op == "if_acmpeq"):
                return ("jump", insn.args[0])
            return None
        if op == "ifnull" or op == "ifnonnull":
            value = stack.pop()
            if (value is None) == (op == "ifnull"):
                return ("jump", insn.args[0])
            return None

        # arrays --------------------------------------------------------------
        if op.endswith("aload") and op != "aload":
            index = stack.pop()
            array = stack.pop()
            self._array_check(array, index)
            stack.append(array.elements[index])
            return None
        if op.endswith("astore") and op != "astore":
            value = stack.pop()
            index = stack.pop()
            array = stack.pop()
            self._array_check(array, index)
            if op == "bastore" and array.array_type.element is BOOLEAN:
                value = bool(value & 1)
            if op == "aastore" and value is not None \
                    and not value_instanceof(self.world, value,
                                             array.array_type.element):
                rt.throw("java.lang.ArrayStoreException",
                         str(array.array_type.element))
            array.elements[index] = value
            return None
        if op == "arraylength":
            array = stack.pop()
            if array is None:
                rt.throw("java.lang.NullPointerException")
            stack.append(array.length)
            return None
        if op == "newarray" or op == "anewarray":
            length = stack.pop()
            if length < 0:
                rt.throw("java.lang.NegativeArraySizeException", str(length))
            if op == "newarray":
                atype = {v: k for k, v in _ATYPE.items()}[insn.args[0]]
                stack.append(ArrayRef(ArrayType(PrimitiveType(atype)),
                                      length))
            else:
                stack.append(ArrayRef(ArrayType(_as_type(insn.args[0])),
                                      length))
            return None
        if op == "multianewarray":
            array_type, dims = insn.args
            lengths = [stack.pop() for _ in range(dims)][::-1]
            stack.append(self._alloc_multi(array_type, lengths))
            return None

        # fields -------------------------------------------------------------
        if op == "getfield":
            obj = stack.pop()
            if obj is None:
                rt.throw("java.lang.NullPointerException")
            stack.append(obj.fields[insn.args[0].slot])
            return None
        if op == "putfield":
            value = stack.pop()
            obj = stack.pop()
            if obj is None:
                rt.throw("java.lang.NullPointerException")
            obj.fields[insn.args[0].slot] = value
            return None
        if op == "getstatic":
            stack.append(rt.get_static(insn.args[0]))
            return None
        if op == "putstatic":
            rt.set_static(insn.args[0], stack.pop())
            return None

        # objects ---------------------------------------------------------------
        if op == "new":
            stack.append(ObjectRef(insn.args[0]))
            return None
        if op == "checkcast":
            value = stack[-1]
            if value is not None \
                    and not value_instanceof(self.world, value,
                                             insn.args[0]):
                rt.throw("java.lang.ClassCastException",
                         str(insn.args[0]))
            return None
        if op == "instanceof":
            value = stack.pop()
            stack.append(value_instanceof(self.world, value, insn.args[0]))
            return None
        if op == "athrow":
            value = stack.pop()
            if value is None:
                rt.throw("java.lang.NullPointerException")
            raise JavaError(value)

        # calls -------------------------------------------------------------------
        if op in ("invokestatic", "invokespecial", "invokevirtual"):
            method: MethodInfo = insn.args[0]
            count = len(method.param_types) \
                + (0 if method.is_static else 1)
            args = [stack.pop() for _ in range(count)][::-1]
            if op == "invokevirtual":
                receiver = args[0]
                if receiver is None:
                    rt.throw("java.lang.NullPointerException")
                method = self._resolve_virtual(receiver, method)
            elif not method.is_static and args[0] is None:
                rt.throw("java.lang.NullPointerException")
            value = self._invoke_any(method, args)
            if method.return_type.descriptor() != "V":
                stack.append(value)
            return None

        # returns -----------------------------------------------------------------
        if op == "return":
            return ("return", None)
        if op.endswith("return"):
            return ("return", stack.pop())

        raise BytecodeError(f"unhandled opcode {op}")

    # ------------------------------------------------------------------

    def _array_check(self, array, index) -> None:
        if array is None:
            self.runtime.throw("java.lang.NullPointerException")
        if not 0 <= index < array.length:
            self.runtime.throw(
                "java.lang.ArrayIndexOutOfBoundsException",
                f"Index {index} out of bounds for length {array.length}")

    def _alloc_multi(self, array_type: ArrayType, lengths: list):
        for length in lengths:
            if length < 0:
                self.runtime.throw(
                    "java.lang.NegativeArraySizeException", str(length))
        array = ArrayRef(array_type, lengths[0])
        if len(lengths) > 1:
            inner = array_type.element
            for i in range(lengths[0]):
                array.elements[i] = self._alloc_multi(inner, lengths[1:])
        return array

    def _resolve_virtual(self, receiver, method: MethodInfo) -> MethodInfo:
        cls = runtime_class(self.world, receiver)
        if cls is None:
            raise BytecodeError("dispatch on non-object")
        if 0 <= method.vtable_slot < len(cls.vtable):
            resolved = cls.vtable[method.vtable_slot]
            if resolved.signature == method.signature:
                return resolved
        for candidate in cls.methods_named(method.name):
            if candidate.signature == method.signature:
                return candidate
        return method

    def _invoke_any(self, method: MethodInfo, args: list):
        if method.is_native:
            return self.runtime.invoke_native(method, args)
        compiled = self.methods.get(method)
        if compiled is None:
            raise BytecodeError(f"no code for {method.qualified_name}")
        return self.invoke(compiled, args)

    def _invoke_virtual_for_runtime(self, receiver, method: MethodInfo):
        resolved = self._resolve_virtual(receiver, method)
        return self._invoke_any(resolved, [receiver])


_WIDE = frozenset([PrimitiveType("long"), PrimitiveType("double")])

_ATYPE = {"boolean": 4, "char": 5, "float": 6, "double": 7,
          "byte": 8, "short": 9, "int": 10, "long": 11}


def _as_type(value):
    return value.type if isinstance(value, ClassInfo) else value


# ----------------------------------------------------------------------
# arithmetic helpers

def _binary(fn):
    def step(interp, stack):
        right = stack.pop()
        left = stack.pop()
        try:
            stack.append(fn(left, right))
        except ZeroDivisionError:
            interp.runtime.throw("java.lang.ArithmeticException",
                                 "/ by zero")
        return None
    return step


def _unary(fn):
    def step(interp, stack):
        stack.append(fn(stack.pop()))
        return None
    return step


def _cmp(nan_result: int):
    def step(interp, stack):
        right = stack.pop()
        left = stack.pop()
        if isinstance(left, float) and (math.isnan(left)
                                        or math.isnan(right)):
            stack.append(nan_result)
        elif left < right:
            stack.append(-1)
        elif left > right:
            stack.append(1)
        else:
            stack.append(0)
        return None
    return step


_ARITH = {
    "iadd": _binary(lambda a, b: jmath.i32(a + b)),
    "isub": _binary(lambda a, b: jmath.i32(a - b)),
    "imul": _binary(lambda a, b: jmath.i32(a * b)),
    "idiv": _binary(lambda a, b: jmath.i32(jmath.idiv(a, b))),
    "irem": _binary(lambda a, b: jmath.i32(jmath.irem(a, b))),
    "ineg": _unary(lambda a: jmath.i32(-a)),
    "ishl": _binary(lambda a, b: jmath.ishl(a, b, 32)),
    "ishr": _binary(lambda a, b: jmath.ishr(a, b, 32)),
    "iushr": _binary(lambda a, b: jmath.iushr(a, b, 32)),
    "iand": _binary(lambda a, b: (bool(a & b)
                                  if isinstance(a, bool) else a & b)),
    "ior": _binary(lambda a, b: (bool(a | b)
                                 if isinstance(a, bool) else a | b)),
    "ixor": _binary(lambda a, b: (bool(a ^ b)
                                  if isinstance(a, bool) else a ^ b)),
    "ladd": _binary(lambda a, b: jmath.i64(a + b)),
    "lsub": _binary(lambda a, b: jmath.i64(a - b)),
    "lmul": _binary(lambda a, b: jmath.i64(a * b)),
    "ldiv": _binary(lambda a, b: jmath.idiv(a, b, 64)),
    "lrem": _binary(lambda a, b: jmath.irem(a, b, 64)),
    "lneg": _unary(lambda a: jmath.i64(-a)),
    "lshl": _binary(lambda a, b: jmath.ishl(a, b, 64)),
    "lshr": _binary(lambda a, b: jmath.ishr(a, b, 64)),
    "lushr": _binary(lambda a, b: jmath.iushr(a, b, 64)),
    "land": _binary(lambda a, b: a & b),
    "lor": _binary(lambda a, b: a | b),
    "lxor": _binary(lambda a, b: a ^ b),
    "fadd": _binary(lambda a, b: jmath.f32(a + b)),
    "fsub": _binary(lambda a, b: jmath.f32(a - b)),
    "fmul": _binary(lambda a, b: jmath.f32(a * b)),
    "fdiv": _binary(lambda a, b: jmath.f32(jmath.fdiv(a, b))),
    "frem": _binary(lambda a, b: jmath.f32(jmath.frem(a, b))),
    "fneg": _unary(lambda a: jmath.f32(-a)),
    "dadd": _binary(lambda a, b: a + b),
    "dsub": _binary(lambda a, b: a - b),
    "dmul": _binary(lambda a, b: a * b),
    "ddiv": _binary(jmath.fdiv),
    "drem": _binary(jmath.frem),
    "dneg": _unary(lambda a: -a),
    "i2l": _unary(lambda a: a),
    "i2f": _unary(lambda a: jmath.f32(float(a))),
    "i2d": _unary(lambda a: float(a)),
    "i2c": _unary(jmath.i2c),
    "l2i": _unary(jmath.l2i),
    "l2f": _unary(lambda a: jmath.f32(float(a))),
    "l2d": _unary(lambda a: float(a)),
    "f2i": _unary(jmath.d2i),
    "f2l": _unary(jmath.d2l),
    "f2d": _unary(lambda a: a),
    "d2i": _unary(jmath.d2i),
    "d2l": _unary(jmath.d2l),
    "d2f": _unary(jmath.f32),
    "lcmp": _cmp(0),
    "fcmpl": _cmp(-1),
    "fcmpg": _cmp(1),
    "dcmpl": _cmp(-1),
    "dcmpg": _cmp(1),
}

_IF_ZERO = {
    "ifeq": lambda v: v == 0,
    "ifne": lambda v: v != 0,
    "iflt": lambda v: v < 0,
    "ifge": lambda v: v >= 0,
    "ifgt": lambda v: v > 0,
    "ifle": lambda v: v <= 0,
}

_IF_ICMP = {
    "if_icmpeq": lambda a, b: a == b,
    "if_icmpne": lambda a, b: a != b,
    "if_icmplt": lambda a, b: a < b,
    "if_icmpge": lambda a, b: a >= b,
    "if_icmpgt": lambda a, b: a > b,
    "if_icmple": lambda a, b: a <= b,
}
