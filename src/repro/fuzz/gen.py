"""Seeded, deterministic MiniJava++ program generator.

One grammar, two front doors: the fuzz campaign draws decisions from a
:class:`RandomSource` (``random.Random(seed)``), the property tests draw
the *same* grammar through a hypothesis strategy
(:func:`program_strategy`), so shrinking still works.  Everything the
generator emits is a closed, type-correct program whose ``Main.main``
terminates quickly:

* loops always count a dedicated variable the statement grammar cannot
  reassign (``for`` indices ``i<n>``, ``while`` counters ``w<n>``);
* ``/`` and ``%`` appear either with an ``(x | 1)`` divisor (never
  zero) or inside a ``try/catch (ArithmeticException)``;
* unguarded array indices are masked to the array length, deliberately
  risky ones sit inside ``try/catch (ArrayIndexOutOfBoundsException)``.

The grammar deliberately spans the features the SafeTSA encoding treats
specially: class hierarchies and virtual dispatch (method tables),
fields (memory dependence), arrays (safe-index planes),
``try/catch/finally`` (exception subblocks and dispatch), short-circuit
operators (lowered to control flow), ``switch``, ``break``/``continue``
and labeled loops (CST productions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence


# ======================================================================
# decision sources

class DrawSource:
    """Where the generator's choices come from (seeded RNG or hypothesis)."""

    def integer(self, lo: int, hi: int) -> int:
        raise NotImplementedError

    def choice(self, options: Sequence):
        return options[self.integer(0, len(options) - 1)]

    def boolean(self) -> bool:
        return self.integer(0, 1) == 1


class RandomSource(DrawSource):
    """Deterministic draws from ``random.Random(seed)``."""

    def __init__(self, seed) -> None:
        self.rng = seed if isinstance(seed, random.Random) \
            else random.Random(seed)

    def integer(self, lo: int, hi: int) -> int:
        return self.rng.randint(lo, hi)


class HypothesisSource(DrawSource):
    """Adapter drawing every decision through a hypothesis ``draw``
    function, so the shared grammar becomes a shrinkable strategy."""

    def __init__(self, draw) -> None:
        self._draw = draw
        from hypothesis import strategies as st
        self._st = st

    def integer(self, lo: int, hi: int) -> int:
        return self._draw(self._st.integers(min_value=lo, max_value=hi))


# ======================================================================
# the grammar

_INT_BIN_OPS = ("+", "-", "*", "&", "|", "^")
_SHIFT_OPS = ("<<", ">>", ">>>")
_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_INT_VARS = ("a", "b", "c")
_MAX_EXPR_DEPTH = 3
_MAX_STMT_DEPTH = 2
_ARRAY_LEN = 8  # power of two: `& 7` masks any index into range


@dataclass(frozen=True)
class GeneratedProgram:
    """A generated source text plus how to run it."""

    source: str
    main_class: str = "Main"
    seed: int | None = None


class _ProgramBuilder:
    def __init__(self, src: DrawSource) -> None:
        self.src = src
        self._fresh = 0

    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    # -- expressions ----------------------------------------------------

    def int_expr(self, depth: int = 0) -> str:
        src = self.src
        if depth >= _MAX_EXPR_DEPTH or src.boolean():
            kind = src.integer(0, 2)
            if kind == 0:
                return str(src.integer(-100, 100))
            return src.choice(_INT_VARS)
        kind = src.integer(0, 4)
        left = self.int_expr(depth + 1)
        right = self.int_expr(depth + 1)
        if kind == 0:  # division/modulo with a provably nonzero divisor
            op = src.choice(("/", "%"))
            return f"({left} {op} ({right} | 1))"
        if kind == 1:  # shift with a masked count
            op = src.choice(_SHIFT_OPS)
            return f"({left} {op} ({right} & 7))"
        if kind == 2:  # ternary
            return f"({self.bool_expr(depth + 1)} ? {left} : {right})"
        op = src.choice(_INT_BIN_OPS)
        return f"({left} {op} {right})"

    def bool_expr(self, depth: int = 0) -> str:
        src = self.src
        if depth < _MAX_EXPR_DEPTH - 1 and src.integer(0, 3) == 0:
            op = src.choice(("&&", "||"))
            return (f"({self.bool_expr(depth + 1)} {op} "
                    f"{self.bool_expr(depth + 1)})")
        if src.integer(0, 5) == 0:
            return f"(!{self.bool_expr(depth + 1)})" \
                if depth < _MAX_EXPR_DEPTH else "true"
        left = self.int_expr(max(depth, 2))
        right = self.int_expr(max(depth, 2))
        return f"({left} {src.choice(_CMP_OPS)} {right})"

    def index_expr(self) -> str:
        """An always-in-range array index."""
        return f"({self.int_expr(2)} & {_ARRAY_LEN - 1})"

    # -- statements -----------------------------------------------------

    def statement(self, depth: int = 0) -> str:
        src = self.src
        kind = src.integer(0, 15 if depth < _MAX_STMT_DEPTH else 4)
        var = src.choice(_INT_VARS)
        if kind in (0, 1):
            return f"{var} = {self.int_expr()};"
        if kind == 2:
            return f"arr[{self.index_expr()}] = {self.int_expr(1)};"
        if kind == 3:
            return f"{var} = arr[{self.index_expr()}];"
        if kind == 4:
            return f"{var} = s.weigh({self.int_expr(2)});"
        if kind == 5:
            then_body = self.statement(depth + 1)
            if src.boolean():
                return f"if {self.bool_expr()} {{ {then_body} }}"
            return (f"if {self.bool_expr()} {{ {then_body} }} "
                    f"else {{ {self.statement(depth + 1)} }}")
        if kind == 6:
            index = self.fresh("i")
            bound = src.integer(1, 5)
            body = self.statement(depth + 1)
            extra = ""
            if src.boolean():
                extra = (f"if {self.bool_expr()} "
                         f"{{ {src.choice(('break', 'continue'))}; }} ")
            return (f"for (int {index} = 0; {index} < {bound}; "
                    f"{index}++) {{ {extra}{body} }}")
        if kind == 7:
            counter = self.fresh("w")
            bound = src.integer(1, 4)
            return (f"{{ int {counter} = {bound}; "
                    f"while ({counter} > 0) {{ {counter} = {counter} - 1; "
                    f"{self.statement(depth + 1)} }} }}")
        if kind == 8:  # trapping division, caught
            handler = self.fresh("e")
            body = self.statement(depth + 1)
            stmt = (f"try {{ {var} = {var} / {src.choice(_INT_VARS)}; "
                    f"{body} }} catch (ArithmeticException {handler}) "
                    f"{{ {var} = -9; }}")
            if src.boolean():
                other = src.choice(_INT_VARS)
                stmt += f" finally {{ {other} = {other} + 1; }}"
            return stmt
        if kind == 9:  # deliberately risky array access, caught
            handler = self.fresh("e")
            return (f"try {{ {var} = arr[{src.choice(_INT_VARS)}]; }} "
                    f"catch (ArrayIndexOutOfBoundsException {handler}) "
                    f"{{ {var} = {src.integer(-50, 50)}; }}")
        if kind == 10:
            body = self.statement(depth + 1)
            return (f"switch ({var} & 3) {{ case 0: {var} = 1; "
                    f"case 1: {var} = 2; break; case 2: {body} break; "
                    f"default: {var} = {src.integer(-20, 20)}; }}")
        if kind == 11:  # virtual-dispatch target changes mid-flight
            cls = src.choice(("Shape", "Ring"))
            return f"s = new {cls}(); s.tag = {self.int_expr(2)};"
        if kind == 12:
            return f"{var} = h({self.int_expr(2)});"
        if kind == 13:
            counter = self.fresh("d")  # do/while with a dedicated counter
            bound = src.integer(1, 3)
            return (f"{{ int {counter} = {bound}; "
                    f"do {{ {counter} = {counter} - 1; "
                    f"{self.statement(depth + 1)} }} "
                    f"while ({counter} > 0); }}")
        if kind == 14:  # loop-invariant array traffic (licm/hoist fodder)
            index = self.fresh("li")
            bound = src.integer(2, 6)
            inv = src.choice(_INT_VARS)
            return (f"for (int {index} = 0; {index} < {bound}; {index}++) "
                    f"{{ {var} = {var} + arr[{inv} & {_ARRAY_LEN - 1}] "
                    f"+ {inv} * {inv} + arr.length; }}")
        # nested loop: the inner bound, element index and store target
        # are all invariant for the inner loop but not the outer one
        outer = self.fresh("lo")
        inner = self.fresh("ln")
        return (f"for (int {outer} = 0; {outer} < {src.integer(2, 4)}; "
                f"{outer}++) {{ "
                f"for (int {inner} = 0; {inner} < arr.length; {inner}++) "
                f"{{ {var} = {var} + arr[{outer} & {_ARRAY_LEN - 1}]; }} "
                f"arr[{outer} & {_ARRAY_LEN - 1}] = {var}; }}")

    # -- whole programs -------------------------------------------------

    def program(self) -> GeneratedProgram:
        src = self.src
        count = src.integer(1, 6)
        statements = [self.statement() for _ in range(count)]
        helper_body = self.int_expr(1)
        weigh_shape = self.int_expr(2).replace("a", "x") \
            .replace("b", "tag").replace("c", "x")
        weigh_ring = self.int_expr(2).replace("a", "tag") \
            .replace("b", "x").replace("c", "x")
        fill_mul = src.integer(-9, 9)
        fill_add = src.integer(-9, 9)
        body = "\n        ".join(statements)
        source = f"""\
class Shape {{
    int tag;
    int weigh(int x) {{ return {weigh_shape}; }}
}}
class Ring extends Shape {{
    int weigh(int x) {{ return {weigh_ring}; }}
}}
class Main {{
    static int h(int x) {{
        int a = x; int b = x - 1; int c = 7;
        return {helper_body};
    }}
    static void main() {{
        int a = {src.integer(-100, 100)};
        int b = {src.integer(-100, 100)};
        int c = {src.integer(-100, 100)};
        int[] arr = new int[{_ARRAY_LEN}];
        for (int f0 = 0; f0 < {_ARRAY_LEN}; f0++) {{
            arr[f0] = f0 * {fill_mul} + {fill_add};
        }}
        Shape s = new {src.choice(('Shape', 'Ring'))}();
        s.tag = {src.integer(-50, 50)};
        {body}
        int sum = 0;
        for (int f1 = 0; f1 < {_ARRAY_LEN}; f1++) {{ sum += arr[f1]; }}
        System.out.println(a + " " + b + " " + c + " " + sum
                           + " " + s.weigh(a) + " " + s.tag);
    }}
}}
"""
        return GeneratedProgram(source)


# ======================================================================
# public entry points

def generate(src: DrawSource) -> GeneratedProgram:
    """Generate one program from an abstract decision source."""
    return _ProgramBuilder(src).program()


def generate_seeded(seed: int) -> GeneratedProgram:
    """Deterministic generation: the same seed yields the same source."""
    program = generate(RandomSource(seed))
    return GeneratedProgram(program.source, program.main_class, seed)


def program_strategy():
    """The shared grammar as a hypothesis strategy of
    :class:`GeneratedProgram` values.

    Property tests (``tests/test_properties.py``) and the fuzz campaign
    draw from this one grammar; hypothesis drives the decisions, so
    failing examples still shrink.
    """
    from hypothesis import strategies as st

    @st.composite
    def _programs(draw) -> GeneratedProgram:
        return generate(HypothesisSource(draw))

    return _programs()
