// Stand-in for sun.math.BigDecimal: fixed-point arithmetic over scaled
// longs with explicit rounding -- long arithmetic, exceptions, and
// string formatting.
class DecimalError extends RuntimeException {
    DecimalError(String message) { super(message); }
}

class BigDecimalLite {
    long unscaled;
    int scale;   // digits after the point, 0..9

    BigDecimalLite(long unscaled, int scale) {
        if (scale < 0 || scale > 9) {
            throw new DecimalError("scale out of range: " + scale);
        }
        this.unscaled = unscaled;
        this.scale = scale;
    }

    static long pow10(int n) {
        long result = 1;
        for (int i = 0; i < n; i++) {
            result = result * 10;
        }
        return result;
    }

    BigDecimalLite rescale(int newScale) {
        if (newScale == scale) return this;
        if (newScale > scale) {
            return new BigDecimalLite(
                unscaled * pow10(newScale - scale), newScale);
        }
        long factor = pow10(scale - newScale);
        long quotient = unscaled / factor;
        long remainder = unscaled % factor;
        // round half up, away from zero
        long half = factor / 2;
        if (remainder >= half) quotient = quotient + 1;
        if (-remainder >= half) quotient = quotient - 1;
        return new BigDecimalLite(quotient, newScale);
    }

    BigDecimalLite add(BigDecimalLite other) {
        int common = scale > other.scale ? scale : other.scale;
        BigDecimalLite a = rescale(common);
        BigDecimalLite b = other.rescale(common);
        return new BigDecimalLite(a.unscaled + b.unscaled, common);
    }

    BigDecimalLite subtract(BigDecimalLite other) {
        return add(new BigDecimalLite(-other.unscaled, other.scale));
    }

    BigDecimalLite multiply(BigDecimalLite other) {
        int combined = scale + other.scale;
        BigDecimalLite exact =
            new BigDecimalLite(unscaled * other.unscaled,
                               combined > 9 ? 9 : combined);
        if (combined > 9) {
            long factor = pow10(combined - 9);
            exact = new BigDecimalLite(
                unscaled * other.unscaled / factor, 9);
        }
        return exact;
    }

    BigDecimalLite divide(BigDecimalLite other, int resultScale) {
        if (other.unscaled == 0) {
            throw new DecimalError("division by zero");
        }
        long numerator = unscaled * pow10(resultScale + other.scale - scale);
        long quotient = numerator / other.unscaled;
        long remainder = numerator % other.unscaled;
        if (2 * Math.abs(remainder) >= Math.abs(other.unscaled)) {
            if ((numerator < 0) == (other.unscaled < 0)) {
                quotient = quotient + 1;
            } else {
                quotient = quotient - 1;
            }
        }
        return new BigDecimalLite(quotient, resultScale);
    }

    int compareTo(BigDecimalLite other) {
        int common = scale > other.scale ? scale : other.scale;
        long a = rescale(common).unscaled;
        long b = other.rescale(common).unscaled;
        if (a < b) return -1;
        if (a > b) return 1;
        return 0;
    }

    String format() {
        long magnitude = unscaled < 0 ? -unscaled : unscaled;
        String sign = unscaled < 0 ? "-" : "";
        if (scale == 0) return sign + magnitude;
        long factor = pow10(scale);
        long whole = magnitude / factor;
        long fraction = magnitude % factor;
        String digits = "" + (fraction + factor);
        return sign + whole + "." + digits.substring(1);
    }

    static void main() {
        BigDecimalLite price = new BigDecimalLite(1999, 2);      // 19.99
        BigDecimalLite rate = new BigDecimalLite(825, 4);        // 0.0825
        BigDecimalLite tax = price.multiply(rate).rescale(2);
        BigDecimalLite total = price.add(tax);
        System.out.println("price=" + price.format());
        System.out.println("tax=" + tax.format());
        System.out.println("total=" + total.format());

        BigDecimalLite third = new BigDecimalLite(1, 0)
            .divide(new BigDecimalLite(3, 0), 6);
        System.out.println("third=" + third.format());
        System.out.println("cmp=" + third.compareTo(new BigDecimalLite(333334, 6)));

        // compound interest, 12 periods
        BigDecimalLite balance = new BigDecimalLite(100000, 2);  // 1000.00
        BigDecimalLite growth = new BigDecimalLite(10050, 4);    // 1.0050
        for (int month = 0; month < 12; month++) {
            balance = balance.multiply(growth).rescale(2);
        }
        System.out.println("balance=" + balance.format());

        try {
            price.divide(new BigDecimalLite(0, 0), 2);
            System.out.println("unreachable");
        } catch (DecimalError e) {
            System.out.println("caught: " + e.getMessage());
        }
        try {
            BigDecimalLite bad = new BigDecimalLite(1, 12);
            System.out.println("unreachable " + bad.format());
        } catch (DecimalError e) {
            System.out.println("caught: " + e.getMessage());
        }
    }
}
