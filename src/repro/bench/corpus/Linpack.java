// The paper's array-check showcase: a Linpack port (LU factorisation with
// partial pivoting and back-substitution over double[][]).  daxpy/ddot
// access the same array elements repeatedly, which is where SafeTSA's
// bounds-check CSE pays off.
class Linpack {
    static int seed;

    static double random() {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        return ((double) seed) / 2147483647.0 - 0.5;
    }

    static double matgen(double[][] a, int lda, int n, double[] b) {
        seed = 1325;
        double norma = 0.0;
        for (int j = 0; j < n; j++) {
            for (int i = 0; i < n; i++) {
                a[j][i] = random();
                if (a[j][i] > norma) norma = a[j][i];
            }
        }
        for (int i = 0; i < n; i++) {
            b[i] = 0.0;
        }
        for (int j = 0; j < n; j++) {
            for (int i = 0; i < n; i++) {
                b[i] = b[i] + a[j][i];
            }
        }
        return norma;
    }

    static int idamax(int n, double[] dx, int dxOff, int incx) {
        int itemp = 0;
        if (n < 1) return -1;
        if (n == 1) return 0;
        double dmax = Math.abs(dx[dxOff]);
        for (int i = 1; i < n; i++) {
            double candidate = Math.abs(dx[dxOff + i * incx]);
            if (candidate > dmax) {
                itemp = i;
                dmax = candidate;
            }
        }
        return itemp;
    }

    static void dscal(int n, double da, double[] dx, int dxOff, int incx) {
        for (int i = 0; i < n * incx; i += incx) {
            dx[dxOff + i] = da * dx[dxOff + i];
        }
    }

    static void daxpy(int n, double da, double[] dx, int dxOff,
                      double[] dy, int dyOff) {
        if (n <= 0 || da == 0.0) return;
        for (int i = 0; i < n; i++) {
            dy[dyOff + i] = dy[dyOff + i] + da * dx[dxOff + i];
        }
    }

    static double ddot(int n, double[] dx, int dxOff,
                       double[] dy, int dyOff) {
        double total = 0.0;
        for (int i = 0; i < n; i++) {
            total = total + dx[dxOff + i] * dy[dyOff + i];
        }
        return total;
    }

    // LU factorisation with partial pivoting (column-oriented)
    static int dgefa(double[][] a, int lda, int n, int[] ipvt) {
        int info = 0;
        int nm1 = n - 1;
        for (int k = 0; k < nm1; k++) {
            double[] colK = a[k];
            int kp1 = k + 1;
            int l = idamax(n - k, colK, k, 1) + k;
            ipvt[k] = l;
            if (colK[l] == 0.0) {
                info = k;
                continue;
            }
            if (l != k) {
                double t = colK[l];
                colK[l] = colK[k];
                colK[k] = t;
            }
            double t = -1.0 / colK[k];
            dscal(n - kp1, t, colK, kp1, 1);
            for (int j = kp1; j < n; j++) {
                double[] colJ = a[j];
                double pivot = colJ[l];
                if (l != k) {
                    colJ[l] = colJ[k];
                    colJ[k] = pivot;
                }
                daxpy(n - kp1, pivot, colK, kp1, colJ, kp1);
            }
        }
        ipvt[n - 1] = n - 1;
        if (a[n - 1][n - 1] == 0.0) info = n - 1;
        return info;
    }

    static void dgesl(double[][] a, int lda, int n, int[] ipvt, double[] b) {
        int nm1 = n - 1;
        for (int k = 0; k < nm1; k++) {
            int l = ipvt[k];
            double t = b[l];
            if (l != k) {
                b[l] = b[k];
                b[k] = t;
            }
            daxpy(n - k - 1, t, a[k], k + 1, b, k + 1);
        }
        for (int kb = 0; kb < n; kb++) {
            int k = n - kb - 1;
            b[k] = b[k] / a[k][k];
            double t = -b[k];
            daxpy(k, t, a[k], 0, b, 0);
        }
    }

    static double epslon(double x) {
        double eps = 1.0;
        while (1.0 + eps / 2.0 != 1.0) {
            eps = eps / 2.0;
        }
        return eps * Math.abs(x);
    }

    static void main() {
        int n = 24;
        int lda = n;
        double[][] a = new double[n][n];
        double[] b = new double[n];
        double[] x = new double[n];
        int[] ipvt = new int[n];

        double norma = matgen(a, lda, n, b);
        int info = dgefa(a, lda, n, ipvt);
        dgesl(a, lda, n, ipvt, b);
        for (int i = 0; i < n; i++) {
            x[i] = b[i];
        }

        // residual check: solution should be all ones
        norma = matgen(a, lda, n, b);
        for (int i = 0; i < n; i++) {
            b[i] = -b[i];
        }
        // b = A*x + b
        for (int j = 0; j < n; j++) {
            daxpy(n, x[j], a[j], 0, b, 0);
        }
        double resid = 0.0;
        double normx = 0.0;
        for (int i = 0; i < n; i++) {
            if (Math.abs(b[i]) > resid) resid = Math.abs(b[i]);
            if (Math.abs(x[i]) > normx) normx = Math.abs(x[i]);
        }
        double eps = epslon(1.0);
        double residn = resid / (n * norma * normx * eps);
        System.out.println("info=" + info);
        System.out.println("solved=" + (residn < 100.0));
        long checksum = 0;
        for (int i = 0; i < n; i++) {
            checksum = checksum + (long) (x[i] * 1000.0 + 0.5);
        }
        System.out.println("checksum=" + checksum);
    }
}
