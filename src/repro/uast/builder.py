"""Builds normalised UAST method bodies from the typed front-end AST.

The builder performs every lowering listed in :mod:`repro.uast`: the output
contains only the structured constructs the SSA generator understands, all
expressions are free of assignments and control flow, and every
``break``/``continue``/``return`` that crosses a ``finally`` has been routed
through its mode-variable dispatch.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.frontend.semantics import conversion_ops
from repro.typesys.ops import Operation, lookup_op
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    NullType,
    PrimitiveType,
    Type,
    VOID,
)
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World
from repro.uast import nodes as u

_OBJECT = ClassType("java.lang.Object")
_STRING = ClassType("java.lang.String")
_THROWABLE = ClassType("java.lang.Throwable")


class _LoopEntry:
    """A break/continue target on the builder's control stack."""

    __slots__ = ("kind", "label", "break_id", "continue_id",
                 "continue_is_break", "finally_depth")

    def __init__(self, kind: str, label: Optional[str], break_id: int,
                 continue_id: Optional[int], finally_depth: int,
                 continue_is_break: bool = False):
        self.kind = kind  # 'loop' | 'switch' | 'labeled'
        self.label = label
        self.break_id = break_id
        self.continue_id = continue_id
        #: True when continue must exit a labeled region (for-loop update
        #: code, effectful do-while condition) rather than jump to a header
        self.continue_is_break = continue_is_break
        self.finally_depth = finally_depth


class _FinallyFrame:
    """State for one enclosing ``finally`` during lowering."""

    __slots__ = ("mode_local", "exc_local", "exit_label_id", "transfers")

    def __init__(self, mode_local, exc_local, exit_label_id: int):
        self.mode_local = mode_local
        self.exc_local = exc_local
        self.exit_label_id = exit_label_id
        #: spec -> mode code; specs are ('throw',), ('return',),
        #: ('break', id(entry)...) -- see _transfer_spec
        self.transfers: dict[tuple, int] = {}

    def code_for(self, spec: tuple) -> int:
        if spec == ("throw",):
            return 1
        if spec not in self.transfers:
            self.transfers[spec] = 2 + len(self.transfers)
        return self.transfers[spec]


class UastBuilder:
    """Lowers one class's method bodies to UAST."""

    def __init__(self, world: World):
        self.world = world
        self._temp_count = 0
        self._label_count = 0
        # per-method state
        self._locals: list[ast.LocalVar] = []
        self._this_local: Optional[ast.LocalVar] = None
        self._loop_stack: list[_LoopEntry] = []
        self._finally_stack: list[_FinallyFrame] = []
        self._ret_local: Optional[ast.LocalVar] = None
        self._return_type: Type = VOID
        self._used_targets: set[int] = set()

    # ==================================================================
    # entry points

    def build_class(self, decl: ast.ClassDecl) -> list[u.UMethod]:
        info: ClassInfo = decl.info
        instance_inits = [m for m in decl.members
                          if isinstance(m, ast.FieldDecl)
                          and not m.is_static and m.init is not None]
        static_inits = [m for m in decl.members
                        if isinstance(m, ast.FieldDecl)
                        and m.is_static and m.init is not None]
        built: list[u.UMethod] = []
        for member in decl.members:
            if isinstance(member, ast.MethodDecl) and member.body is not None:
                built.append(self.build_method(info, member, instance_inits))
        # synthesized default constructor
        default_ctor = next((m for m in info.methods
                             if m.is_constructor and m.ast_body is None
                             and not m.is_native), None)
        if default_ctor is not None:
            built.append(self._build_default_ctor(info, default_ctor,
                                                  instance_inits))
        if static_inits:
            built.append(self._build_clinit(info, static_inits))
        return built

    def _reset(self, method: MethodInfo, info: ClassInfo) -> None:
        self._locals = []
        self._loop_stack = []
        self._finally_stack = []
        self._ret_local = None
        self._return_type = method.return_type
        self._used_targets = set()
        if method.is_static:
            self._this_local = None
        else:
            self._this_local = ast.LocalVar("this", info.type, 0,
                                            is_param=True, is_this=True)
            self._locals.append(self._this_local)

    def build_method(self, info: ClassInfo, decl: ast.MethodDecl,
                     instance_inits: list[ast.FieldDecl]) -> u.UMethod:
        method: MethodInfo = decl.method
        self._reset(method, info)
        for param in decl.params:
            self._locals.append(param.local)
        stmts: list[u.UStmt] = []
        body_stmts = list(decl.body.stmts)
        if method.is_constructor:
            stmts.extend(self._ctor_prologue(info, body_stmts,
                                             instance_inits))
        for stmt in body_stmts:
            stmts.extend(self.stmt(stmt))
        body = u.SBlock(stmts)
        result = u.UMethod(method, list(self._locals), body)
        method.uast_body = result
        return result

    def _ctor_prologue(self, info: ClassInfo, body_stmts: list[ast.Stmt],
                       instance_inits: list[ast.FieldDecl]) -> list[u.UStmt]:
        """Explicit/implicit super() or this() call plus field initializers."""
        out: list[u.UStmt] = []
        delegated = False
        if body_stmts and isinstance(body_stmts[0], ast.ExprStmt) \
                and isinstance(body_stmts[0].expr, ast.CtorCall):
            call: ast.CtorCall = body_stmts.pop(0).expr
            prelude, args = self._lower_args(call.args, call.method)
            out.extend(prelude)
            out.append(u.SEval(u.ECall(
                call.method, u.ELocal(self._this_local), args,
                dispatch=False,
                base=(info.superclass if call.is_super else info))))
            delegated = not call.is_super
        else:
            out.extend(self._implicit_super_call(info))
        if not delegated:
            for field_decl in instance_inits:
                prelude, value = self.expr(field_decl.init)
                out.extend(prelude)
                out.append(u.SFieldWrite(u.ELocal(self._this_local),
                                         field_decl.field,
                                         self._as_type(value,
                                                       field_decl.field.type)))
        return out

    def _implicit_super_call(self, info: ClassInfo) -> list[u.UStmt]:
        parent = info.superclass
        ctor = next((m for m in parent.methods
                     if m.is_constructor and not m.param_types), None)
        if ctor is None:
            raise CompileError(
                f"superclass {parent.name} has no no-arg constructor "
                f"for implicit super() in {info.name}")
        return [u.SEval(u.ECall(ctor, u.ELocal(self._this_local), [],
                                dispatch=False, base=parent))]

    def _build_default_ctor(self, info: ClassInfo, ctor: MethodInfo,
                            instance_inits: list[ast.FieldDecl]) -> u.UMethod:
        self._reset(ctor, info)
        stmts = self._ctor_prologue(info, [], instance_inits)
        result = u.UMethod(ctor, list(self._locals), u.SBlock(stmts))
        ctor.uast_body = result
        return result

    def _build_clinit(self, info: ClassInfo,
                      static_inits: list[ast.FieldDecl]) -> u.UMethod:
        clinit = MethodInfo("<clinit>", [], VOID, is_static=True)
        info.add_method(clinit)
        self._reset(clinit, info)
        stmts: list[u.UStmt] = []
        for field_decl in static_inits:
            prelude, value = self.expr(field_decl.init)
            stmts.extend(prelude)
            stmts.append(u.SStaticWrite(
                field_decl.field,
                self._as_type(value, field_decl.field.type)))
        result = u.UMethod(clinit, list(self._locals), u.SBlock(stmts))
        clinit.uast_body = result
        return result

    # ==================================================================
    # small helpers

    def _temp(self, type: Type) -> ast.LocalVar:
        self._temp_count += 1
        local = ast.LocalVar(f"$t{self._temp_count}", type,
                             len(self._locals), is_synthetic=True)
        self._locals.append(local)
        return local

    def _new_target(self) -> int:
        self._label_count += 1
        return self._label_count

    def _as_type(self, expr: u.UExpr, target: Type) -> u.UExpr:
        """Adjust a value to live on the plane of ``target``."""
        if isinstance(expr.type, NullType) and target.is_reference():
            return u.EConst(target, None)
        if expr.type == target:
            return expr
        if expr.type.is_reference() and target.is_reference():
            return u.EWidenRef(target, expr)
        if isinstance(expr.type, PrimitiveType) \
                and isinstance(target, PrimitiveType):
            for op in conversion_ops(expr.type, target):
                expr = u.EPrim(op, [expr])
            return expr
        raise CompileError(f"cannot adapt {expr.type} to {target}")

    def _hoist(self, prelude: list[u.UStmt],
               expr: u.UExpr) -> u.UExpr:
        """Force ``expr`` into a temp; extends ``prelude`` in place."""
        if isinstance(expr, u.EConst):
            return expr
        temp = self._temp(expr.type)
        prelude.append(u.SLocalWrite(temp, expr))
        return u.ELocal(temp)

    def _lower_ordered(self, exprs: list[ast.Expr]) \
            -> tuple[list[u.UStmt], list[u.UExpr]]:
        """Lower several expressions preserving left-to-right evaluation.

        When a later expression needs prelude statements, all earlier
        non-constant results are hoisted into temps so their values are
        captured before the prelude's side effects run.
        """
        prelude: list[u.UStmt] = []
        results: list[u.UExpr] = []
        for expr in exprs:
            inner_prelude, value = self.expr(expr)
            if inner_prelude:
                results = [r if isinstance(r, u.EConst)
                           else self._hoist(prelude, r) for r in results]
                prelude.extend(inner_prelude)
            results.append(value)
        return prelude, results

    def _lower_args(self, args: list[ast.Expr], method: MethodInfo) \
            -> tuple[list[u.UStmt], list[u.UExpr]]:
        prelude, values = self._lower_ordered(args)
        adapted = [self._as_type(value, param)
                   for value, param in zip(values, method.param_types)]
        return prelude, adapted

    # ==================================================================
    # statements

    def stmt(self, stmt: ast.Stmt) -> list[u.UStmt]:
        handler = getattr(self, "_stmt_" + type(stmt).__name__.lower(), None)
        if handler is None:
            raise CompileError(
                f"UAST builder: unsupported statement {type(stmt).__name__}",
                stmt.pos)
        return handler(stmt)

    def _stmt_block(self, stmt: ast.Block) -> list[u.UStmt]:
        out: list[u.UStmt] = []
        for inner in stmt.stmts:
            out.extend(self.stmt(inner))
        return [u.SBlock(out)]

    def _stmt_emptystmt(self, stmt: ast.EmptyStmt) -> list[u.UStmt]:
        return []

    def _stmt_localvardecl(self, stmt: ast.LocalVarDecl) -> list[u.UStmt]:
        out: list[u.UStmt] = []
        for local, init in stmt.declarators:
            if init is None:
                continue
            prelude, value = self.expr(init)
            out.extend(prelude)
            out.append(u.SLocalWrite(local, self._as_type(value, local.type)))
        return out

    def _stmt_exprstmt(self, stmt: ast.ExprStmt) -> list[u.UStmt]:
        prelude, value = self.expr(stmt.expr)
        if not isinstance(value, (u.EConst, u.ELocal)):
            prelude = prelude + [u.SEval(value)]
        return prelude

    def _lower_cond(self, cond: ast.Expr) -> tuple[list[u.UStmt], u.UExpr]:
        return self.expr(cond)

    def _stmt_ifstmt(self, stmt: ast.IfStmt) -> list[u.UStmt]:
        prelude, cond = self._lower_cond(stmt.cond)
        then_body = u.SBlock(self.stmt(stmt.then_stmt))
        else_body = (u.SBlock(self.stmt(stmt.else_stmt))
                     if stmt.else_stmt is not None else None)
        return prelude + [u.SIf(cond, then_body, else_body)]

    def _stmt_whilestmt(self, stmt: ast.WhileStmt,
                        label: Optional[str] = None) -> list[u.UStmt]:
        prelude, cond = self._lower_cond(stmt.cond)
        break_id = self._new_target()
        continue_id = self._new_target()
        entry = _LoopEntry("loop", label, break_id, continue_id,
                           len(self._finally_stack))
        self._loop_stack.append(entry)
        body = u.SBlock(self.stmt(stmt.body))
        self._loop_stack.pop()
        if not prelude:
            return [u.SWhile(break_id, continue_id, cond, body)]
        # effectful condition: while(true) { prelude; if(!c) break; body }
        not_cond = u.EPrim(lookup_op(BOOLEAN, "not"), [cond])
        self._used_targets.add(break_id)
        inner = u.SBlock(prelude
                         + [u.SIf(not_cond, u.SBreak(break_id), None), body])
        return [u.SWhile(break_id, continue_id, u.EConst(BOOLEAN, True),
                         inner)]

    def _stmt_dowhilestmt(self, stmt: ast.DoWhileStmt,
                          label: Optional[str] = None) -> list[u.UStmt]:
        # Lower the condition first so we know whether it needs a prelude
        # (temp creation order does not affect semantics).
        prelude, cond = self._lower_cond(stmt.cond)
        break_id = self._new_target()
        continue_id = self._new_target()
        entry = _LoopEntry("loop", label, break_id, continue_id,
                           len(self._finally_stack),
                           continue_is_break=bool(prelude))
        self._loop_stack.append(entry)
        body = u.SBlock(self.stmt(stmt.body))
        self._loop_stack.pop()
        if not prelude:
            return [u.SDoWhile(break_id, continue_id, body, cond)]
        # do S while(c)  with effectful c:
        #   while(true) { L_continue: { S }  prelude; if(!c) break; }
        not_cond = u.EPrim(lookup_op(BOOLEAN, "not"), [cond])
        self._used_targets.add(break_id)
        if continue_id in self._used_targets:
            body = u.SLabeled(continue_id, body)
        inner = u.SBlock([body] + prelude
                         + [u.SIf(not_cond, u.SBreak(break_id), None)])
        header_id = self._new_target()
        return [u.SWhile(break_id, header_id, u.EConst(BOOLEAN, True),
                         inner)]

    def _stmt_forstmt(self, stmt: ast.ForStmt,
                      label: Optional[str] = None) -> list[u.UStmt]:
        out: list[u.UStmt] = []
        for init in stmt.init:
            out.extend(self.stmt(init))
        if stmt.cond is None:
            cond_prelude: list[u.UStmt] = []
            cond: u.UExpr = u.EConst(BOOLEAN, True)
        else:
            cond_prelude, cond = self._lower_cond(stmt.cond)
        break_id = self._new_target()
        continue_id = self._new_target()  # labels the inner (body) region
        entry = _LoopEntry("loop", label, break_id, continue_id,
                           len(self._finally_stack), continue_is_break=True)
        self._loop_stack.append(entry)
        body = u.SBlock(self.stmt(stmt.body))
        self._loop_stack.pop()
        update_prelude, update_values = self._lower_ordered(stmt.update)
        update_stmts = list(update_prelude)
        for value in update_values:
            if not isinstance(value, (u.EConst, u.ELocal)):
                update_stmts.append(u.SEval(value))
        if continue_id in self._used_targets:
            body = u.SLabeled(continue_id, body)
        loop_body = u.SBlock([body] + update_stmts)
        header_id = self._new_target()
        if not cond_prelude:
            loop: u.UStmt = u.SWhile(break_id, header_id, cond, loop_body)
        else:
            not_cond = u.EPrim(lookup_op(BOOLEAN, "not"), [cond])
            self._used_targets.add(break_id)
            inner = u.SBlock(cond_prelude
                             + [u.SIf(not_cond, u.SBreak(break_id), None),
                                loop_body])
            loop = u.SWhile(break_id, header_id, u.EConst(BOOLEAN, True),
                            inner)
        out.append(loop)
        return out

    def _stmt_labeledstmt(self, stmt: ast.LabeledStmt) -> list[u.UStmt]:
        inner = stmt.stmt
        if isinstance(inner, ast.WhileStmt):
            return self._stmt_whilestmt(inner, label=stmt.label)
        if isinstance(inner, ast.DoWhileStmt):
            return self._stmt_dowhilestmt(inner, label=stmt.label)
        if isinstance(inner, ast.ForStmt):
            return self._stmt_forstmt(inner, label=stmt.label)
        target_id = self._new_target()
        entry = _LoopEntry("labeled", stmt.label, target_id, None,
                           len(self._finally_stack))
        self._loop_stack.append(entry)
        body = u.SBlock(self.stmt(inner))
        self._loop_stack.pop()
        if target_id in self._used_targets:
            return [u.SLabeled(target_id, body)]
        return [body]

    def _find_entry(self, label: Optional[str],
                    for_continue: bool) -> _LoopEntry:
        for entry in reversed(self._loop_stack):
            if label is not None:
                if entry.label == label:
                    return entry
            elif entry.kind == "loop" \
                    or (entry.kind == "switch" and not for_continue):
                return entry
        raise CompileError("unresolved break/continue target")

    def _stmt_breakstmt(self, stmt: ast.BreakStmt) -> list[u.UStmt]:
        entry = self._find_entry(stmt.label, for_continue=False)
        return self._emit_transfer(("break", entry), entry)

    def _stmt_continuestmt(self, stmt: ast.ContinueStmt) -> list[u.UStmt]:
        entry = self._find_entry(stmt.label, for_continue=True)
        return self._emit_transfer(("continue", entry), entry)

    def _emit_transfer(self, spec: tuple, entry: _LoopEntry) -> list[u.UStmt]:
        """Emit a break/continue, routing through finally frames if needed."""
        crossed = self._finally_stack[entry.finally_depth:]
        if crossed:
            frame = self._finally_stack[-1]
            code = frame.code_for(spec)
            self._used_targets.add(frame.exit_label_id)
            return [u.SLocalWrite(frame.mode_local, u.EConst(INT, code)),
                    u.SBreak(frame.exit_label_id)]
        kind, target = spec
        if kind == "break":
            self._used_targets.add(target.break_id)
            return [u.SBreak(target.break_id)]
        self._used_targets.add(target.continue_id)
        if target.continue_is_break:
            # exits a labeled region (for-loop update code / do-while cond)
            return [u.SBreak(target.continue_id)]
        return [u.SContinue(target.continue_id)]

    def _stmt_returnstmt(self, stmt: ast.ReturnStmt) -> list[u.UStmt]:
        prelude: list[u.UStmt] = []
        value: Optional[u.UExpr] = None
        if stmt.expr is not None:
            prelude, value = self.expr(stmt.expr)
            value = self._as_type(value, self._return_type)
        return prelude + self._emit_return(value)

    def _stmt_throwstmt(self, stmt: ast.ThrowStmt) -> list[u.UStmt]:
        prelude, value = self.expr(stmt.expr)
        return prelude + [u.SThrow(self._as_type(value, _THROWABLE))]

    def _stmt_trystmt(self, stmt: ast.TryStmt) -> list[u.UStmt]:
        if stmt.finally_block is None:
            return [self._plain_try(stmt)]
        mode_local = self._temp(INT)
        exc_local = self._temp(_THROWABLE)
        exit_id = self._new_target()
        frame = _FinallyFrame(mode_local, exc_local, exit_id)
        init: list[u.UStmt] = [
            # pre-initialise so the dispatch reads are definitely assigned
            u.SLocalWrite(exc_local, u.EConst(_THROWABLE, None)),
        ]
        if self._return_type is not VOID and self._ret_local is None:
            self._ret_local = self._temp(self._return_type)
            init.append(u.SLocalWrite(self._ret_local,
                                      _zero_const(self._return_type)))
        self._finally_stack.append(frame)
        inner = self._plain_try(stmt)
        self._finally_stack.pop()

        throwable = self.world.require("java.lang.Throwable")
        catch_local = self._temp(_THROWABLE)
        catch_all = u.UCatch(throwable, catch_local, u.SBlock([
            u.SLocalWrite(exc_local, u.ELocal(catch_local)),
            u.SLocalWrite(mode_local, u.EConst(INT, 1)),
        ]))
        guarded = u.STry(inner, [catch_all])

        out: list[u.UStmt] = init
        out.append(u.SLocalWrite(mode_local, u.EConst(INT, 0)))
        out.append(u.SLabeled(exit_id, guarded))
        out.extend(self.stmt(stmt.finally_block))
        out.extend(self._finally_dispatch(frame))
        return out

    def _plain_try(self, stmt: ast.TryStmt) -> u.UStmt:
        body = u.SBlock(self.stmt(stmt.body))
        if not stmt.catches:
            return body  # try-finally only: the catch-all wrapper suffices
        catches: list[u.UCatch] = []
        for clause in stmt.catches:
            catch_class = self.world.class_of(clause.catch_type)
            catch_body = u.SBlock(self.stmt(clause.body))
            catches.append(u.UCatch(catch_class, clause.local, catch_body))
        return u.STry(body, catches)

    def _finally_dispatch(self, frame: _FinallyFrame) -> list[u.UStmt]:
        """Re-emit the transfers recorded while lowering the try body."""
        out: list[u.UStmt] = []
        eq = lookup_op(INT, "eq")
        rethrow = u.SIf(
            u.EPrim(eq, [u.ELocal(frame.mode_local), u.EConst(INT, 1)]),
            u.SThrow(u.ELocal(frame.exc_local)), None)
        out.append(rethrow)
        for spec, code in frame.transfers.items():
            if spec == ("return",):
                if self._return_type is VOID or self._ret_local is None:
                    body: list[u.UStmt] = self._emit_return(None)
                else:
                    body = self._emit_return(u.ELocal(self._ret_local))
            else:
                kind, entry = spec
                body = self._emit_transfer((kind, entry), entry)
            out.append(u.SIf(
                u.EPrim(eq, [u.ELocal(frame.mode_local),
                             u.EConst(INT, code)]),
                u.SBlock(body), None))
        return out

    def _emit_return(self, value: Optional[u.UExpr]) -> list[u.UStmt]:
        if not self._finally_stack:
            return [u.SReturn(value)]
        frame = self._finally_stack[-1]
        code = frame.code_for(("return",))
        out: list[u.UStmt] = []
        if value is not None:
            if self._ret_local is None:
                self._ret_local = self._temp(self._return_type)
            out.append(u.SLocalWrite(self._ret_local, value))
        out.append(u.SLocalWrite(frame.mode_local, u.EConst(INT, code)))
        self._used_targets.add(frame.exit_label_id)
        out.append(u.SBreak(frame.exit_label_id))
        return out

    def _stmt_switchstmt(self, stmt: ast.SwitchStmt) -> list[u.UStmt]:
        prelude, selector = self.expr(stmt.selector)
        selector = self._hoist(prelude, selector)
        exit_id = self._new_target()
        entry = _LoopEntry("switch", None, exit_id, None,
                           len(self._finally_stack))
        self._loop_stack.append(entry)
        bodies: list[list[u.UStmt]] = []
        case_ids: list[int] = []
        for case in stmt.cases:
            case_ids.append(self._new_target())
            body: list[u.UStmt] = []
            for inner in case.stmts:
                body.extend(self.stmt(inner))
            bodies.append(body)
        self._loop_stack.pop()
        # dispatch: compare the selector against every case label
        from repro.frontend.semantics import constant_value
        eq = lookup_op(INT, "eq")
        dispatch: list[u.UStmt] = []
        default_id = exit_id
        for case, case_id in zip(stmt.cases, case_ids):
            if case.is_default:
                default_id = case_id
            for label in case.labels:
                value = constant_value(label)
                self._used_targets.add(case_id)
                dispatch.append(u.SIf(
                    u.EPrim(eq, [selector, u.EConst(INT, value)]),
                    u.SBreak(case_id), None))
        self._used_targets.add(default_id)
        dispatch.append(u.SBreak(default_id))
        # nest: exiting label k lands at the start of body k
        structure: u.UStmt = u.SBlock(dispatch)
        for case_id, body in zip(case_ids, bodies):
            structure = u.SBlock([u.SLabeled(case_id, structure)] + body)
        return prelude + [u.SLabeled(exit_id, structure)]

    # ==================================================================
    # expressions: each handler returns (prelude-statements, value)

    def expr(self, expr: ast.Expr) -> tuple[list[u.UStmt], u.UExpr]:
        handler = getattr(self, "_expr_" + type(expr).__name__.lower(), None)
        if handler is None:
            raise CompileError(
                f"UAST builder: unsupported expression {type(expr).__name__}",
                expr.pos)
        return handler(expr)

    def _expr_literal(self, expr: ast.Literal):
        return [], u.EConst(expr.type, expr.value)

    def _expr_localread(self, expr: ast.LocalRead):
        return [], u.ELocal(expr.local)

    def _expr_this(self, expr: ast.This):
        return [], u.ELocal(self._this_local)

    def _expr_fieldaccess(self, expr: ast.FieldAccess):
        field: FieldInfo = expr.field
        if field.is_static:
            if field.const_value is not None:
                return [], u.EConst(field.type, field.const_value)
            return [], u.EGetStatic(field)
        prelude, obj = self.expr(expr.target)
        return prelude, u.EGetField(obj, field)

    def _expr_arraylength(self, expr: ast.ArrayLength):
        prelude, array = self.expr(expr.target)
        return prelude, u.EArrayLen(INT, array)

    def _expr_arrayaccess(self, expr: ast.ArrayAccess):
        prelude, values = self._lower_ordered([expr.array, expr.index])
        return prelude, u.EArrayGet(expr.type, values[0], values[1])

    def _expr_call(self, expr: ast.Call):
        method: MethodInfo = expr.method
        if method.is_static:
            prelude, args = self._lower_args(expr.args, method)
            return prelude, u.ECall(method, None, args, dispatch=False,
                                    base=method.declaring)
        if expr.is_super:
            prelude, args = self._lower_args(expr.args, method)
            receiver: u.UExpr = u.ELocal(self._this_local)
            return prelude, u.ECall(method, receiver, args, dispatch=False,
                                    base=method.declaring)
        prelude, values = self._lower_ordered([expr.target] + expr.args)
        receiver = values[0]
        base = self.world.class_of(receiver.type) \
            if isinstance(receiver.type, ClassType) else method.declaring
        args = [self._as_type(value, param)
                for value, param in zip(values[1:], method.param_types)]
        return prelude, u.ECall(method, receiver, args, dispatch=True,
                                base=base)

    def _expr_ctorcall(self, expr: ast.CtorCall):
        method: MethodInfo = expr.method
        prelude, args = self._lower_args(expr.args, method)
        return prelude, u.ECall(method, u.ELocal(self._this_local), args,
                                dispatch=False, base=method.declaring)

    def _expr_new(self, expr: ast.New):
        prelude, args = self._lower_args(expr.args, expr.method)
        return prelude, u.ENew(expr.class_info, expr.method, args)

    def _expr_newarray(self, expr: ast.NewArray):
        prelude, dims = self._lower_ordered(expr.dims)
        array_type = expr.type
        assert isinstance(array_type, ArrayType)
        if len(dims) == 1:
            return prelude, u.ENewArray(array_type, dims[0])
        return prelude, u.ENewMultiArray(array_type, dims)

    def _expr_unary(self, expr: ast.Unary):
        prelude, operand = self.expr(expr.operand)
        if expr.op == "+":
            return prelude, operand
        return prelude, u.EPrim(expr.operation, [operand])

    def _expr_convert(self, expr: ast.Convert):
        prelude, operand = self.expr(expr.operand)
        if expr.ops:
            for op in expr.ops:
                operand = u.EPrim(op, [operand])
            return prelude, operand
        return prelude, self._as_type(operand, expr.type)

    def _expr_cast(self, expr: ast.Cast):
        prelude, operand = self.expr(expr.operand)
        if expr.cast_kind == "identity":
            return prelude, operand
        if expr.cast_kind == "numeric":
            for op in expr.convert_ops:
                operand = u.EPrim(op, [operand])
            return prelude, operand
        if expr.cast_kind == "widen_ref":
            return prelude, self._as_type(operand, expr.target_type)
        if isinstance(operand.type, NullType):
            return prelude, u.EConst(expr.target_type, None)
        return prelude, u.ECheckedCast(expr.target_type, operand)

    def _expr_instanceof(self, expr: ast.InstanceOf):
        prelude, operand = self.expr(expr.operand)
        return prelude, u.EInstanceOf(BOOLEAN, expr.target_type, operand)

    def _expr_binary(self, expr: ast.Binary):
        if expr.is_string_concat:
            return self._string_concat(expr.left, expr.right)
        if expr.op in ("&&", "||"):
            return self._short_circuit(expr)
        if expr.is_ref_compare:
            prelude, values = self._lower_ordered([expr.left, expr.right])
            left = self._as_type(values[0], expr.compare_type)
            right = self._as_type(values[1], expr.compare_type)
            return prelude, u.ERefCmp(BOOLEAN, expr.op == "==",
                                      expr.compare_type, left, right)
        prelude, values = self._lower_ordered([expr.left, expr.right])
        return prelude, u.EPrim(expr.operation, values)

    def _short_circuit(self, expr: ast.Binary):
        prelude, left = self.expr(expr.left)
        right_prelude, right = self.expr(expr.right)
        temp = self._temp(BOOLEAN)
        assign_right = u.SBlock(right_prelude
                                + [u.SLocalWrite(temp, right)])
        if expr.op == "&&":
            stmt = u.SIf(left, assign_right,
                         u.SLocalWrite(temp, u.EConst(BOOLEAN, False)))
        else:
            stmt = u.SIf(left, u.SLocalWrite(temp, u.EConst(BOOLEAN, True)),
                         assign_right)
        return prelude + [stmt], u.ELocal(temp)

    def _string_concat(self, left: ast.Expr, right: ast.Expr):
        prelude, values = self._lower_ordered([left, right])
        lstr = self._stringify(values[0])
        rstr = self._stringify(values[1])
        concat = self._string_method("concat")
        return prelude, u.ECall(concat, lstr, [rstr], dispatch=False,
                                base=self.world.require("java.lang.String"))

    def _stringify(self, value: u.UExpr) -> u.UExpr:
        """Wrap a value in the appropriate String.valueOf call."""
        string_cls = self.world.require("java.lang.String")
        if value.type is FLOAT:
            value = u.EPrim(lookup_op(FLOAT, "to_double"), [value])
        if value.type.is_reference() or isinstance(value.type, NullType):
            value = self._as_type(value, _OBJECT)
            param: Type = _OBJECT
        else:
            param = value.type
        for method in string_cls.methods:
            if method.name == "valueOf" and method.param_types == [param]:
                return u.ECall(method, None, [value], dispatch=False,
                               base=string_cls)
        raise CompileError(f"no String.valueOf({param})")

    def _string_method(self, name: str) -> MethodInfo:
        string_cls = self.world.require("java.lang.String")
        for method in string_cls.methods:
            if method.name == name:
                return method
        raise CompileError(f"no String.{name}")

    def _expr_ternary(self, expr: ast.Ternary):
        prelude, cond = self.expr(expr.cond)
        temp = self._temp(expr.type)
        then_prelude, then_value = self.expr(expr.then_expr)
        else_prelude, else_value = self.expr(expr.else_expr)
        then_block = u.SBlock(then_prelude + [
            u.SLocalWrite(temp, self._as_type(then_value, expr.type))])
        else_block = u.SBlock(else_prelude + [
            u.SLocalWrite(temp, self._as_type(else_value, expr.type))])
        return prelude + [u.SIf(cond, then_block, else_block)], \
            u.ELocal(temp)

    # -- assignment forms -------------------------------------------------

    def _expr_assign(self, expr: ast.Assign):
        target = expr.target
        if expr.op == "=":
            if isinstance(target, ast.LocalRead):
                prelude, value = self.expr(expr.value)
                value = self._as_type(value, target.local.type)
                prelude.append(u.SLocalWrite(target.local, value))
                return prelude, u.ELocal(target.local)
            if isinstance(target, ast.FieldAccess):
                field = target.field
                if field.is_static:
                    prelude, value = self.expr(expr.value)
                    value = self._as_type(value, field.type)
                    value = self._hoist(prelude, value)
                    prelude.append(u.SStaticWrite(field, value))
                    return prelude, value
                prelude, values = self._lower_ordered(
                    [target.target, expr.value])
                obj = self._hoist(prelude, values[0])
                value = self._hoist(prelude,
                                    self._as_type(values[1], field.type))
                prelude.append(u.SFieldWrite(obj, field, value))
                return prelude, value
            if isinstance(target, ast.ArrayAccess):
                prelude, values = self._lower_ordered(
                    [target.array, target.index, expr.value])
                array = self._hoist(prelude, values[0])
                index = self._hoist(prelude, values[1])
                elem_type = target.array.type.element
                value = self._hoist(prelude,
                                    self._as_type(values[2], elem_type))
                prelude.append(u.SArrayWrite(array, index, value))
                return prelude, value
            raise CompileError("bad assignment target", expr.pos)
        return self._compound_assign(expr)

    def _location(self, target: ast.Expr, prelude: list[u.UStmt]):
        """Evaluate an lvalue's subexpressions once.

        Returns ``(read, write)``: ``read`` is the current value (hoisted to
        a temp) and ``write(value)`` appends the store, returning the stored
        value as the expression result.
        """
        if isinstance(target, ast.LocalRead):
            local = target.local
            read = self._hoist(prelude, u.ELocal(local))

            def write(value: u.UExpr) -> u.UExpr:
                prelude.append(u.SLocalWrite(local, value))
                return u.ELocal(local)
            return read, write, local.type
        if isinstance(target, ast.FieldAccess) and target.field.is_static:
            field = target.field
            read = self._hoist(prelude, u.EGetStatic(field))

            def write(value: u.UExpr) -> u.UExpr:
                value = self._hoist(prelude, value)
                prelude.append(u.SStaticWrite(field, value))
                return value
            return read, write, field.type
        if isinstance(target, ast.FieldAccess):
            field = target.field
            obj_prelude, obj = self.expr(target.target)
            prelude.extend(obj_prelude)
            obj = self._hoist(prelude, obj)
            read = self._hoist(prelude, u.EGetField(obj, field))

            def write(value: u.UExpr) -> u.UExpr:
                value = self._hoist(prelude, value)
                prelude.append(u.SFieldWrite(obj, field, value))
                return value
            return read, write, field.type
        if isinstance(target, ast.ArrayAccess):
            elem_type = target.type
            inner_prelude, values = self._lower_ordered(
                [target.array, target.index])
            prelude.extend(inner_prelude)
            array = self._hoist(prelude, values[0])
            index = self._hoist(prelude, values[1])
            read = self._hoist(prelude,
                               u.EArrayGet(elem_type, array, index))

            def write(value: u.UExpr) -> u.UExpr:
                value = self._hoist(prelude, value)
                prelude.append(u.SArrayWrite(array, index, value))
                return value
            return read, write, elem_type
        raise CompileError("bad assignment target", target.pos)

    def _compound_assign(self, expr: ast.Assign):
        """``a op= b``: read the location once, combine, write back."""
        prelude: list[u.UStmt] = []
        read, write, location_type = self._location(expr.target, prelude)

        if expr.is_string_concat:
            rhs_prelude, rhs = self.expr(expr.value)
            prelude.extend(rhs_prelude)
            concat = self._string_method("concat")
            combined: u.UExpr = u.ECall(
                concat, self._stringify(read), [self._stringify(rhs)],
                dispatch=False, base=self.world.require("java.lang.String"))
        else:
            # expr.value is the checked Binary whose left operand is a
            # re-read of the location (possibly Convert-wrapped)
            binary: ast.Binary = expr.value
            converted = read
            node = binary.left
            ops: list[Operation] = []
            while isinstance(node, ast.Convert):
                ops = list(node.ops) + ops
                node = node.operand
            for op in ops:
                converted = u.EPrim(op, [converted])
            rhs_prelude, rhs = self.expr(binary.right)
            prelude.extend(rhs_prelude)
            combined = u.EPrim(binary.operation, [converted, rhs])
            for op in expr.narrowing_ops:
                combined = u.EPrim(op, [combined])
        result = write(self._as_type(combined, location_type))
        return prelude, result

    def _expr_incdec(self, expr: ast.IncDec):
        prelude: list[u.UStmt] = []
        read, write, location_type = self._location(expr.target, prelude)
        operation = expr.operation
        base = operation.params[0]
        converted = read
        for op in conversion_ops(location_type, base):
            converted = u.EPrim(op, [converted])
        one = u.EConst(base, 1.0 if base in (DOUBLE, FLOAT) else 1)
        combined: u.UExpr = u.EPrim(operation, [converted, one])
        for op in (conversion_ops(base, location_type)
                   if base != location_type else []):
            combined = u.EPrim(op, [combined])
        new_value = write(combined)
        return prelude, (new_value if expr.is_prefix else read)


def build_uast(decl: ast.ClassDecl, world: World) -> list[u.UMethod]:
    """Lower all method bodies of ``decl`` to UAST."""
    return UastBuilder(world).build_class(decl)


def _zero_const(type: Type) -> u.EConst:
    """The default value of a type (Java zero-initialisation)."""
    if type is DOUBLE or type is FLOAT:
        return u.EConst(type, 0.0)
    if type is BOOLEAN:
        return u.EConst(type, False)
    if isinstance(type, PrimitiveType):
        return u.EConst(type, 0)
    return u.EConst(type, None)
