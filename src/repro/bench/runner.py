"""Command-line entry point regenerating every table and figure.

Usage::

    python -m repro.bench.runner figure5      # paper Figure 5
    python -m repro.bench.runner figure6      # paper Figure 6
    python -m repro.bench.runner pruning      # E3: dead-phi pruning
    python -m repro.bench.runner ablation     # E4: per-pass contribution
    python -m repro.bench.runner verifycost   # E5: verification cost
    python -m repro.bench.runner jitspeed    # E9: consumer codegen speed
    python -m repro.bench.runner codec [--smoke] [--output PATH]
    python -m repro.bench.runner analysis [--smoke] [--output PATH]
    python -m repro.bench.runner pipeline [--smoke] [--output PATH]
    python -m repro.bench.runner fuzz [--smoke] [--output PATH]
    python -m repro.bench.runner load [--smoke] [--output PATH]
    python -m repro.bench.runner loops [--smoke] [--output PATH]
    python -m repro.bench.runner wire [--smoke] [--output PATH]
    python -m repro.bench.runner serve [--smoke] [--output PATH]
    python -m repro.bench.runner trace [--smoke] [--output PATH]
    python -m repro.bench.runner all

``codec`` times the wire codec and the compilation cache and writes the
numbers to ``BENCH_codec.json``; ``analysis`` times verification and
the lint driver per corpus artifact and writes ``BENCH_analysis.json``;
``pipeline`` measures the pass pipeline (analysis-cache reuse, per-pass
seconds, parallel fan-out determinism) and writes
``BENCH_pipeline.json``; ``fuzz`` runs a deterministic differential +
wire-mutation campaign and writes throughput plus the rejection
taxonomy to ``BENCH_fuzz.json`` (and exits nonzero on any finding);
``load`` (E10) times the legacy two-pass consumer against the fused
verifying loader's cold/warm/parallel/lazy paths per corpus artifact,
writes ``BENCH_load.json``, and exits nonzero if the fused cold path
stops beating two-pass; ``loops`` compares the loop tier (preheaders,
LICM, check hoisting) against no optimisation and the default pipeline
on the loop-heavy corpus, writes ``BENCH_loops.json``, and exits
nonzero unless the tier alone strictly reduces dynamic checks and the
full pipeline with the tier never regresses the default; ``wire``
(E12) sizes the v2 distribution layer (shared dictionaries, deltas)
and measures streaming vs eager time-to-first-execute on a simulated
link, writes ``BENCH_wire.json``, and exits nonzero if v2 stops
shrinking the corpus, deltas stop beating whole artifacts, or
streaming TTFE exceeds eager; ``serve`` (E13) publishes the corpus
through a live ``repro.serve`` server, measures sustained req/s and
p50/p99 latency under a many-client mixed fetch/verify/audit workload,
checks that N barrier-released identical compiles coalesce into ~one
performed compilation with bit-identical digests, and writes
``BENCH_serve.json``; ``trace`` (E14) times the speculative trace tier
against the untraced interpreter on the loop-heavy corpus with a warm
trace cache, measures the guard-abort/blacklist path on an adversarial
program and the block-plan dispatch micro-opt against the legacy
``getattr`` loop, writes ``BENCH_trace.json``, and exits nonzero if
the geomean speedup drops below the floor (1.25x full, 1.0x smoke) or
the abort path stops being contained; ``--smoke`` runs a reduced
configuration (the CI setting).

Timed sections run best-of-N with a warmup pass (``REPRO_BENCH_REPEATS``
overrides N, default 3): the minimum over repeats is the standard
estimator for "time the code would take undisturbed", where a single
sample is at the mercy of whatever else the machine was doing.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.bench.metrics import (
    corpus_compile_jobs,
    measure_corpus,
    warm_cache,
)
from repro.bench.tables import (
    ablation_table,
    figure5_table,
    figure6_table,
    phi_pruning_table,
)
from repro.cache import CompilationCache, default_cache
from repro.pipeline import compile_to_module

#: Shared across the commands of one runner invocation, so ``all`` does
#: not recompile the corpus for every table that needs it.  When the
#: process-wide cache is enabled (``REPRO_CACHE_DIR``), use it, so
#: table regeneration persists compiles across invocations too.
_RUN_CACHE = default_cache() or CompilationCache()


def best_of(fn, repeats=None, warmup: int = 1) -> float:
    """Minimum wall-clock seconds of ``fn()`` over ``repeats`` runs,
    after ``warmup`` untimed runs.  ``fn``'s return value is discarded;
    capture side effects via a closure if the result is needed too."""
    if repeats is None:
        repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def run_figure5() -> str:
    rows = measure_corpus(cache=_RUN_CACHE)
    return "Figure 5: SafeTSA class files compared to Java class files\n\n" \
        + figure5_table(rows)


def run_figure6() -> str:
    rows = measure_corpus(cache=_RUN_CACHE)
    return ("Figure 6: Phi-, Null-Check and Array-Check instructions "
            "before and after optimisation\n\n" + figure6_table(rows))


def run_pruning() -> str:
    results = []
    for name in CORPUS_PROGRAMS:
        source = corpus_source(name)
        unpruned = compile_to_module(source, prune_phis=False,
                                     cache=_RUN_CACHE)
        pruned = compile_to_module(source, prune_phis=True,
                                   cache=_RUN_CACHE)
        results.append((name,
                        unpruned.count_opcodes("phi"),
                        pruned.count_opcodes("phi")))
    return ("E3: eager (Brandis/Moessenboeck) phi insertion vs Briggs "
            "pruning\n\n" + phi_pruning_table(results))


def run_ablation() -> str:
    configs = {
        "none": [],
        "constprop": ["constprop"],
        "cse": ["cse"],
        "dce": ["dce"],
        "all": ["constprop", "cse", "dce"],
    }
    results = []
    for name in CORPUS_PROGRAMS:
        source = corpus_source(name)
        counts = {}
        for label, passes in configs.items():
            # each configuration mutates its module, so every one needs
            # a fresh decode -- which is exactly what a cache hit is
            module = compile_to_module(source, cache=_RUN_CACHE)
            if passes:
                from repro.opt.pipeline import optimize_module
                optimize_module(module, passes)
            counts[label] = module.instruction_count()
        results.append((name, counts))
    return ("E4: instruction count per optimisation configuration\n\n"
            + ablation_table(results))


def run_verifycost() -> str:
    from repro.frontend.parser import parse_compilation_unit
    from repro.frontend.semantics import analyze
    from repro.jvm.codegen import compile_unit
    from repro.jvm.verifier import verify_class
    from repro.tsa.verifier import verify_module
    from repro.uast.builder import UastBuilder

    lines = [
        "E5: consumer-side verification cost "
        "(SafeTSA counter check vs JVM dataflow)",
        "",
        f"{'Program':16} {'tsa (ms)':>9} {'jvm (ms)':>9} "
        f"{'jvm steps':>10} {'ratio':>7}",
        "-" * 56,
    ]
    total_tsa = 0.0
    total_jvm = 0.0
    for name in CORPUS_PROGRAMS:
        source = corpus_source(name)
        module = compile_to_module(source, cache=_RUN_CACHE)
        unit = parse_compilation_unit(source)
        world = analyze(unit)
        builder = UastBuilder(world)
        classes = compile_unit(world, {decl.info: builder.build_class(decl)
                                       for decl in unit.classes})
        tsa_ms = best_of(lambda: verify_module(module)) * 1000
        steps_holder = []
        jvm_ms = best_of(lambda: steps_holder.append(
            sum(verify_class(world, cls) for cls in classes))) * 1000
        steps = steps_holder[-1]
        total_tsa += tsa_ms
        total_jvm += jvm_ms
        ratio = jvm_ms / tsa_ms if tsa_ms else float("inf")
        lines.append(f"{name:16} {tsa_ms:9.2f} {jvm_ms:9.2f} "
                     f"{steps:10} {ratio:7.2f}")
    lines.append("-" * 56)
    ratio = total_jvm / total_tsa if total_tsa else float("inf")
    lines.append(f"{'TOTAL':16} {total_tsa:9.2f} {total_jvm:9.2f} "
                 f"{'':10} {ratio:7.2f}")
    return "\n".join(lines)


def run_jitspeed() -> str:
    from repro.interp.interpreter import Interpreter
    from repro.interp.jit import JitCompiler
    lines = [
        "E9: consumer-side code generation (interpreter vs JIT)",
        "",
        f"{'Program':16} {'interp':>10} {'jit':>10} {'speedup':>8}",
        "-" * 48,
    ]
    total_interp = total_jit = 0.0
    for name in ("BitSieve", "Linpack", "BigInt", "MiniVM"):
        module = compile_to_module(corpus_source(name), optimize=True,
                                   cache=_RUN_CACHE)
        interp_s = best_of(lambda: Interpreter(
            module, max_steps=200_000_000).run_main(name))
        jit_s = best_of(lambda: JitCompiler(module).run_main(name))
        total_interp += interp_s
        total_jit += jit_s
        lines.append(f"{name:16} {interp_s * 1000:8.1f}ms "
                     f"{jit_s * 1000:8.1f}ms {interp_s / jit_s:7.1f}x")
    lines.append("-" * 48)
    lines.append(f"{'TOTAL':16} {total_interp * 1000:8.1f}ms "
                 f"{total_jit * 1000:8.1f}ms "
                 f"{total_interp / total_jit:7.1f}x")
    return "\n".join(lines)


def codec_report(programs=None, repeats=None) -> dict:
    """All the numbers behind ``BENCH_codec.json``."""
    from repro.bench.codec import measure_codec_throughput
    from repro.encode.deserializer import decode_module
    from repro.encode.serializer import encode_module

    if repeats is None:
        repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    programs = list(programs or CORPUS_PROGRAMS)
    report: dict = {"programs": programs, "repeats": repeats}

    # 1. the codec itself: trace replay, new vs reference.  Replaying
    # the trace is cheap, so take at least five repeats: on a busy
    # single-CPU machine three minima still carry visible noise.
    report["codec"] = measure_codec_throughput(programs,
                                               repeats=max(repeats, 5))
    report["codec"]["speedup_vs_reference"] = \
        report["codec"]["combined_speedup"]

    # 2. the module path: full encode/decode plus per-stage compile time
    stage_seconds: dict = {}
    modules = []
    start = time.perf_counter()
    for name in programs:
        source = corpus_source(name)
        modules.append(compile_to_module(
            source, prune_phis=False, cache=False,
            stage_seconds=stage_seconds))
        modules.append(compile_to_module(
            source, optimize=True, cache=False,
            stage_seconds=stage_seconds))
    compile_s = time.perf_counter() - start
    wires = [encode_module(module) for module in modules]
    stage_seconds["encode"] = best_of(
        lambda: [encode_module(module) for module in modules],
        repeats=repeats)
    stage_seconds["decode"] = best_of(
        lambda: [decode_module(wire) for wire in wires], repeats=repeats)
    from repro.tsa.verifier import verify_module
    stage_seconds["verify"] = best_of(
        lambda: [verify_module(module) for module in modules],
        repeats=repeats)
    wire_bytes = sum(len(wire) for wire in wires)
    report["module_path"] = {
        "modules": len(modules),
        "wire_bytes": wire_bytes,
        "encode_mbps": round(
            wire_bytes / stage_seconds["encode"] / 1e6, 3),
        "decode_mbps": round(
            wire_bytes / stage_seconds["decode"] / 1e6, 3),
        "stage_seconds": {stage: round(seconds, 4)
                          for stage, seconds in stage_seconds.items()},
    }

    # 3. the compilation cache: cold concurrent warm vs warm rerun
    cache = CompilationCache()
    jobs = corpus_compile_jobs(programs)
    start = time.perf_counter()
    compiled = warm_cache(cache, jobs)
    cold_s = time.perf_counter() - start

    def rerun() -> None:
        for name in programs:
            source = corpus_source(name)
            compile_to_module(source, prune_phis=False, cache=cache)
            compile_to_module(source, optimize=True, cache=cache)

    warm_s = best_of(rerun, repeats=repeats)
    report["cache"] = {
        "corpus_compiles": compiled,
        "cold_concurrent_seconds": round(cold_s, 4),
        "cold_serial_seconds": round(compile_s, 4),
        "warm_seconds": round(warm_s, 4),
        "warm_speedup": round(compile_s / warm_s, 2) if warm_s else None,
        "hit_rate": round(cache.hit_rate, 4),
        **{key: value for key, value in cache.stats().items()
           if key != "hit_rate"},
        "workers": os.cpu_count(),
    }
    return report


def run_codec(argv=()) -> str:
    smoke = "--smoke" in argv
    output = "BENCH_codec.json"
    argv = [arg for arg in argv if arg != "--smoke"]
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    programs = ("BitSieve", "BinaryCode", "Scanner") if smoke else None
    repeats = 2 if smoke else None
    report = codec_report(programs, repeats=repeats)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    codec = report["codec"]
    cache = report["cache"]
    return "\n".join([
        f"codec benchmark ({'smoke, ' if smoke else ''}"
        f"{len(report['programs'])} programs) -> {output}",
        "",
        f"  trace encode   {codec['encode_mbps']:7.3f} MB/s "
        f"({codec['encode_speedup']}x vs seed codec)",
        f"  trace decode   {codec['decode_mbps']:7.3f} MB/s "
        f"({codec['decode_speedup']}x vs seed codec)",
        f"  combined speedup vs reference: "
        f"{codec['speedup_vs_reference']}x",
        f"  corpus compile {cache['cold_serial_seconds']:.2f}s cold, "
        f"{cache['cold_concurrent_seconds']:.2f}s concurrent, "
        f"{cache['warm_seconds']:.2f}s from cache "
        f"(hit rate {cache['hit_rate']:.0%})",
    ])


def run_pipeline(argv=()) -> str:
    from repro.bench.pipeline import pipeline_report
    smoke = "--smoke" in argv
    output = "BENCH_pipeline.json"
    argv = [arg for arg in argv if arg != "--smoke"]
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    programs = ("BitSieve", "BinaryCode", "Scanner") if smoke else None
    repeats = 2 if smoke else None
    report = pipeline_report(programs, repeats=repeats)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    cache = report["analysis_cache"]
    determinism = report["determinism"]
    return "\n".join([
        f"pipeline benchmark ({'smoke, ' if smoke else ''}"
        f"{report['artifacts']} artifacts) -> {output}",
        "",
        f"  serial (per-consumer analyses) "
        f"{report['serial']['seconds']:8.3f} s",
        f"  session (shared analyses)      "
        f"{report['session']['seconds']:8.3f} s",
        f"  parallel ({report['parallel']['workers']} worker(s))        "
        f"{report['parallel']['seconds']:8.3f} s  "
        f"({report['parallel_speedup_vs_serial']}x vs serial)",
        f"  analysis cache: {cache['consumers_per_computed']} consumers "
        f"per computed result (hit rate {cache['hit_rate']:.0%})",
        f"  determinism: identical bytes for "
        f"{determinism['artifacts']} artifact(s): "
        f"{determinism['identical_bytes']}",
    ])


def run_analysis(argv=()) -> str:
    from repro.bench.analysis import analysis_report
    smoke = "--smoke" in argv
    output = "BENCH_analysis.json"
    argv = [arg for arg in argv if arg != "--smoke"]
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    programs = ("BitSieve", "BinaryCode", "Scanner") if smoke else None
    repeats = 2 if smoke else None
    report = analysis_report(programs, repeats=repeats, cache=_RUN_CACHE)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    totals = report["totals"]
    return "\n".join([
        f"analysis benchmark ({'smoke, ' if smoke else ''}"
        f"{totals['artifacts']} artifacts) -> {output}",
        "",
        f"  verify (fail-fast)  {totals['verify_ms']:8.2f} ms total",
        f"  lint (all analyses) {totals['lint_ms']:8.2f} ms total",
        f"  diagnostics: {totals['errors']} error(s), "
        f"{totals['warnings']} warning(s), {totals['infos']} info",
    ])


def run_fuzz(argv=()) -> str:
    from repro.bench.fuzz import fuzz_report
    smoke = "--smoke" in argv
    output = "BENCH_fuzz.json"
    argv = [arg for arg in argv if arg != "--smoke"]
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    # smoke: ~150 oracle programs + 1500 stream mutants (~30 s);
    # full: ~1000 programs + 10000 mutants
    budget = 1500 if smoke else 10_000
    report, result = fuzz_report(seed=0, budget=budget, mode="all")
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    header = (f"fuzz benchmark ({'smoke, ' if smoke else ''}"
              f"seed=0 budget={budget}) -> {output}")
    text = header + "\n\n" + result.summary()
    if not result.ok:
        raise SystemExit(text + "\nFUZZ FINDINGS -- see report")
    return text


def run_load(argv=()) -> str:
    from repro.bench.load import load_report, load_table
    smoke = "--smoke" in argv
    output = "BENCH_load.json"
    argv = [arg for arg in argv if arg != "--smoke"]
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    programs = ("BitSieve", "BinaryCode", "Scanner") if smoke else None
    repeats = 2 if smoke else None
    report = load_report(programs, repeats=repeats)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    header = (f"load benchmark ({'smoke, ' if smoke else ''}"
              f"{report['artifacts']} artifacts) -> {output}")
    text = header + "\n\nE10: consumer-side load cost " \
        "(two-pass vs fused loader)\n\n" + load_table(report)
    if not report["guard"]["fused_cold_le_two_pass"]:
        raise SystemExit(
            text + "\nPERF GUARD: fused cold load is slower than the "
            "two-pass decode+verify baseline")
    return text


def run_loops(argv=()) -> str:
    from repro.bench.loops import loops_report, loops_table
    smoke = "--smoke" in argv
    output = "BENCH_loops.json"
    argv = [arg for arg in argv if arg != "--smoke"]
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    # smoke drops Linpack (the slow interpretation) but keeps one array
    # kernel and the dispatch loop
    programs = ("BitSieve", "MiniVM") if smoke else None
    report = loops_report(programs)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    header = (f"loops benchmark ({'smoke, ' if smoke else ''}"
              f"{len(report['programs'])} programs) -> {output}")
    text = header + "\n\nE11: dynamic checks executed per pipeline " \
        "(loop tier = hoist_checks,licm)\n\n" + loops_table(report)
    guard = report["guard"]
    if not guard["tier_reduces_dynamic_checks"]:
        raise SystemExit(
            text + "\nPERF GUARD: the loop tier alone no longer reduces "
            "dynamic checks versus the unoptimised baseline")
    if not guard["full_pipeline_not_worse"]:
        raise SystemExit(
            text + "\nPERF GUARD: the full pipeline with the loop tier "
            "executes more checks than the default pipeline")
    return text


def run_wire(argv=()) -> str:
    from repro.bench.wire import wire_report, wire_table
    smoke = "--smoke" in argv
    output = "BENCH_wire.json"
    argv = [arg for arg in argv if arg != "--smoke"]
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    programs = ("BitSieve", "BinaryCode", "Scanner") if smoke else None
    repeats = 2 if smoke else None
    report = wire_report(programs, repeats=repeats)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    header = (f"wire benchmark ({'smoke, ' if smoke else ''}"
              f"{len(report['programs'])} programs) -> {output}")
    text = header + "\n\nE12: wire-format v2 distribution cost " \
        "(shared dictionaries, deltas, streaming TTFE)\n\n" \
        + wire_table(report)
    guard = report["guard"]
    if not guard["v2_smaller_than_v1"]:
        raise SystemExit(
            text + "\nPERF GUARD: shared-dictionary v2 no longer ships "
            "fewer corpus bytes than raw v1")
    if not guard["delta_smaller_than_full"]:
        raise SystemExit(
            text + "\nPERF GUARD: delta modules no longer beat shipping "
            "the optimised artifact whole")
    if not guard["streaming_ttfe_le_eager"]:
        raise SystemExit(
            text + "\nPERF GUARD: streaming time-to-first-execute "
            "exceeds the eager transfer-then-decode baseline")
    return text


def run_trace(argv=()) -> str:
    from repro.bench.trace import trace_report, trace_table
    smoke = "--smoke" in argv
    output = "BENCH_trace.json"
    argv = [arg for arg in argv if arg != "--smoke"]
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    # smoke drops Linpack and trims repetitions; the acceptance-bar
    # geomean (>= 1.25x) is asserted only on the full corpus
    programs = ("BitSieve", "MiniVM") if smoke else None
    reps = {"BitSieve": 1, "MiniVM": 8} if smoke else None
    report = trace_report(programs, reps=reps,
                          dispatch_reps=4 if smoke else 10,
                          abort_reps=1 if smoke else 3)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    header = (f"trace benchmark ({'smoke, ' if smoke else ''}"
              f"{len(report['programs'])} programs) -> {output}")
    text = header + "\n\nE14: speculative trace tier vs untraced " \
        "interpreter (warm trace cache)\n\n" + trace_table(report)
    guard = report["guard"]
    floor = 1.0 if smoke else 1.25
    if guard["geomean_speedup"] <= floor:
        raise SystemExit(
            text + f"\nPERF GUARD: traced geomean speedup "
            f"{guard['geomean_speedup']}x is not above the "
            f"{floor}x floor")
    if guard["abort_overhead"] > 1.5:
        raise SystemExit(
            text + f"\nPERF GUARD: abort-path overhead "
            f"{guard['abort_overhead']}x exceeds 1.5x -- blacklisting "
            "is not containing guard-failure costs")
    if not guard["abort_blacklisted"] or not guard["abort_entries"]:
        raise SystemExit(
            text + "\nPERF GUARD: the abort program did not exercise "
            "the guard-failure/blacklist path")
    return text


def run_serve(argv=()) -> str:
    from repro.bench.serve import serve_report, serve_table
    smoke = "--smoke" in argv
    output = "BENCH_serve.json"
    argv = [arg for arg in argv if arg != "--smoke"]
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    programs = ("BitSieve", "BinaryCode", "Scanner") if smoke else None
    report = serve_report(programs,
                          clients=4 if smoke else 8,
                          requests_per_client=25 if smoke else 50,
                          coalesce_clients=6 if smoke else 8)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    header = (f"serve benchmark ({'smoke, ' if smoke else ''}"
              f"{report['artifacts']} artifacts) -> {output}")
    text = header + "\n\nE13: distribution-service throughput " \
        "(concurrent clients over HTTP)\n\n" + serve_table(report)
    guard = report["guard"]
    if not guard["no_request_errors"]:
        raise SystemExit(
            text + "\nPERF GUARD: serving workload saw request "
            f"errors: {report['serving']['errors'][:3]}")
    if not guard["coalescing_single_compile"]:
        raise SystemExit(
            text + "\nPERF GUARD: identical concurrent compiles no "
            "longer coalesce "
            f"({report['coalescing']['compiles_performed']} performed)")
    if not guard["coalesced_bit_identical"]:
        raise SystemExit(
            text + "\nPERF GUARD: coalesced compiles returned "
            "divergent digests")
    return text


COMMANDS = {
    "figure5": run_figure5,
    "figure6": run_figure6,
    "pruning": run_pruning,
    "ablation": run_ablation,
    "verifycost": run_verifycost,
    "jitspeed": run_jitspeed,
}


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv or argv[0] not in list(COMMANDS) + ["all", "codec",
                                                    "analysis",
                                                    "pipeline", "fuzz",
                                                    "load", "loops",
                                                    "wire", "serve",
                                                    "trace"]:
        print(__doc__)
        return 2
    if argv[0] == "codec":
        print(run_codec(argv[1:]))
    elif argv[0] == "analysis":
        print(run_analysis(argv[1:]))
    elif argv[0] == "pipeline":
        print(run_pipeline(argv[1:]))
    elif argv[0] == "fuzz":
        print(run_fuzz(argv[1:]))
    elif argv[0] == "load":
        print(run_load(argv[1:]))
    elif argv[0] == "loops":
        print(run_loops(argv[1:]))
    elif argv[0] == "wire":
        print(run_wire(argv[1:]))
    elif argv[0] == "serve":
        print(run_serve(argv[1:]))
    elif argv[0] == "trace":
        print(run_trace(argv[1:]))
    elif argv[0] == "all":
        for name, command in COMMANDS.items():
            print(command())
            print()
        print(run_codec(argv[1:]))
        print()
        print(run_analysis(argv[1:]))
        print()
        print(run_pipeline(argv[1:]))
        print()
        print(run_load(argv[1:]))
        print()
        print(run_loops(argv[1:]))
        print()
        print(run_wire(argv[1:]))
        print()
        print(run_serve(argv[1:]))
        print()
        print(run_trace(argv[1:]))
    else:
        print(COMMANDS[argv[0]]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
