"""Semantic analysis: declaration collection, type checking, overload
resolution, definite assignment and reachability.

The analyzer mutates the AST in place: expression nodes receive their
``type``, names are resolved into ``LocalRead``/``FieldAccess`` variants,
implicit widenings become :class:`~repro.frontend.ast.Convert` nodes, and
operators are resolved to :class:`~repro.typesys.ops.Operation` objects.
The UAST builder then needs no further name or type information.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.typesys.ops import Operation, lookup_op
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    NULL,
    NullType,
    PrimitiveType,
    Type,
    VOID,
    binary_numeric_promotion,
    widens_to,
)
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World
from repro import jmath

_STRING = ClassType("java.lang.String")
_OBJECT = ClassType("java.lang.Object")
_THROWABLE = ClassType("java.lang.Throwable")

#: widening chains used to build conversion Operation lists
_WIDEN_STEPS = {
    ("char", "int"): ["char.to_int"],
    ("char", "long"): ["char.to_int", "int.to_long"],
    ("char", "float"): ["char.to_int", "int.to_float"],
    ("char", "double"): ["char.to_int", "int.to_double"],
    ("int", "long"): ["int.to_long"],
    ("int", "float"): ["int.to_float"],
    ("int", "double"): ["int.to_double"],
    ("long", "float"): ["long.to_float"],
    ("long", "double"): ["long.to_double"],
    ("float", "double"): ["float.to_double"],
}

#: narrowing / general numeric cast chains (Java 5.1.3)
_CAST_STEPS = {
    ("int", "char"): ["int.to_char"],
    ("long", "int"): ["long.to_int"],
    ("long", "char"): ["long.to_int", "int.to_char"],
    ("float", "int"): ["float.to_int"],
    ("float", "long"): ["float.to_long"],
    ("float", "char"): ["float.to_int", "int.to_char"],
    ("double", "int"): ["double.to_int"],
    ("double", "long"): ["double.to_long"],
    ("double", "float"): ["double.to_float"],
    ("double", "char"): ["double.to_int", "int.to_char"],
}


def _ops_for(steps: list[str]) -> list[Operation]:
    resolved = []
    for step in steps:
        base_name, op_name = step.split(".")
        resolved.append(lookup_op(PrimitiveType(base_name), op_name))
    return resolved


def conversion_ops(src: Type, dst: Type) -> list[Operation]:
    """Operation chain converting primitive ``src`` to ``dst`` (may be [])."""
    if src == dst:
        return []
    key = (str(src), str(dst))
    if key in _WIDEN_STEPS:
        return _ops_for(_WIDEN_STEPS[key])
    if key in _CAST_STEPS:
        return _ops_for(_CAST_STEPS[key])
    raise KeyError(f"no conversion {src} -> {dst}")


class _MethodContext:
    """Per-method state during checking."""

    def __init__(self, class_info: ClassInfo, method: MethodInfo):
        self.class_info = class_info
        self.method = method
        self.locals: list[ast.LocalVar] = []
        self.scopes: list[dict[str, ast.LocalVar]] = [{}]
        #: stack of (label-or-None, kind) for break/continue checking;
        #: kind is 'loop' or 'switch'
        self.loop_stack: list[tuple[Optional[str], str]] = []

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, type: Type, pos, *,
                is_param: bool = False) -> ast.LocalVar:
        for scope in self.scopes:
            if name in scope:
                raise CompileError(f"variable {name!r} is already defined", pos)
        local = ast.LocalVar(name, type, len(self.locals), is_param=is_param)
        self.locals.append(local)
        self.scopes[-1][name] = local
        return local

    def lookup(self, name: str) -> Optional[ast.LocalVar]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None


class SemanticAnalyzer:
    """Checks a compilation unit against a :class:`~repro.typesys.world.World`."""

    def __init__(self, world: Optional[World] = None):
        self.world = world or World()

    # ==================================================================
    # pass 1: declarations

    def declare(self, unit: ast.CompilationUnit) -> None:
        for decl in unit.classes:
            info = ClassInfo(decl.name, decl.super_name or "java.lang.Object",
                             is_abstract=decl.is_abstract)
            decl.info = self.world.define_class(info)
        for decl in unit.classes:
            self._declare_members(decl)
        self.world.link()

    def _declare_members(self, decl: ast.ClassDecl) -> None:
        info: ClassInfo = decl.info
        has_ctor = False
        for member in decl.members:
            if isinstance(member, ast.FieldDecl):
                field_type = self.resolve_type(member.type_ref)
                if field_type is VOID:
                    raise CompileError("field of type void", member.pos)
                member.field = info.add_field(FieldInfo(
                    member.name, field_type, member.is_static,
                    member.is_final))
            elif isinstance(member, ast.MethodDecl):
                if member.is_constructor:
                    has_ctor = True
                param_types = [self.resolve_type(p.type_ref)
                               for p in member.params]
                return_type = (VOID if member.return_ref is None
                               else self.resolve_type(member.return_ref))
                method = MethodInfo(member.name, param_types, return_type,
                                    is_static=member.is_static,
                                    is_abstract=member.is_abstract)
                method.param_names = [p.name for p in member.params]
                method.throws = list(member.throws)
                method.ast_body = member
                for existing in info.methods:
                    if existing.signature == method.signature:
                        raise CompileError(
                            f"duplicate method {method.qualified_name}",
                            member.pos)
                member.method = info.add_method(method)
            else:
                raise CompileError("unsupported class member", member.pos)
        if not has_ctor:
            ctor = MethodInfo("<init>", [], VOID)
            ctor.ast_body = None  # synthesized default constructor
            info.add_method(ctor)

    def resolve_type(self, ref: ast.TypeRef) -> Type:
        if isinstance(ref, ast.PrimTypeRef):
            return PrimitiveType(ref.name)
        if isinstance(ref, ast.ArrayTypeRef):
            return ArrayType(self.resolve_type(ref.element))
        if isinstance(ref, ast.NamedTypeRef):
            if ref.name == "void":
                return VOID
            info = self.world.lookup(ref.name)
            if info is None:
                raise CompileError(f"unknown type {ref.name!r}", ref.pos)
            return info.type
        raise CompileError("bad type reference", ref.pos)

    # ==================================================================
    # pass 2: bodies

    def check(self, unit: ast.CompilationUnit) -> None:
        for decl in unit.classes:
            self._check_class(decl)

    def _check_class(self, decl: ast.ClassDecl) -> None:
        info: ClassInfo = decl.info
        for member in decl.members:
            if isinstance(member, ast.FieldDecl) and member.init is not None:
                ctx = _MethodContext(info, _field_init_context(info, member))
                member.init = self._check_and_coerce(
                    ctx, member.init, member.field.type)
                if member.is_static and member.is_final:
                    # Java compile-time constants (usable as case labels)
                    value = constant_value(member.init)
                    if value is not None:
                        member.field.const_value = value
            if isinstance(member, ast.MethodDecl) and member.body is not None:
                self._check_method(info, member)

    def _check_method(self, info: ClassInfo, decl: ast.MethodDecl) -> None:
        method: MethodInfo = decl.method
        ctx = _MethodContext(info, method)
        for param in decl.params:
            param.local = ctx.declare(param.name,
                                      self.resolve_type(param.type_ref),
                                      param.pos, is_param=True)
        self._check_block(ctx, decl.body)
        method.ast_body = decl
        # reachability: non-void methods must not complete normally
        assigned = {local for local in ctx.locals if local.is_param}
        completes = _flows(decl.body, set(assigned))[1]
        if method.return_type is not VOID and completes:
            raise CompileError(
                f"missing return statement in {method.qualified_name}",
                decl.pos)
        decl.method.uast_body = None

    # ------------------------------------------------------------------
    # statements

    def _check_block(self, ctx: _MethodContext, block: ast.Block) -> None:
        ctx.push_scope()
        for stmt in block.stmts:
            self._check_stmt(ctx, stmt)
        ctx.pop_scope()

    def _check_stmt(self, ctx: _MethodContext, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(ctx, stmt)
        elif isinstance(stmt, ast.LocalVarDecl):
            base_type = self.resolve_type(stmt.type_ref)
            checked: list[tuple[ast.LocalVar, Optional[ast.Expr]]] = []
            for name, init in stmt.declarators:
                if init is not None:
                    init = self._check_and_coerce(ctx, init, base_type)
                local = ctx.declare(name, base_type, stmt.pos)
                checked.append((local, init))
            stmt.declarators = checked
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._check_expr(ctx, stmt.expr)
            if not isinstance(stmt.expr, (ast.Assign, ast.IncDec, ast.Call,
                                          ast.New, ast.CtorCall)):
                raise CompileError("not a statement", stmt.pos)
        elif isinstance(stmt, ast.IfStmt):
            stmt.cond = self._check_condition(ctx, stmt.cond)
            self._check_stmt(ctx, stmt.then_stmt)
            if stmt.else_stmt is not None:
                self._check_stmt(ctx, stmt.else_stmt)
        elif isinstance(stmt, ast.WhileStmt):
            stmt.cond = self._check_condition(ctx, stmt.cond)
            ctx.loop_stack.append((None, "loop"))
            self._check_stmt(ctx, stmt.body)
            ctx.loop_stack.pop()
        elif isinstance(stmt, ast.DoWhileStmt):
            ctx.loop_stack.append((None, "loop"))
            self._check_stmt(ctx, stmt.body)
            ctx.loop_stack.pop()
            stmt.cond = self._check_condition(ctx, stmt.cond)
        elif isinstance(stmt, ast.ForStmt):
            ctx.push_scope()
            for init_stmt in stmt.init:
                self._check_stmt(ctx, init_stmt)
            if stmt.cond is not None:
                stmt.cond = self._check_condition(ctx, stmt.cond)
            stmt.update = [self._check_expr(ctx, u) for u in stmt.update]
            ctx.loop_stack.append((None, "loop"))
            self._check_stmt(ctx, stmt.body)
            ctx.loop_stack.pop()
            ctx.pop_scope()
        elif isinstance(stmt, ast.LabeledStmt):
            inner = stmt.stmt
            if isinstance(inner, (ast.WhileStmt, ast.DoWhileStmt, ast.ForStmt)):
                # register the label on the loop for break/continue targeting
                self._check_labeled_loop(ctx, stmt)
            else:
                ctx.loop_stack.append((stmt.label, "block"))
                self._check_stmt(ctx, inner)
                ctx.loop_stack.pop()
        elif isinstance(stmt, ast.BreakStmt):
            self._check_jump(ctx, stmt.label, stmt.pos, is_continue=False)
        elif isinstance(stmt, ast.ContinueStmt):
            self._check_jump(ctx, stmt.label, stmt.pos, is_continue=True)
        elif isinstance(stmt, ast.ReturnStmt):
            expected = ctx.method.return_type
            if stmt.expr is None:
                if expected is not VOID:
                    raise CompileError("missing return value", stmt.pos)
            else:
                if expected is VOID:
                    raise CompileError("void method returns a value", stmt.pos)
                stmt.expr = self._check_and_coerce(ctx, stmt.expr, expected)
        elif isinstance(stmt, ast.ThrowStmt):
            stmt.expr = self._check_expr(ctx, stmt.expr)
            if not self.world.is_subtype(stmt.expr.type, _THROWABLE):
                raise CompileError("thrown value is not a Throwable", stmt.pos)
        elif isinstance(stmt, ast.TryStmt):
            self._check_block(ctx, stmt.body)
            for clause in stmt.catches:
                catch_type = self.resolve_type(clause.type_ref)
                if not self.world.is_subtype(catch_type, _THROWABLE):
                    raise CompileError("catch of non-Throwable type",
                                       clause.pos)
                clause.catch_type = catch_type
                ctx.push_scope()
                clause.local = ctx.declare(clause.name, catch_type, clause.pos)
                for inner_stmt in clause.body.stmts:
                    self._check_stmt(ctx, inner_stmt)
                ctx.pop_scope()
            if stmt.finally_block is not None:
                self._check_block(ctx, stmt.finally_block)
        elif isinstance(stmt, ast.SwitchStmt):
            stmt.selector = self._check_expr(ctx, stmt.selector)
            sel_type = stmt.selector.type
            if sel_type not in (INT, CHAR):
                raise CompileError("switch selector must be int or char",
                                   stmt.pos)
            if sel_type is CHAR:
                stmt.selector = self._coerce(stmt.selector, INT)
            seen: set[int] = set()
            defaults = 0
            ctx.loop_stack.append((None, "switch"))
            ctx.push_scope()
            for case in stmt.cases:
                labels: list[ast.Expr] = []
                for label in case.labels:
                    label = self._check_expr(ctx, label)
                    value = constant_value(label)
                    if not isinstance(value, int) or isinstance(value, bool):
                        raise CompileError("case label must be a constant int",
                                           case.pos)
                    if value in seen:
                        raise CompileError(f"duplicate case label {value}",
                                           case.pos)
                    seen.add(value)
                    labels.append(label)
                case.labels = labels
                defaults += case.is_default
                for inner_stmt in case.stmts:
                    self._check_stmt(ctx, inner_stmt)
            ctx.pop_scope()
            ctx.loop_stack.pop()
            if defaults > 1:
                raise CompileError("duplicate default label", stmt.pos)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:
            raise CompileError(f"unsupported statement {type(stmt).__name__}",
                               stmt.pos)

    def _check_labeled_loop(self, ctx: _MethodContext,
                            stmt: ast.LabeledStmt) -> None:
        loop = stmt.stmt
        label = stmt.label
        if isinstance(loop, ast.WhileStmt):
            loop.cond = self._check_condition(ctx, loop.cond)
            ctx.loop_stack.append((label, "loop"))
            self._check_stmt(ctx, loop.body)
            ctx.loop_stack.pop()
        elif isinstance(loop, ast.DoWhileStmt):
            ctx.loop_stack.append((label, "loop"))
            self._check_stmt(ctx, loop.body)
            ctx.loop_stack.pop()
            loop.cond = self._check_condition(ctx, loop.cond)
        elif isinstance(loop, ast.ForStmt):
            ctx.push_scope()
            for init_stmt in loop.init:
                self._check_stmt(ctx, init_stmt)
            if loop.cond is not None:
                loop.cond = self._check_condition(ctx, loop.cond)
            loop.update = [self._check_expr(ctx, u) for u in loop.update]
            ctx.loop_stack.append((label, "loop"))
            self._check_stmt(ctx, loop.body)
            ctx.loop_stack.pop()
            ctx.pop_scope()

    def _check_jump(self, ctx: _MethodContext, label: Optional[str], pos,
                    *, is_continue: bool) -> None:
        if label is None:
            for entry_label, kind in reversed(ctx.loop_stack):
                if kind == "loop" or (kind == "switch" and not is_continue):
                    return
            kw = "continue" if is_continue else "break"
            raise CompileError(f"{kw} outside of a loop", pos)
        for entry_label, kind in reversed(ctx.loop_stack):
            if entry_label == label:
                if is_continue and kind != "loop":
                    raise CompileError(
                        f"continue target {label!r} is not a loop", pos)
                return
        raise CompileError(f"undefined label {label!r}", pos)

    def _check_condition(self, ctx: _MethodContext,
                         expr: ast.Expr) -> ast.Expr:
        expr = self._check_expr(ctx, expr)
        if expr.type is not BOOLEAN:
            raise CompileError("condition must be boolean", expr.pos)
        return expr

    # ==================================================================
    # expressions

    def _check_and_coerce(self, ctx: _MethodContext, expr: ast.Expr,
                          target: Type) -> ast.Expr:
        expr = self._check_expr(ctx, expr)
        return self._coerce(expr, target)

    def _coerce(self, expr: ast.Expr, target: Type) -> ast.Expr:
        """Insert an implicit widening conversion, or fail."""
        src = expr.type
        if src == target:
            return expr
        if isinstance(src, PrimitiveType) and isinstance(target, PrimitiveType):
            if widens_to(src, target):
                return ast.Convert(expr, target, conversion_ops(src, target))
            raise CompileError(f"cannot implicitly convert {src} to {target}",
                               expr.pos)
        if self.world.is_subtype(src, target):
            return ast.Convert(expr, target)  # reference widening, no ops
        raise CompileError(f"incompatible types: {src} cannot be {target}",
                           expr.pos)

    def _check_expr(self, ctx: _MethodContext, expr: ast.Expr) -> ast.Expr:
        method_name = "_check_" + type(expr).__name__.lower()
        handler = getattr(self, method_name, None)
        if handler is None:
            raise CompileError(f"unsupported expression {type(expr).__name__}",
                               expr.pos)
        return handler(ctx, expr)

    # -- leaves ---------------------------------------------------------

    def _check_literal(self, ctx: _MethodContext,
                       expr: ast.Literal) -> ast.Expr:
        expr.type = {
            "int": INT, "long": LONG, "float": FLOAT, "double": DOUBLE,
            "char": CHAR, "boolean": BOOLEAN, "string": _STRING, "null": NULL,
        }[expr.kind]
        if expr.kind == "int" and not (jmath.INT_MIN <= expr.value
                                       <= jmath.INT_MAX):
            raise CompileError("int literal out of range", expr.pos)
        return expr

    def _check_name(self, ctx: _MethodContext, expr: ast.Name) -> ast.Expr:
        local = ctx.lookup(expr.ident)
        if local is not None:
            read = ast.LocalRead(local, expr.pos)
            read.type = local.type
            return read
        field = ctx.class_info.find_field(expr.ident)
        if field is not None:
            return self._field_read(ctx, None, field, expr.pos)
        raise CompileError(f"undefined name {expr.ident!r}", expr.pos)

    def _check_this(self, ctx: _MethodContext, expr: ast.This) -> ast.Expr:
        if ctx.method.is_static:
            raise CompileError("'this' in a static context", expr.pos)
        expr.type = ctx.class_info.type
        return expr

    # -- field and array access -----------------------------------------

    def _field_read(self, ctx: _MethodContext, target: Optional[ast.Expr],
                    field: FieldInfo, pos) -> ast.Expr:
        access = ast.FieldAccess(target, field.name, pos)
        access.field = field
        access.type = field.type
        if field.is_static:
            access.static_class = field.declaring
            access.target = None
        elif target is None:
            if ctx.method.is_static:
                raise CompileError(
                    f"instance field {field.name!r} in static context", pos)
            this = ast.This(pos)
            this.type = ctx.class_info.type
            access.target = this
        return access

    def _check_fieldaccess(self, ctx: _MethodContext,
                           expr: ast.FieldAccess) -> ast.Expr:
        if expr.field is not None:
            return expr  # already resolved (re-read of an lvalue)
        target = expr.target
        # `ClassName.field` -- target is an unresolvable Name that is a class
        if isinstance(target, ast.Name) and ctx.lookup(target.ident) is None:
            info = self.world.lookup(target.ident)
            if info is not None:
                field = info.find_field(expr.name)
                if field is None or not field.is_static:
                    raise CompileError(
                        f"no static field {expr.name!r} in {info.name}",
                        expr.pos)
                return self._field_read(ctx, None, field, expr.pos)
        target = self._check_expr(ctx, target)
        if isinstance(target.type, ArrayType):
            if expr.name != "length":
                raise CompileError("arrays only have 'length'", expr.pos)
            length = ast.ArrayLength(target, expr.pos)
            length.type = INT
            return length
        if not isinstance(target.type, ClassType):
            raise CompileError(f"cannot access field of {target.type}",
                               expr.pos)
        info = self.world.class_of(target.type)
        field = info.find_field(expr.name)
        if field is None:
            raise CompileError(f"no field {expr.name!r} in {info.name}",
                               expr.pos)
        if field.is_static:
            return self._field_read(ctx, None, field, expr.pos)
        return self._field_read(ctx, target, field, expr.pos)

    def _check_arrayaccess(self, ctx: _MethodContext,
                           expr: ast.ArrayAccess) -> ast.Expr:
        expr.array = self._check_expr(ctx, expr.array)
        if not isinstance(expr.array.type, ArrayType):
            raise CompileError(f"not an array: {expr.array.type}", expr.pos)
        expr.index = self._check_expr(ctx, expr.index)
        if expr.index.type not in (INT, CHAR):
            raise CompileError("array index must be int", expr.pos)
        expr.index = self._coerce(expr.index, INT)
        expr.type = expr.array.type.element
        return expr

    # -- calls ------------------------------------------------------------

    def _check_call(self, ctx: _MethodContext, expr: ast.Call) -> ast.Expr:
        args = [self._check_expr(ctx, arg) for arg in expr.args]
        if expr.is_super:
            if ctx.method.is_static:
                raise CompileError("'super' in static context", expr.pos)
            owner = ctx.class_info.superclass
            method = self._resolve_overload(owner, expr.name, args, expr.pos)
            expr.method = method
            expr.args = self._coerce_args(args, method)
            expr.type = method.return_type
            return expr
        target = expr.target
        if isinstance(target, ast.Name) and ctx.lookup(target.ident) is None:
            info = self.world.lookup(target.ident)
            if info is not None:
                method = self._resolve_overload(info, expr.name, args,
                                                expr.pos, static_only=True)
                expr.method = method
                expr.static_class = info
                expr.target = None
                expr.args = self._coerce_args(args, method)
                expr.type = method.return_type
                return expr
        if target is None:
            owner = ctx.class_info
            method = self._resolve_overload(owner, expr.name, args, expr.pos)
            if not method.is_static:
                if ctx.method.is_static:
                    raise CompileError(
                        f"instance method {expr.name!r} in static context",
                        expr.pos)
                this = ast.This(expr.pos)
                this.type = ctx.class_info.type
                expr.target = this
            expr.method = method
            expr.args = self._coerce_args(args, method)
            expr.type = method.return_type
            return expr
        target = self._check_expr(ctx, target)
        if isinstance(target.type, ArrayType):
            raise CompileError("arrays have no methods", expr.pos)
        if isinstance(target.type, NullType):
            raise CompileError("cannot invoke a method on null", expr.pos)
        if not isinstance(target.type, ClassType):
            raise CompileError(f"cannot call method on {target.type}",
                               expr.pos)
        info = self.world.class_of(target.type)
        method = self._resolve_overload(info, expr.name, args, expr.pos)
        if method.is_static:
            expr.static_class = method.declaring
            expr.target = None  # evaluated for effect? Java discards it too
        else:
            expr.target = target
        expr.method = method
        expr.args = self._coerce_args(args, method)
        expr.type = method.return_type
        return expr

    def _check_ctorcall(self, ctx: _MethodContext,
                        expr: ast.CtorCall) -> ast.Expr:
        if not ctx.method.is_constructor:
            raise CompileError("constructor call outside a constructor",
                               expr.pos)
        args = [self._check_expr(ctx, arg) for arg in expr.args]
        owner = (ctx.class_info.superclass if expr.is_super
                 else ctx.class_info)
        method = self._resolve_overload(owner, "<init>", args, expr.pos)
        expr.method = method
        expr.args = self._coerce_args(args, method)
        expr.type = VOID
        return expr

    def _check_new(self, ctx: _MethodContext, expr: ast.New) -> ast.Expr:
        class_type = self.resolve_type(expr.type_ref)
        if not isinstance(class_type, ClassType):
            raise CompileError("can only instantiate classes", expr.pos)
        info = self.world.class_of(class_type)
        if info.is_abstract:
            raise CompileError(f"cannot instantiate abstract {info.name}",
                               expr.pos)
        args = [self._check_expr(ctx, arg) for arg in expr.args]
        method = self._resolve_overload(info, "<init>", args, expr.pos)
        expr.class_info = info
        expr.method = method
        expr.args = self._coerce_args(args, method)
        expr.type = class_type
        return expr

    def _check_newarray(self, ctx: _MethodContext,
                        expr: ast.NewArray) -> ast.Expr:
        elem_type = self.resolve_type(expr.elem_ref)
        dims = []
        for dim in expr.dims:
            dim = self._check_expr(ctx, dim)
            if dim.type not in (INT, CHAR):
                raise CompileError("array size must be int", expr.pos)
            dims.append(self._coerce(dim, INT))
        expr.dims = dims
        result = elem_type
        for _ in range(len(expr.dims) + expr.extra_dims):
            result = ArrayType(result)
        expr.type = result
        return expr

    def _resolve_overload(self, info: ClassInfo, name: str,
                          args: list[ast.Expr], pos,
                          static_only: bool = False) -> MethodInfo:
        candidates = info.methods_named(name)
        if static_only:
            candidates = [m for m in candidates if m.is_static]
        if not candidates:
            raise CompileError(f"no method {name!r} in {info.name}", pos)
        applicable = []
        for method in candidates:
            if len(method.param_types) != len(args):
                continue
            if all(self.world.assignable(arg.type, param)
                   for arg, param in zip(args, method.param_types)):
                applicable.append(method)
        if not applicable:
            arg_types = ", ".join(str(a.type) for a in args)
            raise CompileError(
                f"no applicable overload {info.name}.{name}({arg_types})", pos)
        best = applicable[0]
        for method in applicable[1:]:
            if self._more_specific(method, best):
                best = method
        for method in applicable:
            if method is not best and not self._more_specific(best, method):
                arg_types = ", ".join(str(a.type) for a in args)
                raise CompileError(
                    f"ambiguous call {info.name}.{name}({arg_types})", pos)
        return best

    def _more_specific(self, a: MethodInfo, b: MethodInfo) -> bool:
        return all(self.world.assignable(pa, pb)
                   for pa, pb in zip(a.param_types, b.param_types))

    def _coerce_args(self, args: list[ast.Expr],
                     method: MethodInfo) -> list[ast.Expr]:
        return [self._coerce(arg, param)
                for arg, param in zip(args, method.param_types)]

    # -- operators --------------------------------------------------------

    def _check_unary(self, ctx: _MethodContext, expr: ast.Unary) -> ast.Expr:
        operand = self._check_expr(ctx, expr.operand)
        if expr.op == "+":
            if not operand.type.is_numeric():
                raise CompileError("unary + on non-numeric", expr.pos)
            return self._promote_unary(operand)
        if expr.op == "-":
            if not operand.type.is_numeric():
                raise CompileError("unary - on non-numeric", expr.pos)
            expr.operand = self._promote_unary(operand)
            expr.operation = lookup_op(expr.operand.type, "neg")
            expr.type = expr.operand.type
            return expr
        if expr.op == "~":
            if not operand.type.is_integral():
                raise CompileError("~ on non-integral", expr.pos)
            expr.operand = self._promote_unary(operand)
            expr.operation = lookup_op(expr.operand.type, "compl")
            expr.type = expr.operand.type
            return expr
        if expr.op == "!":
            if operand.type is not BOOLEAN:
                raise CompileError("! on non-boolean", expr.pos)
            expr.operand = operand
            expr.operation = lookup_op(BOOLEAN, "not")
            expr.type = BOOLEAN
            return expr
        raise CompileError(f"unknown unary operator {expr.op}", expr.pos)

    def _promote_unary(self, expr: ast.Expr) -> ast.Expr:
        """Unary numeric promotion: char -> int."""
        if expr.type is CHAR:
            return self._coerce(expr, INT)
        return expr

    def _check_binary(self, ctx: _MethodContext, expr: ast.Binary) -> ast.Expr:
        left = self._check_expr(ctx, expr.left)
        right = self._check_expr(ctx, expr.right)
        op = expr.op

        if op == "+" and (left.type == _STRING or right.type == _STRING):
            expr.left, expr.right = left, right
            expr.is_string_concat = True
            expr.type = _STRING
            return expr

        if op in ("&&", "||"):
            if left.type is not BOOLEAN or right.type is not BOOLEAN:
                raise CompileError(f"{op} requires boolean operands", expr.pos)
            expr.left, expr.right = left, right
            expr.type = BOOLEAN
            return expr

        if op in ("==", "!=") and left.type.is_reference() \
                and right.type.is_reference():
            if not (self.world.is_subtype(left.type, right.type)
                    or self.world.is_subtype(right.type, left.type)):
                raise CompileError(
                    f"incomparable types {left.type} and {right.type}",
                    expr.pos)
            common = self.world.common_supertype(left.type, right.type)
            expr.left = self._coerce(left, common) \
                if not isinstance(left.type, NullType) else left
            expr.right = self._coerce(right, common) \
                if not isinstance(right.type, NullType) else right
            expr.is_ref_compare = True
            expr.compare_type = common
            expr.type = BOOLEAN
            return expr

        if op in ("==", "!=") and left.type is BOOLEAN \
                and right.type is BOOLEAN:
            expr.left, expr.right = left, right
            expr.operation = lookup_op(BOOLEAN, "eq" if op == "==" else "ne")
            expr.type = BOOLEAN
            return expr

        if op in ("&", "|", "^") and left.type is BOOLEAN \
                and right.type is BOOLEAN:
            expr.left, expr.right = left, right
            name = {"&": "and", "|": "or", "^": "xor"}[op]
            expr.operation = lookup_op(BOOLEAN, name)
            expr.type = BOOLEAN
            return expr

        if op in ("<<", ">>", ">>>"):
            if not left.type.is_integral() or not right.type.is_integral():
                raise CompileError(f"{op} requires integral operands",
                                   expr.pos)
            expr.left = self._promote_unary(left)
            right = self._promote_unary(right)
            if right.type is LONG:
                right = ast.Convert(right, INT, [lookup_op(LONG, "to_int")])
            expr.right = right
            name = {"<<": "shl", ">>": "shr", ">>>": "ushr"}[op]
            expr.operation = lookup_op(expr.left.type, name)
            expr.type = expr.left.type
            return expr

        # arithmetic / comparison with binary numeric promotion
        promoted = binary_numeric_promotion(left.type, right.type)
        if promoted is None:
            raise CompileError(
                f"operator {op} cannot be applied to "
                f"{left.type}, {right.type}", expr.pos)
        if op in ("&", "|", "^") and not promoted.is_integral():
            raise CompileError(f"{op} requires integral operands", expr.pos)
        expr.left = self._coerce(left, promoted)
        expr.right = self._coerce(right, promoted)
        name = {
            "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
            "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
            "==": "eq", "!=": "ne", "&": "and", "|": "or", "^": "xor",
        }.get(op)
        if name is None:
            raise CompileError(f"unknown operator {op}", expr.pos)
        expr.operation = lookup_op(promoted, name)
        expr.type = expr.operation.result
        return expr

    def _check_ternary(self, ctx: _MethodContext,
                       expr: ast.Ternary) -> ast.Expr:
        expr.cond = self._check_condition(ctx, expr.cond)
        then_expr = self._check_expr(ctx, expr.then_expr)
        else_expr = self._check_expr(ctx, expr.else_expr)
        if then_expr.type == else_expr.type:
            result = then_expr.type
        else:
            promoted = binary_numeric_promotion(then_expr.type,
                                                else_expr.type)
            if promoted is not None:
                result = promoted
            else:
                result = self.world.common_supertype(then_expr.type,
                                                     else_expr.type)
        if result is VOID or isinstance(result, NullType):
            raise CompileError("bad ternary operand types", expr.pos)
        expr.then_expr = self._coerce(then_expr, result) \
            if not isinstance(then_expr.type, NullType) else then_expr
        expr.else_expr = self._coerce(else_expr, result) \
            if not isinstance(else_expr.type, NullType) else else_expr
        expr.type = result
        return expr

    def _check_assign(self, ctx: _MethodContext, expr: ast.Assign) -> ast.Expr:
        target = self._check_lvalue(ctx, expr.target)
        target_type = target.type
        if expr.op == "=":
            expr.target = target
            expr.value = self._check_and_coerce(ctx, expr.value, target_type)
            expr.type = target_type
            return expr
        # compound assignment: a op= b  ==  a = (T)(a op b)
        op = expr.op[:-1]
        value = self._check_expr(ctx, expr.value)
        if op == "+" and target_type == _STRING:
            expr.target = target
            expr.value = value
            expr.is_string_concat = True
            expr.type = _STRING
            return expr
        if not isinstance(target_type, PrimitiveType):
            raise CompileError(f"bad compound assignment to {target_type}",
                               expr.pos)
        synthetic = ast.Binary(op, _reread(target), value, expr.pos)
        checked = self._check_binary(ctx, synthetic)
        expr.target = target
        expr.value = checked
        expr.operation = checked.operation
        if checked.type != target_type:
            if not (isinstance(checked.type, PrimitiveType)
                    and target_type.is_numeric()):
                raise CompileError("bad compound assignment types", expr.pos)
            expr.narrowing_ops = conversion_ops(checked.type, target_type)
        expr.type = target_type
        return expr

    def _check_incdec(self, ctx: _MethodContext, expr: ast.IncDec) -> ast.Expr:
        target = self._check_lvalue(ctx, expr.target)
        if not target.type.is_numeric():
            raise CompileError(f"{expr.op} on non-numeric", expr.pos)
        expr.target = target
        base = target.type if target.type is not CHAR else INT
        expr.operation = lookup_op(base, "add" if expr.op == "++" else "sub")
        expr.type = target.type
        return expr

    def _check_lvalue(self, ctx: _MethodContext, expr: ast.Expr) -> ast.Expr:
        checked = self._check_expr(ctx, expr)
        if isinstance(checked, ast.LocalRead):
            return checked
        if isinstance(checked, ast.FieldAccess):
            if checked.field.is_final and checked.field.declaring.is_builtin:
                raise CompileError("cannot assign to a final library field",
                                   expr.pos)
            return checked
        if isinstance(checked, ast.ArrayAccess):
            return checked
        raise CompileError("not an assignable location", expr.pos)

    def _check_cast(self, ctx: _MethodContext, expr: ast.Cast) -> ast.Expr:
        operand = self._check_expr(ctx, expr.operand)
        target = self.resolve_type(expr.type_ref)
        src = operand.type
        expr.operand = operand
        expr.target_type = target
        expr.type = target
        if src == target:
            expr.cast_kind = "identity"
            return expr
        if isinstance(src, PrimitiveType) and isinstance(target,
                                                         PrimitiveType):
            if src is BOOLEAN or target is BOOLEAN or src is VOID \
                    or target is VOID:
                raise CompileError(f"cannot cast {src} to {target}", expr.pos)
            expr.cast_kind = "numeric"
            expr.convert_ops = conversion_ops(src, target)
            return expr
        if src.is_reference() and target.is_reference():
            if self.world.is_subtype(src, target):
                expr.cast_kind = "widen_ref"
            elif self.world.is_subtype(target, src):
                expr.cast_kind = "checked"
            else:
                raise CompileError(f"impossible cast {src} to {target}",
                                   expr.pos)
            return expr
        raise CompileError(f"cannot cast {src} to {target}", expr.pos)

    def _check_instanceof(self, ctx: _MethodContext,
                          expr: ast.InstanceOf) -> ast.Expr:
        operand = self._check_expr(ctx, expr.operand)
        target = self.resolve_type(expr.type_ref)
        if not operand.type.is_reference() or not target.is_reference():
            raise CompileError("instanceof requires reference types",
                               expr.pos)
        if not (self.world.is_subtype(operand.type, target)
                or self.world.is_subtype(target, operand.type)):
            raise CompileError(
                f"impossible instanceof {operand.type} / {target}", expr.pos)
        expr.operand = operand
        expr.target_type = target
        expr.type = BOOLEAN
        return expr

    def _check_localread(self, ctx: _MethodContext,
                         expr: ast.LocalRead) -> ast.Expr:
        return expr

    def _check_convert(self, ctx: _MethodContext,
                       expr: ast.Convert) -> ast.Expr:
        return expr


# ----------------------------------------------------------------------
# helpers

def _field_init_context(info: ClassInfo, member: ast.FieldDecl) -> MethodInfo:
    """A pseudo-method context used when checking field initializers."""
    pseudo = MethodInfo("<fieldinit>", [], VOID, is_static=member.is_static)
    pseudo.declaring = info
    return pseudo


def _reread(lvalue: ast.Expr) -> ast.Expr:
    """Build a read of the same location for compound assignment expansion.

    The UAST builder evaluates the location's subexpressions only once; it
    recognises the shared structure because the nodes are shared.
    """
    if isinstance(lvalue, ast.LocalRead):
        read = ast.LocalRead(lvalue.local, lvalue.pos)
        read.type = lvalue.local.type
        return read
    if isinstance(lvalue, ast.FieldAccess):
        read = ast.FieldAccess(lvalue.target, lvalue.name, lvalue.pos)
        read.field = lvalue.field
        read.static_class = lvalue.static_class
        read.type = lvalue.field.type
        return read
    if isinstance(lvalue, ast.ArrayAccess):
        read = ast.ArrayAccess(lvalue.array, lvalue.index, lvalue.pos)
        read.type = lvalue.type
        return read
    raise AssertionError("not an lvalue")


def constant_value(expr: ast.Expr):
    """Compile-time constant evaluation (case labels, while(true), folding).

    Returns the Python value, or None when not a constant.
    """
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Convert):
        inner = constant_value(expr.operand)
        if inner is None:
            return None
        for op in expr.ops:
            inner = op.fold(inner)
        return inner
    if isinstance(expr, ast.Unary) and expr.operation is not None:
        inner = constant_value(expr.operand)
        if inner is None:
            return None
        return expr.operation.fold(inner)
    if isinstance(expr, ast.Binary) and expr.operation is not None \
            and not expr.operation.traps:
        left = constant_value(expr.left)
        right = constant_value(expr.right)
        if left is None or right is None:
            return None
        return expr.operation.fold(left, right)
    if isinstance(expr, ast.FieldAccess) and expr.field is not None \
            and expr.field.const_value is not None:
        return expr.field.const_value
    return None


# ----------------------------------------------------------------------
# definite assignment / reachability
#
# A conservative flow analysis: (assigned-set, completes-normally).  It is
# sound for the SSA builder (never claims assignment that might not happen)
# and precise enough for idiomatic Java.

def _flows(stmt: ast.Stmt, assigned: set) -> tuple[set, bool]:
    if isinstance(stmt, ast.Block):
        completes = True
        for inner in stmt.stmts:
            if not completes:
                raise CompileError("unreachable statement", inner.pos)
            assigned, completes = _flows(inner, assigned)
        return assigned, completes
    if isinstance(stmt, ast.LocalVarDecl):
        out = set(assigned)
        for local, init in stmt.declarators:
            if init is not None:
                out |= _expr_assigns(init)
                _check_reads(init, out, stmt.pos)
                out.add(local)
        return out, True
    if isinstance(stmt, ast.ExprStmt):
        out = assigned | _expr_assigns(stmt.expr)
        _check_reads(stmt.expr, assigned | _expr_assigns(stmt.expr), stmt.pos)
        return out, True
    if isinstance(stmt, ast.IfStmt):
        _check_reads(stmt.cond, assigned, stmt.pos)
        base = assigned | _expr_assigns(stmt.cond)
        then_out, then_completes = _flows(stmt.then_stmt, set(base))
        if stmt.else_stmt is None:
            return base, True
        else_out, else_completes = _flows(stmt.else_stmt, set(base))
        if then_completes and else_completes:
            return then_out & else_out, True
        if then_completes:
            return then_out, True
        if else_completes:
            return else_out, True
        return base, False
    if isinstance(stmt, ast.WhileStmt):
        _check_reads(stmt.cond, assigned, stmt.pos)
        base = assigned | _expr_assigns(stmt.cond)
        _flows(stmt.body, set(base))
        always = constant_value(stmt.cond) is True
        if always:
            return base, _has_break(stmt.body, 0)
        return base, True
    if isinstance(stmt, ast.DoWhileStmt):
        body_out, body_completes = _flows(stmt.body, set(assigned))
        if body_completes:
            _check_reads(stmt.cond, body_out, stmt.pos)
            body_out |= _expr_assigns(stmt.cond)
        always = body_completes and constant_value(stmt.cond) is True
        completes = (not always) or _has_break(stmt.body, 0)
        if not body_completes:
            completes = _has_break(stmt.body, 0)
        return (body_out if body_completes else assigned), completes
    if isinstance(stmt, ast.ForStmt):
        out = set(assigned)
        for init in stmt.init:
            out, _ = _flows(init, out)
        if stmt.cond is not None:
            _check_reads(stmt.cond, out, stmt.pos)
            out |= _expr_assigns(stmt.cond)
        _flows(stmt.body, set(out))
        infinite = stmt.cond is None or constant_value(stmt.cond) is True
        if infinite:
            return out, _has_break(stmt.body, 0)
        return out, True
    if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
        return assigned, False
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.expr is not None:
            _check_reads(stmt.expr, assigned, stmt.pos)
        return assigned, False
    if isinstance(stmt, ast.ThrowStmt):
        _check_reads(stmt.expr, assigned, stmt.pos)
        return assigned, False
    if isinstance(stmt, ast.TryStmt):
        body_out, body_completes = _flows(stmt.body, set(assigned))
        completes = body_completes
        outs = [body_out] if body_completes else []
        for clause in stmt.catches:
            catch_in = set(assigned)
            catch_in.add(clause.local)
            catch_out, catch_completes = _flows(clause.body, catch_in)
            if catch_completes:
                outs.append(catch_out)
                completes = True
        merged = set.intersection(*outs) if outs else set(assigned)
        if stmt.finally_block is not None:
            fin_out, fin_completes = _flows(stmt.finally_block, set(assigned))
            merged |= (fin_out - assigned)
            if not fin_completes:
                completes = False
        return merged, completes
    if isinstance(stmt, ast.SwitchStmt):
        _check_reads(stmt.selector, assigned, stmt.pos)
        base = assigned | _expr_assigns(stmt.selector)
        has_default = any(case.is_default for case in stmt.cases)
        outs = []
        completes_any = not has_default
        current = set(base)
        case_completes = True
        for case in stmt.cases:
            current |= base
            case_completes = True
            for inner in case.stmts:
                if not case_completes:
                    # fell off via break/return; next statements unreachable
                    raise CompileError("unreachable statement", inner.pos)
                current, case_completes = _flows(inner, current)
            if case_completes:
                pass  # falls through to the next case
            else:
                outs.append(current)
                current = set(base)
        if stmt.cases and case_completes:
            outs.append(current)
            completes_any = True
        # breaks inside the switch complete the statement
        if any(_case_has_break(case) for case in stmt.cases):
            completes_any = True
        merged = set.intersection(*outs) if outs and has_default \
            else set(base)
        return merged, completes_any or not stmt.cases
    if isinstance(stmt, ast.LabeledStmt):
        out, completes = _flows(stmt.stmt, assigned)
        if _has_labeled_break(stmt.stmt, stmt.label):
            completes = True
        return out, completes
    if isinstance(stmt, ast.EmptyStmt):
        return assigned, True
    raise AssertionError(f"unhandled statement {type(stmt).__name__}")


def _case_has_break(case: ast.SwitchCase) -> bool:
    return any(_has_break(s, 0) or isinstance(s, ast.BreakStmt)
               for s in case.stmts)


def _has_break(stmt: ast.Stmt, depth: int) -> bool:
    """Does ``stmt`` contain an unlabeled break escaping ``depth`` loops?"""
    if isinstance(stmt, ast.BreakStmt):
        return stmt.label is None and depth == 0
    if isinstance(stmt, ast.Block):
        return any(_has_break(s, depth) for s in stmt.stmts)
    if isinstance(stmt, ast.IfStmt):
        return (_has_break(stmt.then_stmt, depth)
                or (stmt.else_stmt is not None
                    and _has_break(stmt.else_stmt, depth)))
    if isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt, ast.ForStmt)):
        return False  # inner loop captures unlabeled breaks
    if isinstance(stmt, ast.SwitchStmt):
        return False  # switch captures unlabeled breaks
    if isinstance(stmt, ast.LabeledStmt):
        return _has_break(stmt.stmt, depth)
    if isinstance(stmt, ast.TryStmt):
        if _has_break(stmt.body, depth):
            return True
        if any(_has_break(c.body, depth) for c in stmt.catches):
            return True
        return (stmt.finally_block is not None
                and _has_break(stmt.finally_block, depth))
    return False


def _has_labeled_break(stmt: ast.Stmt, label: str) -> bool:
    if isinstance(stmt, ast.BreakStmt):
        return stmt.label == label
    if isinstance(stmt, ast.Block):
        return any(_has_labeled_break(s, label) for s in stmt.stmts)
    if isinstance(stmt, ast.IfStmt):
        return (_has_labeled_break(stmt.then_stmt, label)
                or (stmt.else_stmt is not None
                    and _has_labeled_break(stmt.else_stmt, label)))
    if isinstance(stmt, ast.WhileStmt):
        return _has_labeled_break(stmt.body, label)
    if isinstance(stmt, ast.DoWhileStmt):
        return _has_labeled_break(stmt.body, label)
    if isinstance(stmt, ast.ForStmt):
        return _has_labeled_break(stmt.body, label)
    if isinstance(stmt, ast.SwitchStmt):
        return any(any(_has_labeled_break(s, label) for s in case.stmts)
                   for case in stmt.cases)
    if isinstance(stmt, ast.LabeledStmt):
        return _has_labeled_break(stmt.stmt, label)
    if isinstance(stmt, ast.TryStmt):
        if _has_labeled_break(stmt.body, label):
            return True
        if any(_has_labeled_break(c.body, label) for c in stmt.catches):
            return True
        return (stmt.finally_block is not None
                and _has_labeled_break(stmt.finally_block, label))
    return False


def _expr_assigns(expr: Optional[ast.Expr]) -> set:
    """Locals unconditionally assigned while evaluating ``expr``."""
    if expr is None:
        return set()
    out: set = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Assign):
            if isinstance(node.target, ast.LocalRead):
                out.add(node.target.local)
            else:
                stack.append(node.target)
            stack.append(node.value)
        elif isinstance(node, ast.IncDec):
            if isinstance(node.target, ast.LocalRead):
                out.add(node.target.local)
            else:
                stack.append(node.target)
        elif isinstance(node, ast.Binary):
            stack.append(node.left)
            if node.op not in ("&&", "||"):
                stack.append(node.right)
        elif isinstance(node, ast.Ternary):
            stack.append(node.cond)
        elif isinstance(node, ast.Unary):
            stack.append(node.operand)
        elif isinstance(node, ast.Convert):
            stack.append(node.operand)
        elif isinstance(node, ast.Cast):
            stack.append(node.operand)
        elif isinstance(node, ast.InstanceOf):
            stack.append(node.operand)
        elif isinstance(node, ast.Call):
            if node.target is not None:
                stack.append(node.target)
            stack.extend(node.args)
        elif isinstance(node, (ast.New, ast.CtorCall)):
            stack.extend(node.args)
        elif isinstance(node, ast.NewArray):
            stack.extend(node.dims)
        elif isinstance(node, ast.FieldAccess):
            if node.target is not None:
                stack.append(node.target)
        elif isinstance(node, ast.ArrayLength):
            stack.append(node.target)
        elif isinstance(node, ast.ArrayAccess):
            stack.append(node.array)
            stack.append(node.index)
    return out


def _check_reads(expr: ast.Expr, assigned: set, pos) -> None:
    """Raise when a local is read before definite assignment."""
    local_assigned = set(assigned)
    _check_reads_inner(expr, local_assigned, pos)


def _check_reads_inner(expr: ast.Expr, assigned: set, pos) -> None:
    if isinstance(expr, ast.LocalRead):
        if expr.local not in assigned:
            raise CompileError(
                f"variable {expr.local.name!r} might not have been "
                "initialized", expr.pos or pos)
        return
    if isinstance(expr, ast.Assign):
        if isinstance(expr.target, ast.LocalRead):
            if expr.op != "=":
                _check_reads_inner(expr.target, assigned, pos)
            _check_reads_inner(expr.value, assigned, pos)
            assigned.add(expr.target.local)
            return
        _check_reads_inner(expr.target, assigned, pos)
        _check_reads_inner(expr.value, assigned, pos)
        return
    if isinstance(expr, ast.IncDec):
        _check_reads_inner(expr.target, assigned, pos)
        return
    if isinstance(expr, ast.Binary):
        _check_reads_inner(expr.left, assigned, pos)
        if expr.op in ("&&", "||"):
            _check_reads_inner(expr.right, set(assigned), pos)
        else:
            _check_reads_inner(expr.right, assigned, pos)
        return
    if isinstance(expr, ast.Ternary):
        _check_reads_inner(expr.cond, assigned, pos)
        _check_reads_inner(expr.then_expr, set(assigned), pos)
        _check_reads_inner(expr.else_expr, set(assigned), pos)
        return
    for child in _children(expr):
        _check_reads_inner(child, assigned, pos)


def _children(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, (ast.Unary, ast.Convert, ast.Cast, ast.InstanceOf)):
        return [expr.operand]
    if isinstance(expr, ast.Call):
        children = [expr.target] if expr.target is not None else []
        return children + list(expr.args)
    if isinstance(expr, (ast.New, ast.CtorCall)):
        return list(expr.args)
    if isinstance(expr, ast.NewArray):
        return list(expr.dims)
    if isinstance(expr, ast.FieldAccess):
        return [expr.target] if expr.target is not None else []
    if isinstance(expr, ast.ArrayLength):
        return [expr.target]
    if isinstance(expr, ast.ArrayAccess):
        return [expr.array, expr.index]
    return []


def analyze(unit: ast.CompilationUnit,
            world: Optional[World] = None) -> World:
    """Run both semantic passes over ``unit``; returns the populated world."""
    analyzer = SemanticAnalyzer(world)
    analyzer.declare(unit)
    analyzer.check(unit)
    return analyzer.world
