"""End-to-end execution semantics: source -> SafeTSA -> interpreter.

Each test pins an observable Java behaviour: arithmetic overflow rules,
evaluation order, dispatch, exception routing, string semantics.
"""

import pytest

from tests.conftest import main_wrap, run_java, stdout_of


class TestArithmetic:
    def test_int_overflow_wraps(self):
        out = stdout_of(main_wrap(
            "int x = 2147483647; x = x + 1; System.out.println(x);"))
        assert out == "-2147483648\n"

    def test_int_min_division_wraps(self):
        out = stdout_of(main_wrap(
            "int x = -2147483648; System.out.println(x / -1);"))
        assert out == "-2147483648\n"

    def test_division_truncates_toward_zero(self):
        out = stdout_of(main_wrap(
            "System.out.println(-7 / 2); System.out.println(7 / -2);"))
        assert out == "-3\n-3\n"

    def test_remainder_sign_follows_dividend(self):
        out = stdout_of(main_wrap(
            "System.out.println(-7 % 3); System.out.println(7 % -3);"))
        assert out == "-1\n1\n"

    def test_shift_amount_masked(self):
        out = stdout_of(main_wrap("System.out.println(1 << 33);"))
        assert out == "2\n"

    def test_long_shift_amount_masked_to_64(self):
        out = stdout_of(main_wrap("System.out.println(1L << 33);"))
        assert out == "8589934592\n"

    def test_unsigned_shift_right(self):
        out = stdout_of(main_wrap("System.out.println(-1 >>> 28);"))
        assert out == "15\n"

    def test_long_multiplication_wraps(self):
        out = stdout_of(main_wrap(
            "long x = 9223372036854775807L; System.out.println(x * 2L);"))
        assert out == "-2\n"

    def test_double_division_never_traps(self):
        out = stdout_of(main_wrap(
            "double d = 1.0 / 0.0; System.out.println(d);"))
        assert out == "Infinity\n"

    def test_double_nan_compares_false(self):
        out = stdout_of(main_wrap(
            "double n = 0.0 / 0.0;"
            "System.out.println(n < 1.0);"
            "System.out.println(n >= 1.0);"
            "System.out.println(n == n);"))
        assert out == "false\nfalse\nfalse\n"

    def test_char_arithmetic_promotes_to_int(self):
        out = stdout_of(main_wrap(
            "char c = 'a'; System.out.println(c + 1);"))
        assert out == "98\n"

    def test_int_to_char_narrowing(self):
        out = stdout_of(main_wrap(
            "int x = 65; char c = (char) x; System.out.println(c);"))
        assert out == "A\n"

    def test_double_to_int_truncation_and_saturation(self):
        out = stdout_of(main_wrap(
            "System.out.println((int) -2.9);"
            "System.out.println((int) 1e20);"
            "System.out.println((int) (0.0 / 0.0));"))
        assert out == "-2\n2147483647\n0\n"

    def test_float_rounding(self):
        out = stdout_of(main_wrap(
            "float f = 0.1f; double d = f; System.out.println(d < 0.1001);"))
        assert out == "true\n"

    def test_integer_division_by_zero_throws(self):
        result = run_java(main_wrap(
            "int z = 0; System.out.println(4 / z);"))
        assert result.exception_name() == "java.lang.ArithmeticException"

    def test_compound_assignment_implicit_narrowing(self):
        out = stdout_of(main_wrap(
            "char c = 'a'; c += 2; System.out.println(c);"))
        assert out == "c\n"

    def test_compound_assignment_with_double_rhs(self):
        out = stdout_of(main_wrap(
            "int x = 7; x += 0.9; System.out.println(x);"))
        assert out == "7\n"


class TestEvaluationOrder:
    def test_left_to_right_argument_evaluation(self):
        src = """
        class Main {
            static int trace;
            static int mark(int v) { trace = trace * 10 + v; return v; }
            static void main() {
                int sum = mark(1) + mark(2) * mark(3);
                System.out.println(trace);
                System.out.println(sum);
            }
        }
        """
        assert stdout_of(src) == "123\n7\n"

    def test_postfix_increment_value(self):
        out = stdout_of(main_wrap(
            "int i = 5; int j = i++; System.out.println(j + \" \" + i);"))
        assert out == "5 6\n"

    def test_prefix_increment_value(self):
        out = stdout_of(main_wrap(
            "int i = 5; int j = ++i; System.out.println(j + \" \" + i);"))
        assert out == "6 6\n"

    def test_compound_assign_reads_lhs_before_rhs(self):
        src = """
        class Main {
            static int x = 10;
            static int bump() { x = 100; return 1; }
            static void main() {
                x += bump();
                System.out.println(x);
            }
        }
        """
        # Java: lhs value (10) is saved before the rhs runs
        assert stdout_of(src) == "11\n"

    def test_array_store_index_evaluated_once(self):
        src = """
        class Main {
            static int calls;
            static int idx() { calls++; return 2; }
            static void main() {
                int[] a = new int[4];
                a[idx()] += 5;
                System.out.println(a[2] + " " + calls);
            }
        }
        """
        assert stdout_of(src) == "5 1\n"

    def test_short_circuit_and(self):
        src = """
        class Main {
            static int calls;
            static boolean probe() { calls++; return true; }
            static void main() {
                boolean r = false && probe();
                System.out.println(r + " " + calls);
            }
        }
        """
        assert stdout_of(src) == "false 0\n"

    def test_short_circuit_or(self):
        src = """
        class Main {
            static int calls;
            static boolean probe() { calls++; return false; }
            static void main() {
                boolean r = true || probe();
                System.out.println(r + " " + calls);
            }
        }
        """
        assert stdout_of(src) == "true 0\n"

    def test_ternary_evaluates_one_arm(self):
        src = """
        class Main {
            static int calls;
            static int mark(int v) { calls++; return v; }
            static void main() {
                int r = 1 < 2 ? mark(10) : mark(20);
                System.out.println(r + " " + calls);
            }
        }
        """
        assert stdout_of(src) == "10 1\n"


class TestControlFlow:
    def test_while_loop(self):
        out = stdout_of(main_wrap(
            "int s = 0; int i = 0; while (i < 5) { s += i; i++; }"
            "System.out.println(s);"))
        assert out == "10\n"

    def test_do_while_runs_at_least_once(self):
        out = stdout_of(main_wrap(
            "int n = 0; do { n++; } while (false); System.out.println(n);"))
        assert out == "1\n"

    def test_for_with_continue(self):
        out = stdout_of(main_wrap(
            "int s = 0;"
            "for (int i = 0; i < 6; i++) { if (i % 2 == 0) continue; s += i; }"
            "System.out.println(s);"))
        assert out == "9\n"

    def test_nested_loop_labeled_break(self):
        out = stdout_of(main_wrap(
            "int c = 0;"
            "outer: for (int i = 0; i < 10; i++)"
            "  for (int j = 0; j < 10; j++) {"
            "    c++; if (i * j == 6) break outer; }"
            "System.out.println(c);"))
        assert out == "17\n"

    def test_labeled_continue(self):
        out = stdout_of(main_wrap(
            "int c = 0;"
            "outer: for (int i = 0; i < 3; i++)"
            "  for (int j = 0; j < 3; j++) {"
            "    if (j == 1) continue outer; c++; }"
            "System.out.println(c);"))
        assert out == "3\n"

    def test_switch_with_fallthrough(self):
        src = main_wrap(
            "for (int i = 0; i < 4; i++) {"
            "  int r = 0;"
            "  switch (i) {"
            "    case 0: r += 1;"
            "    case 1: r += 10; break;"
            "    case 2: r += 100; break;"
            "    default: r = -1;"
            "  }"
            "  System.out.println(r);"
            "}")
        assert stdout_of(src) == "11\n10\n100\n-1\n"

    def test_switch_without_default(self):
        out = stdout_of(main_wrap(
            "int r = 7; switch (99) { case 1: r = 0; } "
            "System.out.println(r);"))
        assert out == "7\n"

    def test_while_with_sideeffect_condition(self):
        src = """
        class Main {
            static int n = 3;
            static boolean dec() { n--; return n >= 0; }
            static void main() {
                int c = 0;
                while (dec()) c++;
                System.out.println(c + " " + n);
            }
        }
        """
        assert stdout_of(src) == "3 -1\n"

    def test_do_while_with_sideeffect_condition(self):
        src = """
        class Main {
            static int n;
            static boolean next() { n++; return n < 3; }
            static void main() {
                int c = 0;
                do { c++; } while (next());
                System.out.println(c + " " + n);
            }
        }
        """
        assert stdout_of(src) == "3 3\n"


class TestExceptions:
    def test_catch_matching_type(self):
        out = stdout_of(main_wrap(
            "try { int z = 0; int q = 1 / z; }"
            "catch (ArithmeticException e) "
            "{ System.out.println(\"div:\" + e.getMessage()); }"))
        assert out == "div:/ by zero\n"

    def test_catch_subtype_via_supertype_clause(self):
        out = stdout_of(main_wrap(
            "try { int z = 0; int q = 1 / z; }"
            "catch (RuntimeException e) { System.out.println(\"rt\"); }"))
        assert out == "rt\n"

    def test_unmatched_exception_propagates(self):
        result = run_java(main_wrap(
            "try { int z = 0; int q = 1 / z; }"
            "catch (NullPointerException e) { System.out.println(\"no\"); }"))
        assert result.exception_name() == "java.lang.ArithmeticException"

    def test_finally_runs_on_normal_path(self):
        out = stdout_of(main_wrap(
            "try { System.out.println(\"body\"); }"
            "finally { System.out.println(\"fin\"); }"))
        assert out == "body\nfin\n"

    def test_finally_runs_on_exception_path(self):
        result = run_java(main_wrap(
            "try { int z = 0; int q = 1 / z; }"
            "finally { System.out.println(\"fin\"); }"))
        assert result.stdout == "fin\n"
        assert result.exception_name() == "java.lang.ArithmeticException"

    def test_finally_runs_on_return(self):
        src = """
        class Main {
            static int f() {
                try { return 1; }
                finally { System.out.println("fin"); }
            }
            static void main() { System.out.println(f()); }
        }
        """
        assert stdout_of(src) == "fin\n1\n"

    def test_finally_runs_on_break(self):
        out = stdout_of(main_wrap(
            "for (int i = 0; i < 3; i++) {"
            "  try { if (i == 1) break; }"
            "  finally { System.out.println(\"fin\" + i); }"
            "}"
            "System.out.println(\"after\");"))
        assert out == "fin0\nfin1\nafter\n"

    def test_return_value_computed_before_finally(self):
        src = """
        class Main {
            static int x = 1;
            static int f() {
                try { return x; }
                finally { x = 99; }
            }
            static void main() {
                System.out.println(f() + " " + x);
            }
        }
        """
        assert stdout_of(src) == "1 99\n"

    def test_nested_finally_ordering(self):
        src = """
        class Main {
            static int f() {
                try {
                    try { return 1; }
                    finally { System.out.println("inner"); }
                } finally { System.out.println("outer"); }
            }
            static void main() { System.out.println(f()); }
        }
        """
        assert stdout_of(src) == "inner\nouter\n1\n"

    def test_exception_in_catch_reaches_outer_handler(self):
        out = stdout_of(main_wrap(
            "try {"
            "  try { int z = 0; int q = 1 / z; }"
            "  catch (ArithmeticException e) { throw new "
            "IllegalStateException(\"from catch\"); }"
            "} catch (IllegalStateException e) "
            "{ System.out.println(e.getMessage()); }"))
        assert out == "from catch\n"

    def test_rethrow_reaches_outer_try(self):
        out = stdout_of(main_wrap(
            "try {"
            "  try { throw new IllegalStateException(\"x\"); }"
            "  catch (NullPointerException e) { System.out.println(\"no\"); }"
            "} catch (IllegalStateException e) "
            "{ System.out.println(\"outer \" + e.getMessage()); }"))
        assert out == "outer x\n"

    def test_throw_null_becomes_npe(self):
        result = run_java(main_wrap(
            "RuntimeException e = null; throw e;"))
        assert result.exception_name() == "java.lang.NullPointerException"

    def test_user_exception_class(self):
        src = """
        class AppError extends Exception {
            int code;
            AppError(int code) { this.code = code; }
        }
        class Main {
            static void main() {
                try { throw new AppError(42); }
                catch (AppError e) { System.out.println(e.code); }
            }
        }
        """
        assert stdout_of(src) == "42\n"

    def test_exception_point_variable_values(self):
        # the catch must observe the value at the exception point
        out = stdout_of(main_wrap(
            "int x = 1;"
            "try { x = 2; int z = 0; int q = 1 / z; x = 3; }"
            "catch (ArithmeticException e) { System.out.println(x); }"))
        assert out == "2\n"


class TestObjectsAndDispatch:
    def test_virtual_dispatch_overridden(self):
        src = """
        class A { int f() { return 1; } }
        class B extends A { int f() { return 2; } }
        class Main {
            static void main() {
                A x = new B();
                System.out.println(x.f());
            }
        }
        """
        assert stdout_of(src) == "2\n"

    def test_super_call_is_statically_bound(self):
        src = """
        class A { int f() { return 1; } }
        class B extends A {
            int f() { return super.f() + 10; }
        }
        class Main {
            static void main() { System.out.println(new B().f()); }
        }
        """
        assert stdout_of(src) == "11\n"

    def test_field_initializers_run_in_constructor(self):
        src = """
        class Box { int v = 41; Box() { v = v + 1; } }
        class Main {
            static void main() { System.out.println(new Box().v); }
        }
        """
        assert stdout_of(src) == "42\n"

    def test_this_constructor_delegation_skips_field_inits(self):
        src = """
        class Box {
            int v = 5;
            int w;
            Box() { this(10); }
            Box(int w) { this.w = w; }
        }
        class Main {
            static void main() {
                Box b = new Box();
                System.out.println(b.v + " " + b.w);
            }
        }
        """
        assert stdout_of(src) == "5 10\n"

    def test_static_initializer_runs(self):
        src = """
        class Config { static int limit = 17; }
        class Main {
            static void main() { System.out.println(Config.limit); }
        }
        """
        assert stdout_of(src) == "17\n"

    def test_overload_resolution_most_specific(self):
        src = """
        class Main {
            static String f(Object o) { return "obj"; }
            static String f(String s) { return "str"; }
            static void main() { System.out.println(f("x")); }
        }
        """
        assert stdout_of(src) == "str\n"

    def test_overload_by_primitive_widening(self):
        src = """
        class Main {
            static String f(long v) { return "long"; }
            static String f(double v) { return "double"; }
            static void main() { System.out.println(f(3)); }
        }
        """
        assert stdout_of(src) == "long\n"

    def test_checked_cast_success_and_failure(self):
        src = """
        class A { }
        class B extends A { int x = 3; }
        class Main {
            static void main() {
                A good = new B();
                B b = (B) good;
                System.out.println(b.x);
                A bad = new A();
                try { B c = (B) bad; }
                catch (ClassCastException e) { System.out.println("cce"); }
            }
        }
        """
        assert stdout_of(src) == "3\ncce\n"

    def test_cast_of_null_succeeds(self):
        src = """
        class A { }
        class B extends A { }
        class Main {
            static void main() {
                A a = null;
                B b = (B) a;
                System.out.println(b == null);
            }
        }
        """
        assert stdout_of(src) == "true\n"

    def test_instanceof_null_is_false(self):
        out = stdout_of(main_wrap(
            "String s = null; System.out.println(s instanceof String);"))
        assert out == "false\n"

    def test_recursion(self):
        src = """
        class Main {
            static int fib(int n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
            }
            static void main() { System.out.println(fib(15)); }
        }
        """
        assert stdout_of(src) == "610\n"

    def test_mutual_recursion(self):
        src = """
        class Main {
            static boolean even(int n) { return n == 0 ? true : odd(n - 1); }
            static boolean odd(int n) { return n == 0 ? false : even(n - 1); }
            static void main() { System.out.println(even(10)); }
        }
        """
        assert stdout_of(src) == "true\n"


class TestArraysAndStrings:
    def test_array_default_values(self):
        out = stdout_of(main_wrap(
            "int[] a = new int[2]; double[] d = new double[1];"
            "boolean[] b = new boolean[1]; String[] s = new String[1];"
            "System.out.println(a[0] + \" \" + d[0] + \" \" + b[0] + \" \""
            " + s[0]);"))
        assert out == "0 0.0 false null\n"

    def test_multidim_array(self):
        out = stdout_of(main_wrap(
            "int[][] g = new int[3][4];"
            "g[2][3] = 9;"
            "System.out.println(g.length + \" \" + g[0].length + \" \""
            " + g[2][3]);"))
        assert out == "3 4 9\n"

    def test_negative_array_size_throws(self):
        result = run_java(main_wrap("int n = -2; int[] a = new int[n];"))
        assert result.exception_name() == \
            "java.lang.NegativeArraySizeException"

    def test_array_covariant_assignment(self):
        src = """
        class A { }
        class B extends A { }
        class Main {
            static void main() {
                A[] arr = new A[2];
                arr[0] = new B();
                System.out.println(arr[0] instanceof B);
            }
        }
        """
        assert stdout_of(src) == "true\n"

    def test_covariant_store_check_throws(self):
        src = """
        class A { }
        class B extends A { }
        class Main {
            static void main() {
                A[] arr = new B[2];
                arr[0] = new A();
            }
        }
        """
        result = run_java(src)
        assert result.exception_name() == "java.lang.ArrayStoreException"

    def test_covariant_store_check_catchable(self):
        src = """
        class A { }
        class B extends A { }
        class Main {
            static void main() {
                A[] arr = new B[1];
                try { arr[0] = new A(); }
                catch (ArrayStoreException e)
                { System.out.println("caught"); }
            }
        }
        """
        assert stdout_of(src) == "caught\n"

    def test_null_store_into_covariant_array_allowed(self):
        src = """
        class A { }
        class B extends A { }
        class Main {
            static void main() {
                A[] arr = new B[1];
                arr[0] = null;
                System.out.println(arr[0] == null);
            }
        }
        """
        assert stdout_of(src) == "true\n"

    def test_string_equality_vs_equals(self):
        out = stdout_of(main_wrap(
            'String a = "hi"; String b = "hi";'
            'String c = a.concat("");'
            "System.out.println(a == b);"       # literals are interned
            "System.out.println(a == c);"
            "System.out.println(a.equals(c));"))
        assert out == "true\nfalse\ntrue\n"

    def test_string_methods(self):
        out = stdout_of(main_wrap(
            'String s = "hello world";'
            "System.out.println(s.substring(6, 11));"
            "System.out.println(s.indexOf(\"world\"));"
            "System.out.println(s.startsWith(\"hell\"));"
            "System.out.println(s.compareTo(\"hello\") > 0);"))
        assert out == "world\n6\ntrue\ntrue\n"

    def test_null_string_concat(self):
        out = stdout_of(main_wrap(
            'String s = null; System.out.println("v=" + s);'))
        assert out == "v=null\n"

    def test_concat_of_all_primitive_types(self):
        out = stdout_of(main_wrap(
            'System.out.println("" + 1 + " " + 2L + " " + 1.5 + " " + \'c\''
            ' + " " + true);'))
        assert out == "1 2 1.5 c true\n"

    def test_null_array_access_throws_npe(self):
        result = run_java(main_wrap("int[] a = null; int x = a[0];"))
        assert result.exception_name() == "java.lang.NullPointerException"

    def test_string_builder(self):
        out = stdout_of(main_wrap(
            "StringBuilder sb = new StringBuilder();"
            'sb.append("a").append(1).append(true);'
            "System.out.println(sb.toString());"))
        assert out == "a1true\n"


class TestOptimizedExecutionMatches:
    """The optimizer must preserve all observable behaviour."""

    SOURCES = [
        main_wrap("int s = 0; for (int i = 0; i < 9; i++) s += i * i;"
                  "System.out.println(s);"),
        main_wrap("int[] a = new int[5]; for (int i = 0; i < 5; i++)"
                  "a[i] = i; int t = 0; for (int i = 0; i < 5; i++)"
                  "t += a[i] * a[i]; System.out.println(t);"),
        main_wrap("try { int z = 0; int q = 3 / z; }"
                  "catch (ArithmeticException e)"
                  "{ System.out.println(\"caught\"); }"),
    ]

    @pytest.mark.parametrize("index", range(len(SOURCES)))
    def test_optimized_output_identical(self, index):
        source = self.SOURCES[index]
        plain = run_java(source, optimize=False)
        optimized = run_java(source, optimize=True)
        assert plain.stdout == optimized.stdout
        assert plain.exception_name() == optimized.exception_name()


class TestAbstractAndPolymorphism:
    def test_abstract_method_dispatch(self):
        src = """
        abstract class Shape {
            abstract int area();
            int doubled() { return area() * 2; }
        }
        class Square extends Shape {
            int side;
            Square(int side) { this.side = side; }
            int area() { return side * side; }
        }
        class Main {
            static void main() {
                Shape s = new Square(3);
                System.out.println(s.area() + " " + s.doubled());
            }
        }
        """
        assert stdout_of(src) == "9 18\n"

    def test_three_level_override_chain(self):
        src = """
        class A { String who() { return "A"; } }
        class B extends A { String who() { return "B" + super.who(); } }
        class C extends B { String who() { return "C" + super.who(); } }
        class Main {
            static void main() {
                A x = new C();
                System.out.println(x.who());
            }
        }
        """
        assert stdout_of(src) == "CBA\n"

    def test_field_shadowing_is_static(self):
        # Java: fields are resolved statically by the reference type
        src = """
        class A { int tag = 1; }
        class B extends A { }
        class Main {
            static void main() {
                B b = new B();
                A a = b;
                System.out.println(a.tag + b.tag);
            }
        }
        """
        assert stdout_of(src) == "2\n"

    def test_constructor_calls_overridden_method(self):
        # Java pitfall: the subclass override runs before the subclass
        # constructor body (fields still default-initialised)
        src = """
        class A { A() { System.out.println("init " + describe()); }
                  String describe() { return "A"; } }
        class B extends A {
            int v = 7;
            String describe() { return "B v=" + v; }
        }
        class Main {
            static void main() {
                B b = new B();
                System.out.println("after " + b.describe());
            }
        }
        """
        assert stdout_of(src) == "init B v=0\nafter B v=7\n"

    def test_inherited_static_accessible_via_subclass(self):
        src = """
        class A { static int x = 4; }
        class B extends A { }
        class Main { static void main() { System.out.println(B.x); } }
        """
        assert stdout_of(src) == "4\n"
