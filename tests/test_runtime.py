"""Host runtime tests: natives, Java-style formatting, statics."""

import math

import pytest

from repro.interp.heap import ArrayRef, JStr, JavaError, ObjectRef, \
    value_instanceof
from repro.interp.runtime import Runtime, format_double, format_value
from repro.typesys.types import ArrayType, ClassType, INT
from repro.typesys.world import World
from tests.conftest import main_wrap, run_java, stdout_of


class TestDoubleFormatting:
    @pytest.mark.parametrize("value, expected", [
        (0.0, "0.0"),
        (-0.0, "-0.0"),
        (1.0, "1.0"),
        (1.5, "1.5"),
        (100.25, "100.25"),
        (1e7, "1.0E7"),
        (1.23e10, "1.23E10"),
        (1e-3, "0.001"),
        (5e-4, "5.0E-4"),
        (-2.5e8, "-2.5E8"),
        (float("inf"), "Infinity"),
        (float("-inf"), "-Infinity"),
        (float("nan"), "NaN"),
    ])
    def test_java_style(self, value, expected):
        assert format_double(value) == expected

    def test_format_value_booleans(self):
        assert format_value(True) == "true"
        assert format_value(False) == "false"

    def test_format_value_null(self):
        assert format_value(None) == "null"


class TestStringNatives:
    def test_char_at_out_of_range_throws(self):
        result = run_java(main_wrap(
            'String s = "ab"; char c = s.charAt(5);'))
        assert result.exception_name() == \
            "java.lang.ArrayIndexOutOfBoundsException"

    def test_substring_bounds_checked(self):
        result = run_java(main_wrap(
            'String s = "ab"; String t = s.substring(1, 9);'))
        assert result.exception is not None

    def test_compare_to_orders_like_java(self):
        out = stdout_of(main_wrap(
            'System.out.println("apple".compareTo("banana") < 0);'
            'System.out.println("b".compareTo("azzz") > 0);'
            'System.out.println("abc".compareTo("ab") > 0);'
            'System.out.println("x".compareTo("x"));'))
        assert out == "true\ntrue\ntrue\n0\n"

    def test_index_of_and_affixes(self):
        out = stdout_of(main_wrap(
            'String s = "hello world";'
            'System.out.println(s.indexOf("o"));'
            'System.out.println(s.indexOf("zz"));'
            'System.out.println(s.endsWith("rld"));'
            'System.out.println(s.trim().length());'))
        assert out == "4\n-1\ntrue\n11\n"

    def test_string_hash_matches_java_algorithm(self):
        out = stdout_of(main_wrap(
            'System.out.println("Aa".hashCode());'
            'System.out.println("BB".hashCode());'))
        # the famous collision: "Aa".hashCode() == "BB".hashCode() == 2112
        assert out == "2112\n2112\n"

    def test_null_receiver_throws(self):
        result = run_java(main_wrap(
            "String s = null; int n = s.length();"))
        assert result.exception_name() == "java.lang.NullPointerException"


class TestLibraryNatives:
    def test_math_functions(self):
        out = stdout_of(main_wrap(
            "System.out.println(Math.sqrt(9.0));"
            "System.out.println(Math.abs(-5));"
            "System.out.println(Math.max(3, 9));"
            "System.out.println(Math.min(2.5, 1.5));"
            "System.out.println(Math.floor(-1.5));"
            "System.out.println(Math.pow(2.0, 10.0));"))
        assert out == "3.0\n5\n9\n1.5\n-2.0\n1024.0\n"

    def test_math_abs_int_min_wraps(self):
        out = stdout_of(main_wrap(
            "System.out.println(Math.abs(-2147483648));"))
        assert out == "-2147483648\n"

    def test_integer_statics(self):
        out = stdout_of(main_wrap(
            "System.out.println(Integer.MAX_VALUE);"
            "System.out.println(Integer.parseInt(\" 42 \"));"
            "System.out.println(Integer.bitCount(255));"
            "System.out.println(Integer.numberOfLeadingZeros(1));"
            "System.out.println(Integer.numberOfTrailingZeros(8));"))
        assert out == "2147483647\n42\n8\n31\n3\n"

    def test_parse_int_failure(self):
        result = run_java(main_wrap('Integer.parseInt("xyz");'))
        assert result.exception_name() == \
            "java.lang.IllegalArgumentException"

    def test_character_classifiers(self):
        out = stdout_of(main_wrap(
            "System.out.println(Character.isDigit('7'));"
            "System.out.println(Character.isLetter('x'));"
            "System.out.println(Character.isWhitespace(' '));"
            "System.out.println(Character.isLetterOrDigit('_'));"))
        assert out == "true\ntrue\ntrue\nfalse\n"

    def test_object_to_string_default(self):
        out = stdout_of(main_wrap(
            "Object o = new Object(); String s = o.toString();"
            "System.out.println(s.startsWith(\"java.lang.Object@\"));"))
        assert out == "true\n"

    def test_user_to_string_dispatched_by_println(self):
        src = """
        class P {
            int v;
            P(int v) { this.v = v; }
            String toString() { return "P(" + v + ")"; }
        }
        class Main { static void main() {
            P p = new P(7);
            System.out.println(p);
            System.out.println("as concat: " + p);
        } }
        """
        assert stdout_of(src) == "P(7)\nas concat: P(7)\n"

    def test_throwable_to_string(self):
        out = stdout_of(main_wrap(
            'RuntimeException e = new RuntimeException("boom");'
            "System.out.println(e);"))
        assert out == "java.lang.RuntimeException: boom\n"

    def test_statics_independent_per_execution(self):
        source = ("class T { static int counter;"
                  "static void main() { counter++; "
                  "System.out.println(counter); } }")
        assert stdout_of(source) == "1\n"
        assert stdout_of(source) == "1\n"  # fresh Runtime each run


class TestHeapModel:
    def test_default_values(self):
        array = ArrayRef(ArrayType(INT), 3)
        assert array.elements == [0, 0, 0]

    def test_instanceof_model(self):
        world = World()
        string = JStr("x")
        assert value_instanceof(world, string,
                                ClassType("java.lang.String"))
        assert value_instanceof(world, string,
                                ClassType("java.lang.Object"))
        assert not value_instanceof(world, None,
                                    ClassType("java.lang.Object"))
        array = ArrayRef(ArrayType(INT), 1)
        assert value_instanceof(world, array,
                                ClassType("java.lang.Object"))
        assert value_instanceof(world, array, ArrayType(INT))
        assert not value_instanceof(world, array,
                                    ArrayType(ClassType("java.lang.Object")))

    def test_interned_literals_share_identity(self):
        assert JStr.intern("same") is JStr.intern("same")
        assert JStr("a") is not JStr("a")
