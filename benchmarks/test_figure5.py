"""E1 / E7 -- paper Figure 5: SafeTSA class files vs Java class files.

Regenerates the size and instruction-count table and asserts the shape
the paper reports:

* SafeTSA needs fewer instructions than Java bytecode (their table rows
  sit around 0.6-0.75x);
* producer-side optimisation removes >10% of SafeTSA instructions in
  most classes;
* SafeTSA files are no more voluminous than class files (abstract:
  "despite these advantages, SafeTSA is more compact than Java
  bytecode").
"""

from __future__ import annotations

from benchmarks.conftest import totals
from repro.bench.corpus import corpus_source
from repro.bench.tables import figure5_table
from repro.pipeline import compile_to_module


def test_figure5_shape(corpus_rows):
    print()
    print(figure5_table(corpus_rows))
    total = totals(corpus_rows, "bytecode_insns", "tsa_insns",
                   "tsa_opt_insns", "bytecode_size", "tsa_size",
                   "tsa_opt_size")
    # fewer instructions than bytecode overall
    assert total["tsa_insns"] < total["bytecode_insns"]
    ratio = total["tsa_insns"] / total["bytecode_insns"]
    assert 0.4 < ratio < 0.9, f"instruction ratio {ratio:.2f} out of shape"
    # optimisation wins >5% overall (paper: >10% in most cases)
    gain = 1 - total["tsa_opt_insns"] / total["tsa_insns"]
    assert gain > 0.05, f"optimisation gain {gain:.1%} too small"
    # SafeTSA files are smaller than class files
    assert total["tsa_size"] < total["bytecode_size"]
    assert total["tsa_opt_size"] <= total["tsa_size"]


def test_figure5_per_class_instruction_ratio(corpus_rows):
    """Most classes individually need fewer SafeTSA instructions."""
    smaller = sum(1 for row in corpus_rows
                  if row.tsa_insns <= row.bytecode_insns)
    assert smaller >= 0.75 * len(corpus_rows)


def test_figure5_optimized_never_larger(corpus_rows):
    for row in corpus_rows:
        assert row.tsa_opt_insns <= row.tsa_insns, row.class_name


def test_compile_throughput_benchmark(benchmark):
    """Timing: full producer pipeline on the largest corpus program."""
    source = corpus_source("Linpack")
    module = benchmark(lambda: compile_to_module(source, optimize=True))
    assert module.instruction_count() > 0
