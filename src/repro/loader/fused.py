"""Fused verifying decoder + warm/parallel load paths.

The decoder already enforces the bulk of the verifier's property set by
construction: every symbol is drawn from an alphabet computed over the
decoded context, so type separation, dominator-relative reference
validity, phi/predecessor agreement, member-table reachability, and the
trap-gate rule (``DEC-TRAP-REF``/``STSA-REF-004``) are all checked as
each instruction decodes.  What remains -- the *residual* rules -- are
the properties that constrain already-representable shapes:

* ``STSA-CFG-003``  block mixes normal and exception predecessors
* ``STSA-TYP-004``  result type absent from the type table
* ``STSA-EXC-003``  subblock with a trapping tail must fall through
* ``STSA-EXC-005``  exception edge without an exception point
* ``STSA-EXC-006``  exception edge escapes its try

:class:`_ResidualChecker` sweeps exactly these, reusing the verifier's
own rule methods (same codes, same messages), in the verifier's own
block order -- so a fused load rejects with the very code the two-pass
path would have produced.  The full verifier stays in
:mod:`repro.tsa.verifier` as the reference oracle.

A cold load therefore costs one decode plus an O(instructions) sweep.
A warm load -- the wire bytes' digest hits the
:class:`repro.cache.VerifiedModuleCache` -- skips the sweeps and reuses
the recorded per-function bit boundaries for random access: bodies can
decode on worker threads (``jobs=N``) or lazily on first touch
(:mod:`repro.loader.lazy`).  Every decode retains the intrinsic
safety-by-construction checks, so a stale or tampered cache entry can
cause a ``DecodeError`` or a silent fall back to the cold path, never
an unsound module.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Optional

from repro.cache import VerifiedModuleCache, default_module_cache
from repro.encode.bitio import BitIOError, BitReader
from repro.encode.deserializer import DecodeError, _ModuleDecoder
from repro.ssa.ir import Function, Module
from repro.tsa.verifier import _FunctionVerifier

#: ``(start_bit, end_bit)`` of one function body in the wire stream.
Boundaries = list[tuple[int, int]]


@contextmanager
def _decode_errors():
    """The same lower-layer-to-``DecodeError`` wrapping that
    :func:`repro.encode.deserializer.decode_module` applies."""
    from repro.typesys.table import TypeTableError
    from repro.typesys.world import WorldError
    try:
        yield
    except BitIOError as error:
        raise DecodeError(str(error), "DEC-IO") from None
    except WorldError as error:
        raise DecodeError(str(error), "DEC-WORLD") from None
    except TypeTableError as error:
        raise DecodeError(str(error), "DEC-TABLE") from None
    except ValueError as error:
        raise DecodeError(str(error), "DEC-VALUE") from None


class _ResidualChecker(_FunctionVerifier):
    """Only the verifier rules the decoder does not enforce by
    construction; everything else already failed during decode or
    cannot occur.  Inherits ``fail``/``_verify_pred_kinds``/
    ``_verify_exc_edge`` so codes and messages match the oracle
    exactly, and reuses the decoder's dominator tree and dispatch map
    instead of recomputing them from the IR.
    """

    def __init__(self, module: Module, function: Function,
                 domtree, dispatch_of):
        super().__init__(module, function)
        self.domtree = domtree
        self.dispatch_of = dispatch_of

    def verify(self) -> None:
        for block in self.function.blocks:
            if block not in self.domtree.idom:
                continue  # unreachable: never transmitted, never run
            self._verify_residual_block(block)

    def _verify_residual_block(self, block) -> None:
        self._ctx_block = block
        self._ctx_instr = None
        dispatch = self.dispatch_of.get(block.id)
        pred_kinds = {kind for _, kind in block.preds}
        self._verify_pred_kinds(block, pred_kinds)
        for instr in block.instrs:
            self._ctx_instr = instr
            plane = instr.plane
            if plane is not None and plane.kind != "safeidx" \
                    and plane.type not in self.table:
                self.fail(f"v{instr.id} produces a value of type "
                          f"{plane.type} absent from the type table",
                          "STSA-TYP-004")
            if instr.traps and dispatch is not None \
                    and (block.term is None or block.term.kind != "fall"):
                self.fail(f"B{block.id} with a trapping tail must fall "
                          "through", "STSA-EXC-003")
        self._ctx_instr = None
        self._verify_exc_edge(block, dispatch)


class FusedDecoder(_ModuleDecoder):
    """Sequential decoder that captures, per function, the dominator
    tree and dispatch map the residual sweep needs -- the fused path's
    replacement for the verifier's full recomputation."""

    def __init__(self, data: bytes):
        super().__init__(data)
        #: (function, domtree, dispatch_of) per decoded body, in order
        self.contexts: list[tuple] = []

    def _on_function(self, decoder, function: Function) -> None:
        self.contexts.append((function, decoder.domtree,
                              decoder.dispatch_of))


def residual_verify(module: Module, contexts) -> None:
    """Run the residual rule sweep for every decoded function, in
    decode order (= the order ``verify_module`` would visit them)."""
    for function, domtree, dispatch_of in contexts:
        _ResidualChecker(module, function, domtree, dispatch_of).verify()


def _worker_count(jobs: Optional[int], function_count: int) -> int:
    """Same convention as ``CompilationSession``: None/1 serial, 0 one
    worker per CPU, otherwise capped at the number of bodies."""
    if jobs is None or jobs == 1 or function_count <= 1:
        return 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, function_count))


def _plausible(boundaries: Boundaries, bodies, start_bit: int,
               stream_bits: int) -> bool:
    """Cheap shape validation of a cached boundary index: one entry
    per body, contiguous, starting where the header ended, inside the
    stream.  Anything else is a stale/corrupt entry -> cold path."""
    if len(boundaries) != len(bodies):
        return False
    position = start_bit
    for start, end in boundaries:
        if start != position or end < start:
            return False
        position = end
    return position <= stream_bits


class ModuleLoader:
    """One load of one distribution unit.

    After :meth:`load`, ``cache_hit`` says whether the warm (trusted)
    path ran, ``boundaries`` holds the per-body bit index, and
    ``verified`` is True when the residual sweeps ran this load (cold)
    -- a warm load trusts the digest-matched prior verification
    instead.
    """

    def __init__(self, data: bytes, *, lazy: bool = False,
                 jobs: Optional[int] = None, cache=None, store=None):
        from repro.encode.format import resolve_stream
        #: the distribution unit as delivered (possibly a v2 envelope)
        self.raw = data
        #: the v1 payload the verifying decoder consumes; envelope
        #: resolution rejects here, before any decode state exists
        self.data = resolve_stream(data, store)
        self.lazy = lazy
        self.jobs = jobs
        if cache is None:
            cache = default_module_cache()
        elif cache is False:
            cache = None
        self.cache: Optional[VerifiedModuleCache] = cache
        self.cache_hit = False
        self.boundaries: Optional[Boundaries] = None
        self.verified = False

    def load(self) -> Module:
        key = VerifiedModuleCache.key(self.data) if self.cache else None
        cached = self.cache.get(key) if key is not None else None
        if self.lazy:
            from repro.loader.lazy import lazy_load
            return lazy_load(self, key, cached)
        if cached is not None:
            module = self._load_trusted(cached)
            if module is not None:
                self.cache_hit = True
                return module
        return self._load_cold(key)

    # -- cold: sequential fused decode + residual sweep ----------------

    def _load_cold(self, key: Optional[str]) -> Module:
        decoder = FusedDecoder(self.data)
        with _decode_errors():
            module = decoder.decode()
        residual_verify(module, decoder.contexts)
        self.boundaries = decoder.boundaries
        self.verified = True
        if self.cache is not None and key is not None:
            self.cache.put(key, decoder.boundaries)
        return module

    # -- warm: digest-trusted decode, random access, no sweeps ---------

    def _load_trusted(self, boundaries: Boundaries) -> Optional[Module]:
        """Returns None on any disagreement between the cached index
        and the stream, sending the caller down the cold path."""
        decoder = FusedDecoder(self.data)
        try:
            with _decode_errors():
                bodies = decoder.decode_header()
                header_end = decoder.reader.bit_position()
                if not _plausible(boundaries, bodies, header_end,
                                  len(self.data) * 8):
                    return None
                jobs = _worker_count(self.jobs, len(bodies))
                if jobs > 1:
                    for function in _decode_bodies_parallel(
                            decoder, bodies, boundaries, jobs):
                        decoder.module.add_function(function)
                    end = boundaries[-1][1] if boundaries else header_end
                    decoder.reader = BitReader(self.data, start_bit=end)
                    decoder._require_end()
                else:
                    decoder._decode_bodies(bodies)
                    if decoder.boundaries != boundaries:
                        return None
                    decoder._require_end()
        except DecodeError:
            # the digest matched, so the bytes decoded cleanly once: a
            # failure now means the cached index is bad.  The cold path
            # re-decodes from scratch and re-raises anything genuine.
            return None
        self.boundaries = boundaries
        self.verified = False
        return decoder.module


def _decode_bodies_parallel(decoder: FusedDecoder, bodies,
                            boundaries: Boundaries,
                            jobs: int) -> list[Function]:
    """Decode each body from its recorded bit boundary on a worker
    thread.  The header (world, type table) is fully built and
    read-only by now; instruction/block ids are allocated from atomic
    counters and re-encoded bytes never depend on their raw values, so
    the result is bit-identical to a serial decode."""
    def decode_one(index: int) -> Function:
        start, end = boundaries[index]
        reader = BitReader(decoder.data, start_bit=start)
        function = decoder._function_decoder(bodies[index], reader).decode()
        if reader.bit_position() != end:
            raise DecodeError("cached body boundary mismatch",
                              "DEC-MALFORMED")
        return function

    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(decode_one, range(len(bodies))))


def load_module(data: bytes, *, lazy: bool = False,
                jobs: Optional[int] = None, cache=None,
                store=None) -> Module:
    """Load (and thereby verify) a SafeTSA distribution unit.

    ``lazy=True`` decodes the header eagerly and each function body on
    first touch.  ``jobs`` fans body decoding out over N threads (0 =
    one per CPU) on warm loads; a cold load is sequential by format
    necessity (no length prefixes) and ignores it.  ``cache`` is a
    :class:`repro.cache.VerifiedModuleCache`, ``None`` for the
    environment default, or ``False`` to disable caching.  ``store``
    is the :class:`repro.cache.DictionaryStore` used to resolve v2
    envelopes (``None`` for the environment default); v1 streams never
    touch it.
    """
    module = ModuleLoader(data, lazy=lazy, jobs=jobs, cache=cache,
                          store=store).load()
    # the distribution unit's content address; the trace cache keys
    # compiled hot paths on it so warm processes skip re-recording
    module.wire_digest = hashlib.sha256(data).hexdigest()
    return module
