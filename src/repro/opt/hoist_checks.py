"""Hoist loop-invariant null and bounds checks out of loop bodies.

``nullcheck``/``idxcheck`` are *trapping* instructions, so plain LICM
must leave them alone: moving an exception point above the loop bound
test would throw for executions that never reached the check.  Two
stronger arguments do license motion of a check whose operands are all
loop invariant, and each reduces the check's dynamic execution count
from once-per-iteration to once-per-loop-entry:

**Case A -- the check provably passes.**  Nullness of an SSA reference
and the integer value of an invariant index are properties of the
*value*, not of the program point, so a must-fact at the loop header's
entry (``nonnull_at_entry`` / ``idxcheck_safe_at_entry``) proves the
check can never trap on any iteration.  Entry facts join every incoming
edge -- the preheader edge included -- so the proof also holds at the
preheader, and evaluating the never-trapping check there is observably
identical no matter where in the body it originally sat.

**Case B -- the check is guaranteed to execute on the first trip.**
The preheader runs exactly when the loop header is about to run, so an
instruction that the first iteration must reach *before any side effect
or other exception point* can trap in the preheader instead: the same
exception arrives with the same prefix of observable behaviour.  The
pass walks the guaranteed path from the header, stopping at the first
*barrier* (a store, call, allocation, retained trapping instruction, or
a branch it cannot decide for the first trip).  Branches are decided by
substituting each header phi with its preheader operand and comparing
intervals at the header entry -- e.g. a ``while (i < n)`` loop entered
with ``i = 0`` and a proven ``n >= 1`` guarantees the body's first trip.

Checks hoisted within one walk keep their relative order in the
preheader, and a retained barrier stops the walk, so two checks that
may both trap are never reordered (across rounds either: later rounds
can only hoist from the suffix that begins at the previous barrier).

Loops inside a ``try`` are skipped entirely: a trapping instruction in
a try region needs an exception edge to the dispatch block, and adding
one to the preheader would change the handler's phi structure -- a
transform out of scope here (STSA-EXC-001 keeps us honest).

The affine case -- an ``idxcheck`` whose index is an induction variable
with provable bounds -- is deliberately *not* hoisted: the safe-index
plane is produced per-iteration and every iteration needs its own
``idxcheck`` result value, so SafeTSA cannot represent "check the whole
range once".  See ``docs/LOOPS.md`` for the full discussion; induction
variables still feed the first-trip proofs above.

The pass iterates a few outer rounds with freshly recomputed facts so
cascades resolve (hoisting a ``nullcheck`` makes the ``idxcheck`` using
its result invariant in the next round).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.loops import Loop, LoopForest, ensure_preheader, find_loops
from repro.analysis.nullness import NullnessFacts, analyze_nullness, \
    is_intrinsically_nonnull
from repro.analysis.range import RangeFacts, analyze_ranges
from repro.ssa import ir
from repro.ssa.cst import map_exception_contexts
from repro.ssa.ir import Block, Function, Instr

#: cascades settle in two or three rounds; the cap is a safety net
_MAX_ROUNDS = 8
#: guaranteed-path walk bound (structured loops are far shallower)
_MAX_WALK_BLOCKS = 64

_COMPARES = {"lt", "le", "gt", "ge", "eq", "ne"}


class _Hoister:
    def __init__(self, function: Function, forest: LoopForest):
        self.function = function
        self.forest = forest
        self.contexts = map_exception_contexts(function.cst) \
            if function.cst is not None else {}
        self.nullness: NullnessFacts = analyze_nullness(function)
        self.ranges: RangeFacts = analyze_ranges(function)
        self.stats = {"checks_hoisted_null": 0, "checks_hoisted_idx": 0,
                      "preheaders": 0}

    def refresh_facts(self) -> None:
        self.nullness = analyze_nullness(self.function)
        self.ranges = analyze_ranges(self.function)

    # -- shared helpers -------------------------------------------------

    def _loop_allowed(self, loop: Loop) -> bool:
        # a preheader would live in the same region as the header; any
        # try context there means hoisted traps would need exception
        # edges we do not build
        return self.contexts.get(loop.header.id) is None

    def _invariant_check(self, instr: Instr, loop: Loop) -> bool:
        if not isinstance(instr, (ir.NullCheck, ir.IdxCheck)):
            return False
        return all(loop.is_invariant(op) for op in instr.operands)

    def _provably_passes(self, instr: Instr, loop: Loop) -> bool:
        header = loop.header
        if isinstance(instr, ir.NullCheck):
            value = instr.operands[0]
            return is_intrinsically_nonnull(value) \
                or value.id in self.nullness.nonnull_at_entry(header)
        if isinstance(instr, ir.IdxCheck):
            return self.ranges.idxcheck_safe_at_entry(instr, header)
        return False

    def _hoist(self, instr: Instr, loop: Loop) -> bool:
        preheader = loop.preheader
        if preheader is None:
            before = len(self.function.blocks)
            preheader = ensure_preheader(self.function, loop, self.forest)
            if preheader is None:
                return False
            self.stats["preheaders"] += len(self.function.blocks) - before
        block = instr.block
        block.instrs.remove(instr)
        preheader.append(instr)
        key = "checks_hoisted_null" if isinstance(instr, ir.NullCheck) \
            else "checks_hoisted_idx"
        self.stats[key] += 1
        return True

    # -- Case A: provable anywhere in the loop --------------------------

    def hoist_provable(self, loop: Loop) -> int:
        moved = 0
        for block in self.function.blocks:
            if block.id not in loop.blocks:
                continue
            if self.contexts.get(block.id) is not None:
                continue  # nested try inside the loop: leave its checks
            for instr in list(block.instrs):
                if not self._invariant_check(instr, loop):
                    continue
                if not self._provably_passes(instr, loop):
                    continue
                if self._hoist(instr, loop):
                    moved += 1
        return moved

    # -- Case B: guaranteed execution on the first trip -----------------

    def hoist_guaranteed(self, loop: Loop) -> int:
        moved = 0
        env = self._first_trip_env(loop)
        block: Optional[Block] = loop.header
        visited = 0
        while block is not None and visited < _MAX_WALK_BLOCKS:
            visited += 1
            if self.contexts.get(block.id) is not None:
                break
            for instr in list(block.instrs):
                if self._invariant_check(instr, loop):
                    if self._hoist(instr, loop):
                        moved += 1
                        continue
                    break  # un-preheaderable loop: retained trap
                if instr.is_pure():
                    continue
                break  # side effect or retained exception point
            else:
                block = self._first_trip_successor(block, loop, env)
                continue
            break
        return moved

    def _first_trip_env(self, loop: Loop) -> dict[int, Instr]:
        """Header phi id -> the value it carries on the preheader edge."""
        env: dict[int, Instr] = {}
        header = loop.header
        for phi in header.phis:
            if len(phi.operands) != len(header.preds):
                continue
            entry_ops = [op for op, (pred, _k) in zip(phi.operands,
                                                      header.preds)
                         if pred.id not in loop.blocks]
            if len(entry_ops) == 1 \
                    or (entry_ops
                        and all(op is entry_ops[0] for op in entry_ops)):
                env[phi.id] = entry_ops[0]
        return env

    def _first_trip_successor(self, block: Block, loop: Loop,
                              env: dict[int, Instr]) -> Optional[Block]:
        term = block.term
        succs = block.normal_succs()
        if term is None:
            return None
        if term.kind == "fall" and len(succs) == 1:
            target = succs[0]
        elif term.kind == "branch" and len(succs) == 2:
            verdict = self._prove_branch(term.value, loop, env)
            if verdict is None:
                return None
            target = succs[0] if verdict else succs[1]
        else:
            return None
        if target.id not in loop.blocks or target is loop.header:
            return None
        self._extend_env(target, block, env)
        return target

    def _extend_env(self, target: Block, came_from: Block,
                    env: dict[int, Instr]) -> None:
        for phi in target.phis:
            if len(phi.operands) != len(target.preds):
                continue
            for operand, (pred, kind) in zip(phi.operands, target.preds):
                if pred is came_from and kind == "norm":
                    env[phi.id] = env.get(operand.id, operand)
                    break

    def _prove_branch(self, cond: Optional[Instr], loop: Loop,
                      env: dict[int, Instr]) -> Optional[bool]:
        """True/False when the branch direction is decided for the first
        trip; None when it cannot be proven."""
        if cond is None:
            return None
        cond = env.get(cond.id, cond)
        if isinstance(cond, ir.Const) and isinstance(cond.value, bool):
            return cond.value
        if not isinstance(cond, ir.Prim) \
                or cond.operation.name not in _COMPARES \
                or len(cond.operands) != 2:
            return None
        header = loop.header
        left = env.get(cond.operands[0].id, cond.operands[0])
        right = env.get(cond.operands[1].id, cond.operands[1])
        a = self.ranges.interval_at_entry(left, header)
        b = self.ranges.interval_at_entry(right, header)
        if a is None or b is None:
            return None
        return _compare_intervals(cond.operation.name, a, b)

    # -- driver ---------------------------------------------------------

    def run(self) -> dict:
        for _ in range(_MAX_ROUNDS):
            moved = 0
            for loop in self.forest.innermost_first():
                if not self._loop_allowed(loop):
                    continue
                moved += self.hoist_guaranteed(loop)
                moved += self.hoist_provable(loop)
            if not moved:
                break
            self.refresh_facts()
        return self.stats


def _compare_intervals(op: str, a: tuple[int, int],
                       b: tuple[int, int]) -> Optional[bool]:
    a_lo, a_hi = a
    b_lo, b_hi = b
    if op == "lt":
        if a_hi < b_lo:
            return True
        if a_lo >= b_hi:
            return False
    elif op == "le":
        if a_hi <= b_lo:
            return True
        if a_lo > b_hi:
            return False
    elif op == "gt":
        if a_lo > b_hi:
            return True
        if a_hi <= b_lo:
            return False
    elif op == "ge":
        if a_lo >= b_hi:
            return True
        if a_hi < b_lo:
            return False
    elif op == "eq":
        if a_lo == a_hi == b_lo == b_hi:
            return True
        if a_hi < b_lo or b_hi < a_lo:
            return False
    elif op == "ne":
        if a_hi < b_lo or b_hi < a_lo:
            return True
        if a_lo == a_hi == b_lo == b_hi:
            return False
    return None


def run_hoist_checks(function: Function,
                     forest: Optional[LoopForest] = None) -> dict:
    """Hoist provably-safe and first-trip-guaranteed checks out of every
    natural loop; returns ``{"checks_hoisted_null", "checks_hoisted_idx",
    "preheaders"}``."""
    if forest is None:
        forest = find_loops(function)
    if not forest.loops:
        return {"checks_hoisted_null": 0, "checks_hoisted_idx": 0,
                "preheaders": 0}
    return _Hoister(function, forest).run()
