"""Per-class measurements behind Figures 5 and 6.

For every corpus program this module compiles three artifacts from the
same source -- the Java-bytecode baseline, plain SafeTSA, and optimised
SafeTSA -- and collects, per class:

* file size in bytes (real ``.class`` bytes vs attributed SafeTSA wire
  bits) and instruction counts (Figure 5);
* phi, null-check and array-check instruction counts before and after
  producer-side optimisation (Figure 6).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.encode.serializer import encode_module
from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze
from repro.jvm.classfile import class_file_bytes
from repro.jvm.codegen import compile_unit
from repro.pipeline import compile_to_module
from repro.ssa.ir import Module
from repro.uast.builder import UastBuilder


class ClassMetrics:
    """One row of the Figure 5 / Figure 6 tables."""

    def __init__(self, program: str, class_name: str):
        self.program = program
        self.class_name = class_name
        # Figure 5 columns
        self.bytecode_size = 0
        self.bytecode_insns = 0
        self.tsa_size = 0
        self.tsa_insns = 0
        self.tsa_opt_size = 0
        self.tsa_opt_insns = 0
        # Figure 6 columns
        self.phis_before = 0
        self.phis_after = 0
        self.nullchecks_before = 0
        self.nullchecks_after = 0
        self.idxchecks_before = 0
        self.idxchecks_after = 0

    def delta_pct(self, before: int, after: int) -> Optional[int]:
        """Percent change (rounded), or None when before == 0 (N/A)."""
        if before == 0:
            return None
        return round(100 * (after - before) / before)

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{self.class_name}: bc {self.bytecode_insns}i/"
                f"{self.bytecode_size}B tsa {self.tsa_insns}i/"
                f"{self.tsa_size}B opt {self.tsa_opt_insns}i/"
                f"{self.tsa_opt_size}B>")


def _class_opcode_counts(module: Module, class_name: str,
                         *opcodes: str) -> int:
    total = 0
    for method, function in module.functions.items():
        if method.declaring.name != class_name:
            continue
        for block in function.reachable_blocks():
            for instr in block.all_instrs():
                if instr.opcode in opcodes:
                    total += 1
    return total


def _class_instruction_count(module: Module, class_name: str) -> int:
    total = 0
    for method, function in module.functions.items():
        if method.declaring.name != class_name:
            continue
        for block in function.reachable_blocks():
            total += len(block.phis) + len(block.instrs)
    return total


def _tsa_sizes(module: Module) -> dict[str, int]:
    """Per-class SafeTSA size in bytes (shared header apportioned)."""
    report: dict[str, int] = {}
    encode_module(module, size_report=report)
    header_bits = report.pop("_header", 0)
    report.pop("_phases", None)
    class_count = max(len(report), 1)
    out = {}
    for name, bits in report.items():
        out[name] = (bits + header_bits // class_count + 7) // 8
    return out


def measure_program(program: str,
                    source: Optional[str] = None) -> list[ClassMetrics]:
    """Compile one corpus program three ways and measure every class."""
    if source is None:
        source = corpus_source(program)

    # bytecode baseline
    unit = parse_compilation_unit(source)
    world = analyze(unit)
    builder = UastBuilder(world)
    per_class = {decl.info: builder.build_class(decl)
                 for decl in unit.classes}
    compiled = compile_unit(world, per_class)

    # the unoptimised transmitted form keeps the eager (B&M) phis;
    # pruning is part of the producer-side optimisation (Figure 6)
    plain = compile_to_module(source, prune_phis=False)
    optimized = compile_to_module(source, optimize=True)
    plain_sizes = _tsa_sizes(plain)
    opt_sizes = _tsa_sizes(optimized)

    rows: list[ClassMetrics] = []
    for compiled_class in compiled:
        name = compiled_class.info.name
        row = ClassMetrics(program, name)
        row.bytecode_size = len(class_file_bytes(compiled_class))
        row.bytecode_insns = compiled_class.instruction_count()
        row.tsa_size = plain_sizes.get(name, 0)
        row.tsa_insns = _class_instruction_count(plain, name)
        row.tsa_opt_size = opt_sizes.get(name, 0)
        row.tsa_opt_insns = _class_instruction_count(optimized, name)
        row.phis_before = _class_opcode_counts(plain, name, "phi")
        row.phis_after = _class_opcode_counts(optimized, name, "phi")
        row.nullchecks_before = _class_opcode_counts(plain, name,
                                                     "nullcheck")
        row.nullchecks_after = _class_opcode_counts(optimized, name,
                                                    "nullcheck")
        row.idxchecks_before = _class_opcode_counts(plain, name, "idxcheck")
        row.idxchecks_after = _class_opcode_counts(optimized, name,
                                                   "idxcheck")
        rows.append(row)
    return rows


def measure_corpus(programs=None) -> list[ClassMetrics]:
    """Measure every corpus program (the full Figure 5 / 6 data set)."""
    rows: list[ClassMetrics] = []
    for program in (programs or CORPUS_PROGRAMS):
        rows.extend(measure_program(program))
    return rows
