"""The full mobile-code scenario the paper is built around.

A code *producer* compiles and optimises a program, transmits it, and a
*consumer* -- who does not trust the producer -- receives bytes from the
wire, decodes them (which enforces every safety property), and executes.
A man-in-the-middle who flips bits either produces an undecodable stream
or another well-formed program; never an unsafe one.

The same program is also compiled to the Java-bytecode baseline to show
the size comparison from the paper's Figure 5.

Run with:  python examples/mobile_code_pipeline.py
"""

from repro.bench.corpus import corpus_source
from repro.encode.deserializer import DecodeError, decode_module
from repro.encode.serializer import encode_module
from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze
from repro.interp.interpreter import Interpreter
from repro.interp.jit import JitCompiler
from repro.jvm.classfile import class_file_bytes
from repro.jvm.codegen import compile_unit
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module
from repro.uast.builder import UastBuilder


def producer(source: str) -> bytes:
    """Compile, optimise, and externalise."""
    module = compile_to_module(source, optimize=True)
    print(f"[producer] compiled: {module.instruction_count()} instructions "
          f"({module.count_opcodes('nullcheck')} null checks, "
          f"{module.count_opcodes('idxcheck')} bounds checks "
          f"after producer-side elimination)")
    wire = encode_module(module)
    print(f"[producer] transmitting {len(wire)} bytes")
    return wire


def consumer(wire: bytes) -> str:
    """Decode (the safety check), verify, generate code, execute."""
    module = decode_module(wire)
    print(f"[consumer] decoded {len(module.classes)} classes; every "
          "reference was alphabet-checked during decoding")
    verify_module(module)  # belt and braces; decode already enforced this
    print("[consumer] structural verification: OK")
    interp = Interpreter(module, max_steps=50_000_000)
    interp.run_main("Parser")
    print(f"[consumer] (instrumented run: "
          f"{interp.check_counts['nullcheck']} dynamic null checks, "
          f"{interp.check_counts['idxcheck']} dynamic bounds checks)")
    # the real execution path: on-the-fly code generation (paper §7)
    result = JitCompiler(module).run_main("Parser")
    print("[consumer] executed via generated code (SafeTSA -> Python), "
          "no re-analysis needed")
    return result.stdout


def attacker(wire: bytes) -> None:
    """Bit-flip the stream and watch the consumer reject it."""
    rejected = 0
    changed = 0
    for position in range(0, len(wire) * 8, 97):
        mutated = bytearray(wire)
        mutated[position // 8] ^= 1 << (position % 8)
        try:
            module = decode_module(bytes(mutated))
        except DecodeError:
            rejected += 1
            continue
        # decoding succeeded: it is necessarily a *different but still
        # well-formed* program -- prove it by verifying
        verify_module(module)
        changed += 1
    print(f"[attacker] {rejected + changed} mutations: "
          f"{rejected} rejected outright, {changed} decoded to other "
          "well-formed programs, 0 unsafe programs")


def baseline_sizes(source: str) -> None:
    unit = parse_compilation_unit(source)
    world = analyze(unit)
    builder = UastBuilder(world)
    classes = compile_unit(world, {decl.info: builder.build_class(decl)
                                   for decl in unit.classes})
    total = sum(len(class_file_bytes(cls)) for cls in classes)
    insns = sum(cls.instruction_count() for cls in classes)
    print(f"[baseline] javac-equivalent class files: {total} bytes, "
          f"{insns} bytecode instructions")


def main() -> None:
    source = corpus_source("Parser")
    wire = producer(source)
    baseline_sizes(source)
    print()
    output = consumer(wire)
    print("\nprogram output:")
    print(output, end="")
    print()
    attacker(wire)


if __name__ == "__main__":
    main()
