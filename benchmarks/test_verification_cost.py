"""E5 -- Section 9: SafeTSA's consumer check vs JVM dataflow verification.

The paper argues JVM bytecode verification requires an expensive dataflow
analysis, while SafeTSA verification amounts to bounded-symbol checks
("simple counters").  Two measurements:

* wall-clock: decoding a SafeTSA module (which *includes* all safety
  enforcement) vs running the bytecode dataflow verifier;
* the explicit SafeTSA structural verifier vs the dataflow verifier.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.encode.deserializer import decode_module
from repro.encode.serializer import encode_module
from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze
from repro.jvm.codegen import compile_unit
from repro.jvm.verifier import verify_class
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module
from repro.uast.builder import UastBuilder


def _bytecode_classes(source: str):
    unit = parse_compilation_unit(source)
    world = analyze(unit)
    builder = UastBuilder(world)
    return world, compile_unit(world, {decl.info: builder.build_class(decl)
                                       for decl in unit.classes})


@pytest.fixture(scope="module")
def prepared():
    out = {}
    for name in CORPUS_PROGRAMS:
        source = corpus_source(name)
        module = compile_to_module(source)
        world, classes = _bytecode_classes(source)
        out[name] = (module, world, classes)
    return out


def test_verification_cost_table(prepared):
    print()
    print(f"{'Program':16} {'tsa verify':>11} {'jvm verify':>11} "
          f"{'ratio':>7}")
    total_tsa = total_jvm = 0.0
    for name, (module, world, classes) in prepared.items():
        start = time.perf_counter()
        verify_module(module)
        tsa = time.perf_counter() - start
        start = time.perf_counter()
        for cls in classes:
            verify_class(world, cls)
        jvm = time.perf_counter() - start
        total_tsa += tsa
        total_jvm += jvm
        print(f"{name:16} {tsa * 1000:9.2f}ms {jvm * 1000:9.2f}ms "
              f"{jvm / tsa:7.2f}")
    print(f"{'TOTAL':16} {total_tsa * 1000:9.2f}ms "
          f"{total_jvm * 1000:9.2f}ms {total_jvm / total_tsa:7.2f}")
    # the paper's qualitative claim: SafeTSA verification is cheaper
    assert total_tsa < total_jvm, \
        "SafeTSA verification should be cheaper than JVM dataflow"


def test_dataflow_iterates_joins(prepared):
    """JVM verification is a fixpoint: abstract steps exceed the
    instruction count on methods with joins, while the SafeTSA check
    touches every instruction exactly once."""
    module, world, classes = prepared["Linpack"]
    steps = sum(verify_class(world, cls) for cls in classes)
    insns = sum(cls.instruction_count() for cls in classes)
    assert steps > insns, "dataflow should revisit joined code"


def test_tsa_verify_benchmark(benchmark, prepared):
    module, _world, _classes = prepared["BigInt"]
    benchmark(lambda: verify_module(module))


def test_jvm_verify_benchmark(benchmark, prepared):
    _module, world, classes = prepared["BigInt"]

    def run():
        return sum(verify_class(world, cls) for cls in classes)

    benchmark(run)


def test_decode_enforcement_benchmark(benchmark):
    """Decoding *is* the SafeTSA safety check: everything the verifier
    would reject is unrepresentable in the wire format."""
    module = compile_to_module(corpus_source("BigInt"))
    wire = encode_module(module)
    decoded = benchmark(lambda: decode_module(wire))
    assert decoded.instruction_count() == module.instruction_count()
