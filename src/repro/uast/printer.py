"""Human-readable dump of UAST method bodies (debugging and golden tests)."""

from __future__ import annotations

from repro.uast import nodes as u


def format_expr(expr: u.UExpr) -> str:
    if isinstance(expr, u.EConst):
        if isinstance(expr.value, str):
            return repr(expr.value)
        if expr.value is None:
            return f"null:{expr.type}"
        return f"{expr.value}:{expr.type}"
    if isinstance(expr, u.ELocal):
        return expr.local.name
    if isinstance(expr, u.EGetField):
        return f"{format_expr(expr.obj)}.{expr.field.name}"
    if isinstance(expr, u.EGetStatic):
        return expr.field.qualified_name
    if isinstance(expr, u.EArrayGet):
        return f"{format_expr(expr.array)}[{format_expr(expr.index)}]"
    if isinstance(expr, u.EArrayLen):
        return f"{format_expr(expr.array)}.length"
    if isinstance(expr, u.EPrim):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.operation.qualified_name}({args})"
    if isinstance(expr, u.ERefCmp):
        op = "==" if expr.is_eq else "!="
        return f"({format_expr(expr.left)} {op} {format_expr(expr.right)})"
    if isinstance(expr, u.ECall):
        args = ", ".join(format_expr(a) for a in expr.args)
        kind = "dispatch" if expr.dispatch else "call"
        recv = format_expr(expr.receiver) + "." if expr.receiver else ""
        return f"{kind} {recv}{expr.method.name}({args})"
    if isinstance(expr, u.ENew):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"new {expr.class_info.name}({args})"
    if isinstance(expr, u.ENewArray):
        return f"new {expr.array_type.element}[{format_expr(expr.length)}]"
    if isinstance(expr, u.EInstanceOf):
        return f"({format_expr(expr.operand)} instanceof {expr.target_type})"
    if isinstance(expr, u.ECheckedCast):
        return f"upcast<{expr.type}>({format_expr(expr.operand)})"
    if isinstance(expr, u.EWidenRef):
        return f"widen<{expr.type}>({format_expr(expr.operand)})"
    return repr(expr)


def _format_stmt(stmt: u.UStmt, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, u.SBlock):
        for inner in stmt.stmts:
            _format_stmt(inner, indent, out)
    elif isinstance(stmt, u.SLocalWrite):
        out.append(f"{pad}{stmt.local.name} = {format_expr(stmt.value)}")
    elif isinstance(stmt, u.SFieldWrite):
        out.append(f"{pad}{format_expr(stmt.obj)}.{stmt.field.name} = "
                   f"{format_expr(stmt.value)}")
    elif isinstance(stmt, u.SStaticWrite):
        out.append(f"{pad}{stmt.field.qualified_name} = "
                   f"{format_expr(stmt.value)}")
    elif isinstance(stmt, u.SArrayWrite):
        out.append(f"{pad}{format_expr(stmt.array)}"
                   f"[{format_expr(stmt.index)}] = {format_expr(stmt.value)}")
    elif isinstance(stmt, u.SEval):
        out.append(f"{pad}eval {format_expr(stmt.expr)}")
    elif isinstance(stmt, u.SIf):
        out.append(f"{pad}if {format_expr(stmt.cond)}:")
        _format_stmt(stmt.then_body, indent + 1, out)
        if stmt.else_body is not None:
            out.append(f"{pad}else:")
            _format_stmt(stmt.else_body, indent + 1, out)
    elif isinstance(stmt, u.SWhile):
        out.append(f"{pad}while[b{stmt.break_id},c{stmt.continue_id}] "
                   f"{format_expr(stmt.cond)}:")
        _format_stmt(stmt.body, indent + 1, out)
    elif isinstance(stmt, u.SDoWhile):
        out.append(f"{pad}do[b{stmt.break_id},c{stmt.continue_id}]:")
        _format_stmt(stmt.body, indent + 1, out)
        out.append(f"{pad}while {format_expr(stmt.cond)}")
    elif isinstance(stmt, u.SLabeled):
        out.append(f"{pad}labeled L{stmt.target_id}:")
        _format_stmt(stmt.body, indent + 1, out)
    elif isinstance(stmt, u.SBreak):
        out.append(f"{pad}break L{stmt.target_id}")
    elif isinstance(stmt, u.SContinue):
        out.append(f"{pad}continue L{stmt.target_id}")
    elif isinstance(stmt, u.SReturn):
        value = format_expr(stmt.value) if stmt.value is not None else ""
        out.append(f"{pad}return {value}".rstrip())
    elif isinstance(stmt, u.SThrow):
        out.append(f"{pad}throw {format_expr(stmt.value)}")
    elif isinstance(stmt, u.STry):
        out.append(f"{pad}try:")
        _format_stmt(stmt.body, indent + 1, out)
        for catch in stmt.catches:
            out.append(f"{pad}catch {catch.catch_class.name} "
                       f"{catch.local.name}:")
            _format_stmt(catch.body, indent + 1, out)
    else:
        out.append(f"{pad}{stmt!r}")


def format_method(umethod: u.UMethod) -> str:
    """Render a UAST method as an indented pseudo-code listing."""
    out = [f"method {umethod.method.qualified_name}"]
    _format_stmt(umethod.body, 1, out)
    return "\n".join(out)
