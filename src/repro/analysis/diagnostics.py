"""Structured diagnostics for the verifier and the lint driver.

Every finding -- a verifier rejection, a suspicious-but-legal construct,
an optimisation opportunity the analyses can prove -- is reported as a
:class:`Diagnostic` with a stable machine-readable code, a severity, and
a (function, block, instruction) location.  The code space is split by
convention:

* ``STSA-XXX-0nn`` -- well-formedness *errors*: the module violates a
  SafeTSA property and must be rejected;
* ``STSA-XXX-1nn`` -- lint findings: warnings (legal but suspicious,
  e.g. untransmittable unreachable blocks) and informational findings
  (provably-redundant checks the producer could eliminate).

The decoder's ``DEC-*`` rejection codes live in the same registry: the
single source of truth is :data:`STABLE_CODES`, which maps every stable
code to its ``(layer, severity, description)`` -- ``layer`` names the
component that raises it (``decoder`` for the safety-by-construction
checks inline in :mod:`repro.encode.deserializer` and the fused loader,
``verifier`` for :mod:`repro.tsa.verifier` rejections, ``lint`` for the
advisory findings).  :data:`DIAGNOSTIC_CODES` is the derived
verifier/lint view that the diagnostic machinery consumes.  A raise
site using an unregistered code fails the registry scan in
``tests/test_loader.py``.

Because the decoder rejects most ill-formed streams before the verifier
ever sees an IR, one underlying defect can surface under a decoder code
on the wire path and a verifier code on the in-memory path.  Those
documented pairings live in :data:`CODE_ALIASES`; differential gates
compare rejection codes modulo these classes.

The verifier/lint table is documented in ``docs/ANALYSIS.md``; tests
assert the two stay in sync.
"""

from __future__ import annotations

from typing import Iterable, Optional


class Severity:
    """Diagnostic severities, ordered from most to least severe."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    ORDER = (ERROR, WARNING, INFO)

    @staticmethod
    def rank(severity: str) -> int:
        return Severity.ORDER.index(severity)


#: Components that reject or flag modules with stable codes.
LAYER_DECODER = "decoder"
LAYER_VERIFIER = "verifier"
LAYER_LINT = "lint"
LAYER_SERVE = "serve"

LAYERS = (LAYER_DECODER, LAYER_VERIFIER, LAYER_LINT, LAYER_SERVE)

#: The unified registry: code -> (layer, severity, one-line
#: description).  Stable: codes are never renumbered, only appended.
STABLE_CODES: dict[str, tuple[str, str, str]] = {
    # ===== decoder layer: safety-by-construction rejections ===========
    "DEC-IO": (LAYER_DECODER, Severity.ERROR,
               "ran off the stream or symbol outside its bounded "
               "alphabet"),
    "DEC-MAGIC": (LAYER_DECODER, Severity.ERROR, "bad magic number"),
    "DEC-LIMIT": (LAYER_DECODER, Severity.ERROR,
                  "a declared count exceeds its sanity bound"),
    "DEC-CST": (LAYER_DECODER, Severity.ERROR,
                "ill-formed control structure tree"),
    "DEC-EXC": (LAYER_DECODER, Severity.ERROR,
                "exception discipline violated during decode"),
    "DEC-REF": (LAYER_DECODER, Severity.ERROR,
                "unresolvable value reference"),
    "DEC-TRAP-REF": (LAYER_DECODER, Severity.ERROR,
                     "reference to a trapping tail's result reachable "
                     "through its exception edge"),
    "DEC-TRAILING": (LAYER_DECODER, Severity.ERROR,
                     "trailing data or nonzero padding after the "
                     "module"),
    "DEC-WORLD": (LAYER_DECODER, Severity.ERROR,
                  "class-world validation failed during decode"),
    "DEC-TABLE": (LAYER_DECODER, Severity.ERROR,
                  "type-table validation failed during decode"),
    "DEC-VALUE": (LAYER_DECODER, Severity.ERROR,
                  "value-level validation failed during decode"),
    "DEC-MALFORMED": (LAYER_DECODER, Severity.ERROR,
                      "stream violates a decoder shape rule"),
    # -- wire-format v2 envelope (repro.encode.format) ------------------
    "DEC-DICT": (LAYER_DECODER, Severity.ERROR,
                 "v2 envelope references a dictionary digest the store "
                 "does not hold"),
    "DEC-DELTA-BASE": (LAYER_DECODER, Severity.ERROR,
                       "delta base missing from the store or "
                       "reconstruction does not match the target "
                       "digest"),
    "DEC-DELTA": (LAYER_DECODER, Severity.ERROR,
                  "delta patch is structurally invalid (bad copy "
                  "bounds or envelope chain too deep)"),
    "DEC-STREAM": (LAYER_DECODER, Severity.ERROR,
                   "distribution stream ended mid-unit (truncated "
                   "envelope or body never arrived)"),
    # ===== verifier layer: well-formedness rejections =================
    # -- control structure / CFG ---------------------------------------
    "STSA-CFG-001": (LAYER_VERIFIER, Severity.ERROR,
                     "the CST does not derive a consistent CFG"),
    "STSA-CFG-002": (LAYER_VERIFIER, Severity.ERROR, "block has no terminator"),
    "STSA-CFG-003": (LAYER_VERIFIER, Severity.ERROR,
                     "block mixes normal and exception predecessors"),
    # -- referential integrity -----------------------------------------
    "STSA-REF-001": (LAYER_VERIFIER, Severity.ERROR,
                     "operand used before its definition in the same "
                     "block"),
    "STSA-REF-002": (LAYER_VERIFIER, Severity.ERROR,
                     "operand defined in a non-dominating block"),
    "STSA-REF-003": (LAYER_VERIFIER, Severity.ERROR,
                     "reference to an undefined value"),
    "STSA-REF-004": (LAYER_VERIFIER, Severity.ERROR,
                     "reference to a trapping tail's result reachable "
                     "through its exception edge"),
    # -- phi discipline -------------------------------------------------
    "STSA-PHI-001": (LAYER_VERIFIER, Severity.ERROR,
                     "phi operand count does not match predecessor "
                     "count"),
    "STSA-PHI-002": (LAYER_VERIFIER, Severity.ERROR,
                     "phi operand on a different plane than the phi"),
    "STSA-PHI-003": (LAYER_VERIFIER, Severity.ERROR,
                     "phi operand unavailable at the end of its "
                     "predecessor"),
    # -- type separation -------------------------------------------------
    "STSA-TYP-001": (LAYER_VERIFIER, Severity.ERROR, "operand on the wrong register plane"),
    "STSA-TYP-002": (LAYER_VERIFIER, Severity.ERROR,
                     "operation unknown to the type's operation table"),
    "STSA-TYP-003": (LAYER_VERIFIER, Severity.ERROR, "wrong operand arity"),
    "STSA-TYP-004": (LAYER_VERIFIER, Severity.ERROR,
                     "result type absent from the type table"),
    "STSA-TYP-005": (LAYER_VERIFIER, Severity.ERROR, "branch condition is not a boolean"),
    "STSA-TYP-006": (LAYER_VERIFIER, Severity.ERROR,
                     "return value does not match the signature"),
    "STSA-TYP-007": (LAYER_VERIFIER, Severity.ERROR,
                     "throw operand not on the safe Throwable plane"),
    "STSA-TYP-008": (LAYER_VERIFIER, Severity.ERROR, "illegal downcast between planes"),
    "STSA-TYP-009": (LAYER_VERIFIER, Severity.ERROR,
                     "upcast must move between reference planes"),
    "STSA-TYP-010": (LAYER_VERIFIER, Severity.ERROR, "nullcheck of a non-reference type"),
    "STSA-TYP-011": (LAYER_VERIFIER, Severity.ERROR, "instanceof misuse"),
    # -- exception discipline --------------------------------------------
    "STSA-EXC-001": (LAYER_VERIFIER, Severity.ERROR,
                     "trapping instruction is not last in its subblock"),
    "STSA-EXC-002": (LAYER_VERIFIER, Severity.ERROR,
                     "missing exception edge to the dispatch block"),
    "STSA-EXC-003": (LAYER_VERIFIER, Severity.ERROR,
                     "subblock with a trapping tail must fall through"),
    "STSA-EXC-004": (LAYER_VERIFIER, Severity.ERROR,
                     "caughtexc outside a dispatch block"),
    "STSA-EXC-005": (LAYER_VERIFIER, Severity.ERROR,
                     "exception edge without an exception point"),
    "STSA-EXC-006": (LAYER_VERIFIER, Severity.ERROR, "exception edge escapes its try"),
    # -- structural placement --------------------------------------------
    "STSA-STR-001": (LAYER_VERIFIER, Severity.ERROR, "const outside the entry block"),
    "STSA-STR-002": (LAYER_VERIFIER, Severity.ERROR, "param outside the entry block"),
    "STSA-STR-003": (LAYER_VERIFIER, Severity.ERROR, "param index out of range"),
    "STSA-STR-004": (LAYER_VERIFIER, Severity.ERROR,
                     "only 'this' may be pre-loaded on a safe plane"),
    "STSA-STR-005": (LAYER_VERIFIER, Severity.ERROR,
                     "reference constant with a non-null value"),
    # -- memory safety ----------------------------------------------------
    "STSA-MEM-001": (LAYER_VERIFIER, Severity.ERROR,
                     "object operand not on the safe reference plane"),
    "STSA-MEM-002": (LAYER_VERIFIER, Severity.ERROR, "static/instance field misuse"),
    "STSA-MEM-003": (LAYER_VERIFIER, Severity.ERROR,
                     "field or method unreachable in the tamper-proof "
                     "tables"),
    "STSA-MEM-004": (LAYER_VERIFIER, Severity.ERROR, "setstatic of a final library field"),
    "STSA-MEM-005": (LAYER_VERIFIER, Severity.ERROR,
                     "array operand not a safe array reference"),
    "STSA-MEM-006": (LAYER_VERIFIER, Severity.ERROR,
                     "index not a safe index of the same array value"),
    "STSA-MEM-007": (LAYER_VERIFIER, Severity.ERROR, "idxcheck result plane mismatch"),
    # -- calls -------------------------------------------------------------
    "STSA-CALL-001": (LAYER_VERIFIER, Severity.ERROR, "xdispatch of a static method"),
    # -- lint findings -----------------------------------------------------
    "STSA-CFG-101": (LAYER_LINT, Severity.WARNING,
                     "unreachable block: never executed and not "
                     "transmitted"),
    "STSA-PHI-101": (LAYER_LINT, Severity.WARNING,
                     "dead phi: no observable use reaches it"),
    "STSA-NULL-101": (LAYER_LINT, Severity.INFO,
                      "redundant nullcheck: the operand is provably "
                      "non-null on every path"),
    "STSA-IDX-101": (LAYER_LINT, Severity.INFO,
                     "redundant idxcheck: the index is provably in "
                     "bounds on every path"),
    # -- pipeline ----------------------------------------------------------
    "STSA-PASS-001": (LAYER_VERIFIER, Severity.ERROR,
                      "optimisation pass left the function ill-formed"),
    # -- generic fallback --------------------------------------------------
    "STSA-GEN-001": (LAYER_VERIFIER, Severity.ERROR, "unclassified well-formedness error"),
    # ===== serve layer: distribution-service rejections ================
    # (repro.serve -- structured error payloads, one code per failure
    # class; docs/SERVE.md documents the HTTP mapping, and the
    # reachability audit in tests/test_serve.py pins one fixture per
    # code)
    "SERVE-RATE": (LAYER_SERVE, Severity.ERROR,
                   "per-tenant request rate quota exceeded"),
    "SERVE-QUOTA-BYTES": (LAYER_SERVE, Severity.ERROR,
                          "per-tenant stored-bytes quota exceeded"),
    "SERVE-QUOTA-COMPILE": (LAYER_SERVE, Severity.ERROR,
                            "per-tenant compile-seconds budget "
                            "exhausted"),
    "SERVE-NOT-FOUND": (LAYER_SERVE, Severity.ERROR,
                        "no stored module or dictionary blob under the "
                        "requested digest"),
    "SERVE-BAD-REQUEST": (LAYER_SERVE, Severity.ERROR,
                          "malformed request (bad JSON, missing field, "
                          "or undecodable payload encoding)"),
    "SERVE-ENDPOINT": (LAYER_SERVE, Severity.ERROR,
                       "unknown endpoint or unsupported HTTP method"),
    "SERVE-COMPILE": (LAYER_SERVE, Severity.ERROR,
                      "submitted source program failed to compile"),
    "SERVE-REJECTED": (LAYER_SERVE, Severity.ERROR,
                       "module bytes rejected by the verifying loader "
                       "(detail carries the DEC-* code)"),
    "SERVE-CHAIN": (LAYER_SERVE, Severity.ERROR,
                    "publish-log hash chain broken: an entry hash, "
                    "prev link, or sequence number does not verify"),
    "SERVE-SIG": (LAYER_SERVE, Severity.ERROR,
                  "manifest signature does not verify against the "
                  "publisher key"),
}

#: Derived verifier/lint view consumed by the diagnostic machinery:
#: code -> (severity, description); decoder and serve codes excluded
#: (those layers reject with their own exception types and never emit
#: :class:`Diagnostic` records).
DIAGNOSTIC_CODES: dict[str, tuple[str, str]] = {
    code: (severity, description)
    for code, (layer, severity, description) in STABLE_CODES.items()
    if layer not in (LAYER_DECODER, LAYER_SERVE)
}

#: Documented equivalence classes for differential verdict comparison:
#: the same underlying defect surfaces under the decoder code on the
#: wire path and under the verifier code on the in-memory path.  The
#: decoder folds whole verifier rule families into one code because the
#: offending construct is simply unrepresentable past that point.
CODE_ALIASES: tuple[frozenset[str], ...] = (
    frozenset({"DEC-TRAP-REF", "STSA-REF-004"}),
    # truncation surfaces as DEC-IO from the one-shot bit reader and as
    # DEC-STREAM from the chunk-feedable front / envelope resolution --
    # same defect (the unit ended early), two delivery paths
    frozenset({"DEC-IO", "DEC-STREAM"}),
    frozenset({"DEC-REF", "STSA-REF-001", "STSA-REF-002", "STSA-REF-003",
               "STSA-PHI-003"}),
    frozenset({"DEC-CST", "STSA-CFG-001", "STSA-CFG-002"}),
    frozenset({"DEC-EXC", "STSA-CFG-003", "STSA-EXC-001", "STSA-EXC-002",
               "STSA-EXC-003", "STSA-EXC-004", "STSA-EXC-005",
               "STSA-EXC-006"}),
    frozenset({"DEC-MALFORMED", "STSA-TYP-001", "STSA-TYP-002",
               "STSA-TYP-003", "STSA-TYP-004", "STSA-TYP-005",
               "STSA-TYP-006", "STSA-TYP-007", "STSA-TYP-008",
               "STSA-TYP-009", "STSA-TYP-010", "STSA-TYP-011",
               "STSA-STR-001", "STSA-STR-002", "STSA-STR-003",
               "STSA-STR-004", "STSA-STR-005", "STSA-MEM-001",
               "STSA-MEM-002", "STSA-MEM-003", "STSA-MEM-004",
               "STSA-MEM-005", "STSA-MEM-006", "STSA-MEM-007",
               "STSA-CALL-001"}),
)


def layer_of(code: str) -> str:
    """The component that owns ``code`` (KeyError if unregistered)."""
    return STABLE_CODES[code][0]


def alias_class(code: str) -> frozenset[str]:
    """The equivalence class of ``code`` (a singleton if unaliased)."""
    for aliases in CODE_ALIASES:
        if code in aliases:
            return aliases
    return frozenset({code})


def codes_equivalent(left: str, right: str) -> bool:
    """True iff the two rejection codes name the same defect modulo the
    documented decoder/verifier aliasing."""
    return left == right or right in alias_class(left)


class Diagnostic:
    """One structured finding.

    ``block`` and ``instr`` are the SafeTSA block id and value id (the
    ``B<n>`` / ``v<n>`` of the disassembly); either may be ``None`` for
    function- or block-level findings.
    """

    __slots__ = ("code", "severity", "message", "function", "block",
                 "instr")

    def __init__(self, code: str, message: str, *,
                 function: Optional[str] = None,
                 block: Optional[int] = None,
                 instr: Optional[int] = None,
                 severity: Optional[str] = None):
        if severity is None:
            severity = DIAGNOSTIC_CODES.get(
                code, (Severity.ERROR, ""))[0]
        self.code = code
        self.severity = severity
        self.message = message
        self.function = function
        self.block = block
        self.instr = instr

    # -- presentation ---------------------------------------------------

    def location(self) -> str:
        parts = []
        if self.function is not None:
            parts.append(self.function)
        if self.block is not None:
            parts.append(f"B{self.block}")
        if self.instr is not None:
            parts.append(f"v{self.instr}")
        return ":".join(parts) or "<module>"

    def as_dict(self) -> dict:
        """The stable machine-readable schema (key order is part of the
        contract; see docs/ANALYSIS.md)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "function": self.function,
            "block": self.block,
            "instr": self.instr,
            "message": self.message,
        }

    def __str__(self) -> str:
        return (f"{self.code} {self.severity} {self.location()}: "
                f"{self.message}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<diagnostic {self}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Diagnostic) \
            and self.as_dict() == other.as_dict()

    def __hash__(self) -> int:
        return hash((self.code, self.function, self.block, self.instr,
                     self.message))


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity == Severity.ERROR for d in diagnostics)


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    counts = {severity: 0 for severity in Severity.ORDER}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] = counts.get(diagnostic.severity, 0) + 1
    return counts


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Deterministic report order: severity, then location, then code."""
    return sorted(diagnostics, key=lambda d: (
        Severity.rank(d.severity),
        d.function or "",
        d.block if d.block is not None else -1,
        d.instr if d.instr is not None else -1,
        d.code,
        d.message,
    ))
