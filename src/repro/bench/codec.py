"""Codec throughput benchmark: word-at-a-time vs the seed codec.

The honest unit of comparison for the bit codec is the *primitive-op
trace*: the exact sequence of ``write_bounded`` / ``write_gamma`` /
``write_bits`` / ... calls the serializer makes while externalising the
corpus.  Replaying that trace against both codecs times the codec alone
under the format's real field-width distribution (about four bits per
symbol), without attributing serializer or deserializer object
construction to either side.  The module-path numbers (full
``encode_module`` / ``decode_module`` wall-clock) are reported alongside
for the end-to-end view.

Both codecs must produce byte-identical streams for the replay to be
meaningful; :func:`capture_corpus_trace` asserts exactly that, which
also serves as a whole-corpus differential test of the rewrite.
"""

from __future__ import annotations

from time import perf_counter

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.encode._bitio_reference import (
    ReferenceBitReader,
    ReferenceBitWriter,
)
from repro.encode.bitio import BitReader, BitWriter
from repro.pipeline import compile_to_module

#: (writer method, reader method) per trace-op tag.
_OPS = {
    "bits": ("write_bits", "read_bits"),
    "bounded": ("write_bounded", "read_bounded"),
    "gamma": ("write_gamma", "read_gamma"),
    "sgamma": ("write_signed_gamma", "read_signed_gamma"),
    "flag": ("write_flag", "read_flag"),
    "bytes": ("write_bytes", "read_bytes"),
}


def _tracing_writer(ops: list):
    """A BitWriter subclass recording every top-level primitive op."""

    class Tracer(BitWriter):
        _depth = 0  # write_signed_gamma calls write_gamma: record once

        def _record(self, tag, args):
            if Tracer._depth == 0:
                ops.append((tag,) + args)

    def _wrap(tag, method_name):
        base = getattr(BitWriter, method_name)

        def method(self, *args):
            self._record(tag, args)
            Tracer._depth += 1
            try:
                return base(self, *args)
            finally:
                Tracer._depth -= 1
        return method

    for tag, (writer_method, _reader_method) in _OPS.items():
        setattr(Tracer, writer_method, _wrap(tag, writer_method))
    return Tracer


def capture_corpus_trace(programs=None):
    """Compile the corpus (both transmitted forms), record the write
    trace, and check the two codecs agree byte-for-byte on it.

    Returns ``(ops, stream)`` where ``stream`` is the replayed bit
    stream all further measurements run against.
    """
    from repro.encode import serializer

    ops: list = []
    modules = []
    for name in (programs or CORPUS_PROGRAMS):
        source = corpus_source(name)
        modules.append(compile_to_module(source, prune_phis=False,
                                         cache=False))
        modules.append(compile_to_module(source, optimize=True,
                                         cache=False))
    tracer = _tracing_writer(ops)
    original = serializer.BitWriter
    serializer.BitWriter = tracer
    try:
        for module in modules:
            serializer.encode_module(module)
    finally:
        serializer.BitWriter = original
    stream = replay_write(BitWriter, ops)
    reference = replay_write(ReferenceBitWriter, ops)
    if stream != reference:
        raise AssertionError(
            "word-at-a-time and reference codecs produced different "
            "bytes for the corpus trace")
    return ops, stream


def _write_calls(writer, ops):
    return [(getattr(writer, _OPS[op[0]][0]), op[1:]) for op in ops]


def _read_calls(reader, ops):
    calls = []
    for op in ops:
        tag = op[0]
        method = getattr(reader, _OPS[tag][1])
        if tag in ("gamma", "sgamma", "flag"):
            calls.append((method, ()))
        elif tag == "bytes":
            calls.append((method, (len(op[1]),)))
        else:  # bits / bounded read back their width argument
            calls.append((method, (op[-1],)))
    return calls


def replay_write(writer_class, ops) -> bytes:
    writer = writer_class()
    for method, args in _write_calls(writer, ops):
        method(*args)
    return writer.getvalue()


def replay_read(reader_class, ops, stream) -> None:
    reader = reader_class(stream)
    for method, args in _read_calls(reader, ops):
        method(*args)


def _timed_write(writer_class, ops) -> float:
    """Seconds for the op loop alone, with the bound methods resolved
    up front -- dispatch overhead would be charged equally to both
    codecs and compress the ratio between them."""
    writer = writer_class()
    calls = _write_calls(writer, ops)
    start = perf_counter()
    for method, args in calls:
        method(*args)
    return perf_counter() - start


def _timed_read(reader_class, ops, stream) -> float:
    reader = reader_class(stream)
    calls = _read_calls(reader, ops)
    start = perf_counter()
    for method, args in calls:
        method(*args)
    return perf_counter() - start


def check_read_values(ops, stream) -> None:
    """Replay the trace asserting every decoded value (used by tests)."""
    reader = BitReader(stream)
    for op in ops:
        tag = op[0]
        method = getattr(reader, _OPS[tag][1])
        if tag in ("gamma", "sgamma", "flag"):
            value = method()
        elif tag == "bytes":
            value = method(len(op[1]))
        else:
            value = method(op[-1])
        if value != op[1]:
            raise AssertionError(f"replayed {op} but read {value!r}")


def _best_of(fn, repeats: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn()
    return min(fn() for _ in range(repeats))


def measure_codec_throughput(programs=None, repeats: int = 3) -> dict:
    """Trace-replay MB/s for both codecs plus the speedup ratios."""
    ops, stream = capture_corpus_trace(programs)
    size = len(stream)
    seconds = {
        "encode": _best_of(lambda: _timed_write(BitWriter, ops), repeats),
        "decode": _best_of(lambda: _timed_read(BitReader, ops, stream),
                           repeats),
        "ref_encode": _best_of(
            lambda: _timed_write(ReferenceBitWriter, ops), repeats),
        "ref_decode": _best_of(
            lambda: _timed_read(ReferenceBitReader, ops, stream), repeats),
    }
    mbps = {key: size / secs / 1e6 for key, secs in seconds.items()}
    return {
        "trace_ops": len(ops),
        "stream_bytes": size,
        "encode_mbps": round(mbps["encode"], 3),
        "decode_mbps": round(mbps["decode"], 3),
        "ref_encode_mbps": round(mbps["ref_encode"], 3),
        "ref_decode_mbps": round(mbps["ref_decode"], 3),
        "encode_speedup": round(seconds["ref_encode"]
                                / seconds["encode"], 2),
        "decode_speedup": round(seconds["ref_decode"]
                                / seconds["decode"], 2),
        "combined_speedup": round(
            (seconds["ref_encode"] + seconds["ref_decode"])
            / (seconds["encode"] + seconds["decode"]), 2),
    }
