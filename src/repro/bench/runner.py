"""Command-line entry point regenerating every table and figure.

Usage::

    python -m repro.bench.runner figure5      # paper Figure 5
    python -m repro.bench.runner figure6      # paper Figure 6
    python -m repro.bench.runner pruning      # E3: dead-phi pruning
    python -m repro.bench.runner ablation     # E4: per-pass contribution
    python -m repro.bench.runner verifycost   # E5: verification cost
    python -m repro.bench.runner jitspeed     # E9: consumer codegen speed
    python -m repro.bench.runner all
"""

from __future__ import annotations

import sys
import time

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.bench.metrics import measure_corpus
from repro.bench.tables import (
    ablation_table,
    figure5_table,
    figure6_table,
    phi_pruning_table,
)
from repro.pipeline import compile_to_module


def run_figure5() -> str:
    rows = measure_corpus()
    return "Figure 5: SafeTSA class files compared to Java class files\n\n" \
        + figure5_table(rows)


def run_figure6() -> str:
    rows = measure_corpus()
    return ("Figure 6: Phi-, Null-Check and Array-Check instructions "
            "before and after optimisation\n\n" + figure6_table(rows))


def run_pruning() -> str:
    results = []
    for name in CORPUS_PROGRAMS:
        source = corpus_source(name)
        unpruned = compile_to_module(source, prune_phis=False)
        pruned = compile_to_module(source, prune_phis=True)
        results.append((name,
                        unpruned.count_opcodes("phi"),
                        pruned.count_opcodes("phi")))
    return ("E3: eager (Brandis/Moessenboeck) phi insertion vs Briggs "
            "pruning\n\n" + phi_pruning_table(results))


def run_ablation() -> str:
    configs = {
        "none": [],
        "constprop": ["constprop"],
        "cse": ["cse"],
        "dce": ["dce"],
        "all": ["constprop", "cse", "dce"],
    }
    results = []
    for name in CORPUS_PROGRAMS:
        source = corpus_source(name)
        counts = {}
        for label, passes in configs.items():
            module = compile_to_module(source)
            if passes:
                from repro.opt.pipeline import optimize_module
                optimize_module(module, passes)
            counts[label] = module.instruction_count()
        results.append((name, counts))
    return ("E4: instruction count per optimisation configuration\n\n"
            + ablation_table(results))


def run_verifycost() -> str:
    from repro.frontend.parser import parse_compilation_unit
    from repro.frontend.semantics import analyze
    from repro.jvm.codegen import compile_unit
    from repro.jvm.verifier import verify_class
    from repro.tsa.verifier import verify_module
    from repro.uast.builder import UastBuilder

    lines = [
        "E5: consumer-side verification cost "
        "(SafeTSA counter check vs JVM dataflow)",
        "",
        f"{'Program':16} {'tsa (ms)':>9} {'jvm (ms)':>9} "
        f"{'jvm steps':>10} {'ratio':>7}",
        "-" * 56,
    ]
    total_tsa = 0.0
    total_jvm = 0.0
    for name in CORPUS_PROGRAMS:
        source = corpus_source(name)
        module = compile_to_module(source)
        unit = parse_compilation_unit(source)
        world = analyze(unit)
        builder = UastBuilder(world)
        classes = compile_unit(world, {decl.info: builder.build_class(decl)
                                       for decl in unit.classes})
        start = time.perf_counter()
        verify_module(module)
        tsa_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        steps = sum(verify_class(world, cls) for cls in classes)
        jvm_ms = (time.perf_counter() - start) * 1000
        total_tsa += tsa_ms
        total_jvm += jvm_ms
        ratio = jvm_ms / tsa_ms if tsa_ms else float("inf")
        lines.append(f"{name:16} {tsa_ms:9.2f} {jvm_ms:9.2f} "
                     f"{steps:10} {ratio:7.2f}")
    lines.append("-" * 56)
    ratio = total_jvm / total_tsa if total_tsa else float("inf")
    lines.append(f"{'TOTAL':16} {total_tsa:9.2f} {total_jvm:9.2f} "
                 f"{'':10} {ratio:7.2f}")
    return "\n".join(lines)


def run_jitspeed() -> str:
    from repro.interp.interpreter import Interpreter
    from repro.interp.jit import JitCompiler
    lines = [
        "E9: consumer-side code generation (interpreter vs JIT)",
        "",
        f"{'Program':16} {'interp':>10} {'jit':>10} {'speedup':>8}",
        "-" * 48,
    ]
    total_interp = total_jit = 0.0
    for name in ("BitSieve", "Linpack", "BigInt", "MiniVM"):
        module = compile_to_module(corpus_source(name), optimize=True)
        start = time.perf_counter()
        Interpreter(module, max_steps=200_000_000).run_main(name)
        interp_s = time.perf_counter() - start
        start = time.perf_counter()
        JitCompiler(module).run_main(name)
        jit_s = time.perf_counter() - start
        total_interp += interp_s
        total_jit += jit_s
        lines.append(f"{name:16} {interp_s * 1000:8.1f}ms "
                     f"{jit_s * 1000:8.1f}ms {interp_s / jit_s:7.1f}x")
    lines.append("-" * 48)
    lines.append(f"{'TOTAL':16} {total_interp * 1000:8.1f}ms "
                 f"{total_jit * 1000:8.1f}ms "
                 f"{total_interp / total_jit:7.1f}x")
    return "\n".join(lines)


COMMANDS = {
    "figure5": run_figure5,
    "figure6": run_figure6,
    "pruning": run_pruning,
    "ablation": run_ablation,
    "verifycost": run_verifycost,
    "jitspeed": run_jitspeed,
}


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv or argv[0] not in list(COMMANDS) + ["all"]:
        print(__doc__)
        return 2
    if argv[0] == "all":
        for name, command in COMMANDS.items():
            print(command())
            print()
    else:
        print(COMMANDS[argv[0]]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
