"""Tests for the measurement harness itself (tables, metrics, runner)."""

import pytest

from repro.bench.metrics import ClassMetrics, measure_program
from repro.bench.tables import (
    _fmt_delta,
    ablation_table,
    figure5_table,
    figure6_table,
    phi_pruning_table,
)


class TestFormatting:
    def test_delta_formatting(self):
        assert _fmt_delta(100, 50) == "-50%"
        assert _fmt_delta(100, 100) == "+0%"
        assert _fmt_delta(100, 138) == "+38%"
        assert _fmt_delta(0, 5) == "N/A"

    def test_delta_pct_on_metrics(self):
        row = ClassMetrics("P", "C")
        assert row.delta_pct(0, 3) is None
        assert row.delta_pct(10, 7) == -30


class TestMeasurement:
    @pytest.fixture(scope="class")
    def rows(self):
        source = """
        class Pair {
            int a; int b;
            Pair(int a, int b) { this.a = a; this.b = b; }
            int total() { return a + b + a + b; }
            static int run(Pair p) { return p.total() + p.total(); }
        }
        """
        return measure_program("inline", source)

    def test_row_per_class(self, rows):
        assert [row.class_name for row in rows] == ["Pair"]

    def test_all_columns_populated(self, rows):
        row = rows[0]
        assert row.bytecode_size > 0
        assert row.tsa_size > 0
        assert row.tsa_opt_size > 0
        assert row.bytecode_insns > 0
        assert row.tsa_insns > 0
        assert row.tsa_opt_insns <= row.tsa_insns
        assert row.nullchecks_after <= row.nullchecks_before

    def test_tables_render(self, rows):
        for text in (figure5_table(rows), figure6_table(rows)):
            assert "Pair" in text
            assert "TOTAL" in text

    def test_other_tables_render(self):
        pruning = phi_pruning_table([("P", 10, 7)])
        assert "-30%" in pruning
        ablation = ablation_table([("P", {"none": 10, "constprop": 9,
                                          "cse": 8, "dce": 9, "all": 7})])
        assert "P" in ablation


class TestRunnerCommands:
    def test_command_inventory(self):
        from repro.bench.runner import COMMANDS
        assert set(COMMANDS) == {"figure5", "figure6", "pruning",
                                 "ablation", "verifycost", "jitspeed"}

    def test_unknown_command_prints_usage(self, capsys):
        from repro.bench.runner import main
        assert main(["nope"]) == 2
        assert "figure5" in capsys.readouterr().out
