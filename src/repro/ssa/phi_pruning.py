"""Briggs-style dead-phi pruning (paper Section 7).

The eager Brandis/Moessenboeck construction inserts a phi at every join
for every variable assigned in the joined region; many of these merge
values that are never subsequently used.  Following Briggs et al. [7] the
paper removes them with a liveness-based dead-code elimination, reporting
an average 31% reduction in phi instructions.  Here a phi is *live* when
it is reachable, through phi operands, from any non-phi user; everything
else is removed.
"""

from __future__ import annotations

from repro.ssa.ir import Function, Phi


def prune_dead_phis(function: Function) -> int:
    """Remove dead phis from ``function``; returns the number removed."""
    live: set[int] = set()
    worklist = []
    for block in function.blocks:
        for instr in block.instrs:
            for operand in instr.operands:
                if isinstance(operand, Phi) and operand.id not in live:
                    live.add(operand.id)
                    worklist.append(operand)
        if block.term is not None and isinstance(block.term.value, Phi):
            phi = block.term.value
            if phi.id not in live:
                live.add(phi.id)
                worklist.append(phi)
    while worklist:
        phi = worklist.pop()
        for operand in phi.operands:
            if isinstance(operand, Phi) and operand.id not in live:
                live.add(operand.id)
                worklist.append(operand)
    removed = 0
    for block in function.blocks:
        keep = []
        for phi in block.phis:
            if phi.id in live:
                keep.append(phi)
            else:
                phi.drop_operands()
                phi.removed = True
                removed += 1
        block.phis = keep
    return removed
