"""Pass-pipeline benchmark: analysis-cache reuse, per-pass timing, and
the parallel fan-out (``BENCH_pipeline.json``).

Three questions, answered over the full corpus workload (every
transmitted artifact is built, verified, optimised, re-verified, and
encoded; the optimised form also produces the bytecode baseline the
Figure 5 comparison needs):

1. **What do the shared front end and shared analyses buy?**  The
   ``serial`` baseline is the pre-driver path: ``compile_to_module`` +
   ``verify_module`` + ``optimize_module`` + ``encode_module`` +
   ``compile_to_classfiles``, each consumer re-running its own solvers
   (CSE its own dominator tree, DCE its own observability closure, the
   verifier and the encoder theirs again) and the bytecode baseline
   re-parsing the source.  The ``session`` path runs the same workload
   through one :class:`~repro.driver.session.CompilationSession` per
   artifact: every consumer hits the shared :class:`~repro.analysis.
   manager.AnalysisManager`, and the baseline reuses the memoized
   front end.

2. **What does the fan-out buy?**  ``parallel`` distributes the
   session workload across a process pool at artifact granularity
   (the ``warm_cache`` pattern: compilation is pure CPU, wire bytes are
   the picklable result).  On a single-CPU host the pool is skipped and
   ``workers`` honestly reports 1 -- the speedup there is all analysis
   sharing; on multi-core CI both effects compound.

3. **Is the fan-out safe?**  For every corpus artifact the parallel
   session must produce bit-identical encoded bytes and equal per-pass
   statistics to the serial session (also enforced as a tier-1 test in
   ``tests/test_driver.py``).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import Optional

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.bench.metrics import TRANSMITTED_FLAGS
from repro.driver import CompilationSession

#: thread fan-out width used for the determinism comparison
_DETERMINISM_JOBS = 4


def _artifacts(programs) -> list[tuple[str, str, dict]]:
    """(label, source, session flags) per transmitted corpus artifact."""
    out = []
    for name in programs:
        source = corpus_source(name)
        for flags in TRANSMITTED_FLAGS:
            form = "opt" if flags.get("optimize") else "plain"
            out.append((f"{name}.{form}", source, dict(flags)))
    return out


def _session_for(flags: dict, jobs=None) -> CompilationSession:
    return CompilationSession(cache=False, jobs=jobs, **flags)


def _run_session_workload(label_source_flags, jobs=None):
    """Worker: one artifact's full producer workload through a session:
    build, verify, optimise, re-verify, encode -- plus, for the
    optimised form, the bytecode baseline Figure 5 compares against
    (sharing the session's memoized front end, where the legacy path
    parses a second time).

    Returns (label, wire bytes, deterministic report dicts, session
    pass-report) -- everything picklable, so this runs under a process
    pool too.
    """
    label, source, flags = label_source_flags
    session = _session_for(flags, jobs=jobs)
    module = session.build_module(source)
    session.verify(module)  # admission check on the built module
    session.optimize(module)
    session.verify(module)  # the passes must preserve well-formedness
    wire = session.encode(module)
    if flags.get("optimize"):
        session.compile_to_classfiles(source)
    reports = [report.as_dict(seconds=False)
               for report in session.reports]
    return label, wire, reports, session.pass_report()


def _run_legacy_workload(label_source_flags):
    """The same workload through the pre-driver entry points, every
    consumer computing its own analyses."""
    from repro.encode.serializer import encode_module
    from repro.opt.pipeline import optimize_module
    from repro.pipeline import compile_to_classfiles, compile_to_module
    from repro.tsa.verifier import verify_module
    label, source, flags = label_source_flags
    module = compile_to_module(
        source, cache=False,
        prune_phis=flags.get("prune_phis", True))
    verify_module(module)
    if flags.get("optimize"):
        optimize_module(module)
    verify_module(module)
    wire = encode_module(module)
    if flags.get("optimize"):
        compile_to_classfiles(source)  # separate parse: no shared front end
    return label, wire


def _pool_map(fn, items, max_workers):
    """Map through a process pool, degrading exactly like
    ``repro.bench.metrics.warm_cache``."""
    try:
        executor = concurrent.futures.ProcessPoolExecutor(max_workers)
    except (OSError, PermissionError, NotImplementedError):
        executor = concurrent.futures.ThreadPoolExecutor(max_workers)
    try:
        with executor:
            return list(executor.map(fn, items))
    except concurrent.futures.process.BrokenProcessPool:
        with concurrent.futures.ThreadPoolExecutor(max_workers) as pool:
            return list(pool.map(fn, items))


def pipeline_report(programs=None, repeats=None,
                    max_workers: Optional[int] = None) -> dict:
    """All the numbers behind ``BENCH_pipeline.json``."""
    if repeats is None:
        repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    programs = list(programs or CORPUS_PROGRAMS)
    artifacts = _artifacts(programs)
    cpus = os.cpu_count() or 1
    workers = max_workers if max_workers is not None else min(cpus, 4)

    report: dict = {"programs": programs,
                    "artifacts": len(artifacts),
                    "repeats": repeats,
                    "cpus": cpus}

    # 1+2. serial baseline (pre-driver path, per-consumer analyses) vs
    # the session path (shared AnalysisManager).  The rounds interleave
    # so slow clock drift (thermal, noisy neighbours) hits both sides
    # equally; each side keeps its best round.
    def serial_round() -> None:
        for item in artifacts:
            _run_legacy_workload(item)

    def session_round() -> list:
        return [_run_session_workload(item) for item in artifacts]

    serial_round()  # warmup
    session_runs = session_round()
    serial_s = session_s = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        serial_round()
        serial_s = min(serial_s, time.perf_counter() - start)
        start = time.perf_counter()
        session_runs = session_round()
        session_s = min(session_s, time.perf_counter() - start)

    # 3. parallel: the session workload fanned across a process pool at
    # artifact granularity (a single CPU has nothing to fan out to, so
    # the pool is skipped and the honest worker count is 1)
    if workers <= 1 or cpus == 1:
        pool_workers = 1
        parallel_s = session_s
        parallel_runs = session_runs
    else:
        pool_workers = workers
        start = time.perf_counter()
        parallel_runs = _pool_map(_run_session_workload, artifacts,
                                  workers)
        parallel_s = time.perf_counter() - start

    # 4. determinism: thread fan-out vs serial, bytes + reports
    mismatched = []
    for item, (label, serial_wire, serial_reports, _) \
            in zip(artifacts, session_runs):
        p_label, parallel_wire, parallel_reports, _ = \
            _run_session_workload(item, jobs=_DETERMINISM_JOBS)
        assert p_label == label
        if parallel_wire != serial_wire \
                or parallel_reports != serial_reports:
            mismatched.append(label)
    pool_bytes_equal = all(
        pool_wire == serial_wire
        for (_, serial_wire, _, _), (_, pool_wire, _, _)
        in zip(session_runs, parallel_runs))

    # 5. analysis-cache accounting + per-pass seconds, aggregated over
    # the corpus (one timed run's worth of sessions)
    cache_totals = {"computed": 0, "hits": 0, "invalidations": 0}
    per_analysis: dict = {}
    pass_seconds: dict = {}
    for _, _, _, pass_report in session_runs:
        stats = pass_report["analysis_cache"]
        for key in cache_totals:
            cache_totals[key] += stats[key]
        for name, counts in stats["per_analysis"].items():
            slot = per_analysis.setdefault(name,
                                           {"computed": 0, "hits": 0})
            slot["computed"] += counts["computed"]
            slot["hits"] += counts["hits"]
        for name, seconds in pass_report["pass_seconds"].items():
            pass_seconds[name] = pass_seconds.get(name, 0.0) + seconds
    computed = cache_totals["computed"]
    hits = cache_totals["hits"]

    report["serial"] = {
        "seconds": round(serial_s, 4),
        "mode": "legacy entry points; every consumer re-runs its "
                "solvers, bytecode baseline re-parses",
    }
    report["session"] = {
        "seconds": round(session_s, 4),
        "mode": "CompilationSession: shared AnalysisManager and "
                "front end, jobs=1",
    }
    report["parallel"] = {
        "seconds": round(parallel_s, 4),
        "workers": pool_workers,
        "mode": "session workload across a process pool per artifact",
    }
    report["parallel_speedup_vs_serial"] = \
        round(serial_s / parallel_s, 3) if parallel_s else None
    report["session_speedup_vs_serial"] = \
        round(serial_s / session_s, 3) if session_s else None
    report["determinism"] = {
        "artifacts": len(artifacts),
        "thread_jobs": _DETERMINISM_JOBS,
        "identical_bytes": not mismatched,
        "identical_reports": not mismatched,
        "pool_identical_bytes": pool_bytes_equal,
        "mismatched": mismatched,
    }
    report["analysis_cache"] = {
        **cache_totals,
        "hit_rate": round(hits / (hits + computed), 4)
        if hits + computed else 0.0,
        "consumers_per_computed": round((hits + computed) / computed, 3)
        if computed else 0.0,
        "per_analysis": {name: counts for name, counts
                         in sorted(per_analysis.items())},
    }
    report["pass_seconds"] = {name: round(seconds, 6)
                              for name, seconds
                              in sorted(pass_seconds.items())}
    return report
