"""Loop-invariant code motion over SafeTSA natural loops.

An instruction is *loop invariant* when every operand is defined outside
the loop; it then computes the same value on every iteration and can be
evaluated once in the loop's preheader.  Hoisting is restricted to
instructions that can be executed speculatively -- the preheader runs
even for a zero-trip loop, so a hoisted instruction must neither trap
nor have a side effect:

* pure computations (``primitive`` on non-trapping operations,
  ``refcmp``, ``instanceof``, ``downcast``) hoist freely;
* ``arraylen`` hoists whenever its array operand is invariant -- Java
  array lengths are immutable, so no store can change the answer;
* ``getfield``/``getstatic``/``getelt`` are pure reads but only yield
  the same value each trip when nothing in the loop writes the same
  location: a field read is blocked by a store to the *same field* (or
  any call, which may store anywhere), an element read by any element
  store or call.  This mirrors the memory partition used by
  :mod:`repro.opt.memdep`;
* trapping instructions never hoist here -- moving an exception point
  above the loop bound check would throw for loops that would not have
  executed it.  The check-specific cases that *can* be proven safe are
  handled by :mod:`repro.opt.hoist_checks`.

Hoisting works innermost-first so an invariant pulled out of an inner
loop lands in the inner preheader, which belongs to the outer loop's
body and is immediately reconsidered against the outer loop.  Within a
loop the mover iterates to a fixpoint, so chains of invariant
instructions (``a*b`` then ``(a*b)+c``) migrate in one pass run.

Preheaders are materialised lazily via
:func:`repro.analysis.loops.ensure_preheader`; loops whose entry shape
does not admit one (exception-edge entries, dispatch headers) are
skipped rather than transformed unsoundly.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.loops import Loop, LoopForest, ensure_preheader, find_loops
from repro.ssa import ir
from repro.ssa.ir import Block, Function, Instr


class _LoopEffects:
    """What the loop body may write, for gating invariant memory reads."""

    __slots__ = ("stored_fields", "stores_elements", "unknown_writes")

    def __init__(self) -> None:
        self.stored_fields: set = set()
        self.stores_elements = False
        #: a call (or anything else impure we cannot classify) may write
        #: any field of any object
        self.unknown_writes = False

    def blocks_read(self, instr: Instr) -> bool:
        if isinstance(instr, (ir.GetField, ir.GetStatic)):
            return self.unknown_writes or instr.field in self.stored_fields
        if isinstance(instr, ir.GetElt):
            return self.unknown_writes or self.stores_elements
        return False


def _scan_effects(function: Function, loop: Loop) -> _LoopEffects:
    effects = _LoopEffects()
    for block in function.blocks:
        if block.id not in loop.blocks:
            continue
        for instr in block.instrs:
            if instr.is_pure():
                continue
            if isinstance(instr, (ir.SetField, ir.SetStatic)):
                effects.stored_fields.add(instr.field)
            elif isinstance(instr, ir.SetElt):
                effects.stores_elements = True
            elif isinstance(instr, (ir.NullCheck, ir.IdxCheck, ir.Upcast,
                                    ir.New, ir.NewArray, ir.Prim)):
                # trapping but memory-silent; allocation cannot alias a
                # value that existed before the loop
                pass
            else:
                effects.unknown_writes = True
    return effects


def _hoistable(instr: Instr, loop: Loop, effects: _LoopEffects) -> bool:
    if not instr.is_pure():
        return False
    if isinstance(instr, (ir.Phi, ir.CaughtExc, ir.Const, ir.Param)):
        return False
    if effects.blocks_read(instr):
        return False
    return all(loop.is_invariant(op) for op in instr.operands)


def hoist_loop(function: Function, loop: Loop,
               forest: LoopForest) -> tuple[int, int]:
    """Hoist invariants out of one loop; returns (moved, new_preheaders)."""
    effects = _scan_effects(function, loop)
    preheader: Optional[Block] = loop.preheader
    inserted = 0
    moved = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            if block.id not in loop.blocks:
                continue
            for instr in list(block.instrs):
                if not _hoistable(instr, loop, effects):
                    continue
                if preheader is None:
                    before = len(function.blocks)
                    preheader = ensure_preheader(function, loop, forest)
                    if preheader is None:
                        return moved, inserted
                    inserted += len(function.blocks) - before
                block.instrs.remove(instr)
                preheader.append(instr)
                moved += 1
                changed = True
    return moved, inserted


def run_licm(function: Function,
             forest: Optional[LoopForest] = None) -> dict:
    """Run LICM over every natural loop of ``function``.

    Returns ``{"licm_hoisted": moved, "preheaders": inserted}``; a
    nonzero ``preheaders`` count signals a CFG-shape change to the pass
    manager (the dominator tree gains blocks).
    """
    if forest is None:
        forest = find_loops(function)
    moved = 0
    inserted = 0
    for loop in forest.innermost_first():
        loop_moved, loop_inserted = hoist_loop(function, loop, forest)
        moved += loop_moved
        inserted += loop_inserted
    return {"licm_hoisted": moved, "preheaders": inserted}
