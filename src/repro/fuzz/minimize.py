"""Delta-debugging shrinkers + regression-fixture persistence.

:func:`minimize_sequence` is a greedy ddmin over any sliceable
sequence: repeatedly delete chunks, halving the chunk size whenever a
whole sweep removes nothing.  :func:`minimize_bytes` and
:func:`minimize_lines` specialise it to wire streams and source texts.

Shrunken crashers are persisted under ``tests/golden/attacks/`` as
``<sha256[:16]>.bin`` next to a ``manifest.json`` that records what each
stream is expected to do *after* the fix (its stable rejection code).
``tests/test_fuzz.py`` replays every fixture on every run, so a finding
fixed once stays fixed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable


def minimize_sequence(items, failing: Callable, *,
                      max_probes: int = 4000):
    """Greedy ddmin: smallest subsequence for which ``failing`` holds.

    ``failing(candidate)`` must be True for ``items`` itself; the
    predicate is assumed deterministic.  ``max_probes`` bounds the
    number of predicate evaluations so pathological predicates cannot
    stall a campaign.
    """
    if not failing(items):
        raise ValueError("minimize_sequence needs a failing input")
    probes = 0
    chunk = max(1, len(items) // 2)
    while len(items) > 1 and probes < max_probes:
        removed_any = False
        start = 0
        while start < len(items) and probes < max_probes:
            candidate = items[:start] + items[start + chunk:]
            probes += 1
            if len(candidate) < len(items) and failing(candidate):
                items = candidate
                removed_any = True
            else:
                start += chunk
        if not removed_any:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return items


def minimize_bytes(data: bytes, failing: Callable[[bytes], bool],
                   **kwargs) -> bytes:
    """Shrink a failing wire stream (byte-granular ddmin)."""
    return bytes(minimize_sequence(bytes(data), failing, **kwargs))


def minimize_lines(text: str, failing: Callable[[str], bool],
                   **kwargs) -> str:
    """Shrink a failing source program line-by-line."""
    lines = text.split("\n")
    reduced = minimize_sequence(
        lines, lambda candidate: failing("\n".join(candidate)), **kwargs)
    return "\n".join(reduced)


# ======================================================================
# fixture persistence

def fixture_name(data: bytes) -> str:
    """Content-addressed fixture file name (deterministic per stream)."""
    return hashlib.sha256(data).hexdigest()[:16]


def save_fixture(directory, data: bytes, meta: dict) -> Path:
    """Persist one shrunken stream plus its manifest entry.

    ``meta`` should describe the finding: the exception class observed
    before the fix, the mutator that produced it, the campaign seed, and
    (once fixed) the stable rejection code the stream must map to.
    Saving the same stream twice just refreshes its manifest entry.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = fixture_name(data)
    (directory / f"{name}.bin").write_bytes(data)
    manifest_path = directory / "manifest.json"
    manifest = {}
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
    manifest[name] = meta
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return directory / f"{name}.bin"


def load_fixtures(directory) -> list[tuple[str, bytes, dict]]:
    """Every persisted stream with its manifest entry (sorted by name)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    manifest = {}
    manifest_path = directory / "manifest.json"
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
    fixtures = []
    for path in sorted(directory.glob("*.bin")):
        fixtures.append((path.stem, path.read_bytes(),
                         manifest.get(path.stem, {})))
    return fixtures
