"""The seed bit-at-a-time codec, kept verbatim as a reference.

The production codec in :mod:`repro.encode.bitio` is a word-at-a-time
rewrite that must stay bit-for-bit compatible with this one; the
differential tests in ``tests/test_encode.py`` and the throughput
benchmark (``python -m repro.bench.runner codec``) both compare
against these classes.  Original docstring:

Bit-level I/O with the three primitive codes of the wire format:

* ``bounded`` -- phase-in (truncated binary) codes for symbols from a
  finite alphabet of known size;
* ``gamma`` -- Elias gamma codes for small unbounded counts;
* ``bits`` -- raw fixed-width fields (IEEE floats, chars).
"""

from __future__ import annotations

from repro.encode.bitio import BitIOError


class ReferenceBitWriter:
    """Accumulates bits most-significant-first into a byte string."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_buffer = 0
        self._bit_count = 0

    def write_bits(self, value: int, width: int) -> None:
        if width < 0 or (width and value >> width):
            raise BitIOError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bit_buffer = (self._bit_buffer << 1) | ((value >> shift) & 1)
            self._bit_count += 1
            if self._bit_count == 8:
                self._bytes.append(self._bit_buffer)
                self._bit_buffer = 0
                self._bit_count = 0

    def write_bounded(self, value: int, alphabet_size: int) -> None:
        """Phase-in code: symbols 0..n-1, using floor(log2 n) or
        ceil(log2 n) bits."""
        if alphabet_size <= 0:
            raise BitIOError("empty alphabet has no encoding")
        if not 0 <= value < alphabet_size:
            raise BitIOError(
                f"symbol {value} outside alphabet of {alphabet_size}")
        if alphabet_size == 1:
            return  # the only symbol costs zero bits
        width = (alphabet_size - 1).bit_length()
        threshold = (1 << width) - alphabet_size
        if value < threshold:
            self.write_bits(value, width - 1)
        else:
            self.write_bits(value + threshold, width)

    def write_gamma(self, value: int) -> None:
        """Elias gamma for value >= 0 (encodes value + 1)."""
        if value < 0:
            raise BitIOError("gamma encodes non-negative values only")
        n = value + 1
        width = n.bit_length()
        self.write_bits(0, width - 1)
        self.write_bits(n, width)

    def write_signed_gamma(self, value: int) -> None:
        """Zig-zag then gamma, for ints of either sign."""
        zig = ((-value) << 1) - 1 if value < 0 else value << 1
        self.write_gamma(zig)

    def write_flag(self, flag: bool) -> None:
        self.write_bits(1 if flag else 0, 1)

    def write_bytes(self, data: bytes) -> None:
        for byte in data:
            self.write_bits(byte, 8)

    def getvalue(self) -> bytes:
        result = bytearray(self._bytes)
        if self._bit_count:
            result.append(self._bit_buffer << (8 - self._bit_count))
        return bytes(result)

    def bit_length(self) -> int:
        return len(self._bytes) * 8 + self._bit_count


class ReferenceBitReader:
    """Reads the codes written by :class:`ReferenceBitWriter`."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0  # bit position

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            byte_index = self._pos >> 3
            if byte_index >= len(self._data):
                raise BitIOError("unexpected end of stream")
            bit = (self._data[byte_index] >> (7 - (self._pos & 7))) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value

    def read_bounded(self, alphabet_size: int) -> int:
        if alphabet_size <= 0:
            raise BitIOError("empty alphabet: no value can be referenced "
                             "here")
        if alphabet_size == 1:
            return 0
        width = (alphabet_size - 1).bit_length()
        threshold = (1 << width) - alphabet_size
        value = self.read_bits(width - 1)
        if value < threshold:
            return value
        value = (value << 1) | self.read_bits(1)
        return value - threshold

    def read_gamma(self) -> int:
        zeros = 0
        while self.read_bits(1) == 0:
            zeros += 1
            if zeros > 64:
                raise BitIOError("gamma code too long")
        n = 1
        for _ in range(zeros):
            n = (n << 1) | self.read_bits(1)
        return n - 1

    def read_signed_gamma(self) -> int:
        zig = self.read_gamma()
        if zig & 1:
            return -((zig + 1) >> 1)
        return zig >> 1

    def read_flag(self) -> bool:
        return bool(self.read_bits(1))

    def read_bytes(self, count: int) -> bytes:
        return bytes(self.read_bits(8) for _ in range(count))

    # -- helpers the deserializer now relies on (not part of the seed
    # codec, but they do not touch the wire format) ---------------------

    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def at_end(self) -> bool:
        remaining = self.bits_remaining()
        if remaining >= 8:
            return False
        if remaining == 0:
            return True
        return (self._data[-1] & ((1 << remaining) - 1)) == 0
