"""``repro-cc``: command-line driver for the SafeTSA toolchain.

Subcommands::

    repro-cc compile FILE.java -o FILE.stsa [--optimize] [--passes SPEC]
                     [--jobs N] [--no-prune] [--report] [--wire-v2]
    repro-cc run     FILE.java|FILE.stsa|- [--class NAME] [--optimize]
                     [--stream] [--trace[=N]]
    repro-cc disasm  FILE.java|FILE.stsa [--optimize]
    repro-cc verify  FILE.stsa
    repro-cc lint    FILE.java|FILE.stsa [--json] [--optimize]
    repro-cc stats   FILE.java
    repro-cc bench   figure5|figure6|pruning|ablation|verifycost|codec|
                     analysis|pipeline|fuzz|load|wire|serve|all
    repro-cc fuzz    [--seed S] [--budget N] [--mode programs|streams|all]
                     [--fixtures DIR] [--json PATH] [--no-minimize] [-q]
    repro-cc serve   [--host H] [--port P] [--store DIR] [--key HEX]
    repro-cc publish FILE.java|FILE.stsa --name N --url URL [--optimize]
    repro-cc fetch   DIGEST --url URL [-o FILE] [--run]

``run --stream`` consumes the wire from stdin in chunks through the
incremental :class:`~repro.loader.stream.StreamingLoader` -- execution
can begin while later chunks are still arriving, and a truncated or
tampered stream is rejected with the same stable codes as a one-shot
load.  ``run --trace`` executes through the speculative trace tier
(:mod:`repro.interp.trace`): hot loops are recorded and compiled to
guarded straight-line fast paths, with bit-identical fallback on guard
failure.  ``serve`` starts the :mod:`repro.serve` distribution service;
``publish``/``fetch`` are its producer/consumer clients (``fetch``
re-verifies the content address of whatever the server returns).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _load_module(path: str, optimize: bool, prune: bool = True,
                 passes=None, jobs=None, lazy: bool = False):
    from repro.loader import load_module
    from repro.pipeline import compile_to_module
    data = Path(path).read_bytes()
    if path.endswith((".stsa", ".bin")):
        # the fused verifying loader: one decode pass plus the residual
        # sweep, warm loads via the verified-module cache
        return load_module(data, lazy=lazy, jobs=jobs)
    return compile_to_module(data.decode("utf-8"), optimize=optimize,
                             prune_phis=prune, filename=path,
                             passes=passes, jobs=jobs)


def cmd_compile(args) -> int:
    from repro.driver import CompilationSession
    source_path = Path(args.file)
    if args.file.endswith(".stsa"):
        print("compile expects Java source, not .stsa", file=sys.stderr)
        return 1
    try:
        session = CompilationSession(
            optimize=args.optimize, passes=args.passes,
            prune_phis=not args.no_prune, filename=args.file,
            cache=False, jobs=args.jobs)
    except ValueError as error:
        print(f"--passes: {error}", file=sys.stderr)
        return 2
    module = session.build_module(source_path.read_text())
    session.optimize(module)
    wire = session.encode(module)
    version = "stsa1"
    if args.wire_v2:
        # self-contained v2 envelope; dictionary factoring and deltas
        # are publisher batch operations (repro.encode.format)
        from repro.encode.format import encode_v2
        wire = encode_v2(wire)
        version = "stsa2"
    out = args.output or str(source_path.with_suffix(".stsa"))
    Path(out).write_bytes(wire)
    print(f"{out}: {len(wire)} bytes ({version}), "
          f"{module.instruction_count()} instructions, "
          f"{len(module.classes)} classes")
    if args.report:
        import json
        print(json.dumps(session.pass_report(), indent=2))
    return 0


def _load_streaming(chunk_size: int) -> "object":
    """Feed stdin through the incremental loader chunk by chunk."""
    from repro.loader.stream import StreamingLoader
    loader = StreamingLoader()
    stdin = sys.stdin.buffer
    while True:
        chunk = stdin.read(chunk_size)
        if not chunk:
            break
        # feed() hands back the module as soon as the header is
        # decoded (bodies stream in behind it); the CLI runs to
        # completion, so keep feeding and let finish() check the tail
        loader.feed(chunk)
    return loader.finish()


def cmd_run(args) -> int:
    from repro.interp.interpreter import Interpreter
    if args.stream:
        if args.file not in ("-", "/dev/stdin"):
            print("--stream reads the wire from stdin; "
                  "pass '-' as FILE", file=sys.stderr)
            return 2
        from repro.encode.deserializer import DecodeError
        try:
            module = _load_streaming(args.chunk_size)
        except DecodeError as error:
            print(f"REJECTED: {error}", file=sys.stderr)
            return 1
    else:
        module = _load_module(args.file, args.optimize, jobs=args.jobs,
                              lazy=args.lazy)
    trace = getattr(args, "trace", None)
    if trace is not None:
        from repro.interp.trace import (TRACE_DEFAULT_THRESHOLD,
                                        TracingInterpreter)
        threshold = TRACE_DEFAULT_THRESHOLD if trace < 0 else trace
        interp = TracingInterpreter(module, max_steps=args.max_steps,
                                    threshold=threshold)
    else:
        interp = Interpreter(module, max_steps=args.max_steps)
    result = interp.run_main(getattr(args, "class"))
    sys.stdout.write(result.stdout)
    if result.exception is not None:
        print(f"Exception in thread \"main\" {result.exception_name()}",
              file=sys.stderr)
        return 1
    return 0


def cmd_disasm(args) -> int:
    module = _load_module(args.file, args.optimize)
    if args.lr:
        from repro.tsa.disasm import format_module_lr
        print(format_module_lr(module))
    else:
        from repro.ssa.printer import format_module
        print(format_module(module))
    return 0


def cmd_verify(args) -> int:
    from repro.analysis.diagnostics import Severity, has_errors
    from repro.tsa.verifier import collect_diagnostics
    try:
        module = _load_module(args.file, optimize=False)
        diagnostics = collect_diagnostics(module)
    except Exception as error:
        print(f"REJECTED: {error}")
        return 1
    for diagnostic in diagnostics:
        print(diagnostic)
    if has_errors(diagnostics):
        errors = sum(d.severity == Severity.ERROR for d in diagnostics)
        print(f"REJECTED: {errors} error(s)")
        return 1
    print(f"OK: {len(module.classes)} classes, "
          f"{module.instruction_count()} instructions verified")
    return 0


def cmd_lint(args) -> int:
    import json

    from repro.analysis.diagnostics import has_errors
    from repro.analysis.lint import lint_module, lint_report
    try:
        module = _load_module(args.file, optimize=args.optimize)
    except Exception as error:
        print(f"REJECTED: {error}", file=sys.stderr)
        return 1
    diagnostics = lint_module(module)
    if args.json:
        print(json.dumps(lint_report(diagnostics), indent=2))
    else:
        for diagnostic in diagnostics:
            print(diagnostic)
        counts = lint_report(diagnostics)["counts"]
        print(f"{counts['error']} error(s), {counts['warning']} "
              f"warning(s), {counts['info']} info")
    return 1 if has_errors(diagnostics) else 0


def cmd_stats(args) -> int:
    from repro.bench.metrics import measure_program
    from repro.bench.tables import figure5_table, figure6_table
    from repro.driver import CompilationSession
    source = Path(args.file).read_text()
    rows = measure_program(Path(args.file).stem, source)
    print(figure5_table(rows))
    print()
    print(figure6_table(rows))
    session = CompilationSession(optimize=True, cache=False,
                                 filename=args.file)
    session.optimize(session.build_module(source))
    report = session.pass_report()
    print()
    print(f"pass pipeline [{report['spec']}] over "
          f"{report['functions']} function(s):")
    for name, seconds in report["pass_seconds"].items():
        print(f"  {name:<10} {seconds * 1e3:8.3f} ms")
    return 0


def cmd_bench(args) -> int:
    from repro.bench.runner import main as bench_main
    return bench_main([args.table])


def cmd_fuzz(args) -> int:
    import json

    from repro.fuzz import run_campaign
    progress = None if args.quiet else \
        (lambda message: print(f"  .. {message}", flush=True))
    result = run_campaign(
        seed=args.seed, budget=args.budget, mode=args.mode,
        minimize=not args.no_minimize, fixtures_dir=args.fixtures,
        on_progress=progress)
    print(result.summary())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.report(), handle, indent=2)
            handle.write("\n")
        print(f"report -> {args.json}")
    return 0 if result.ok else 1


def cmd_serve(args) -> int:
    from repro.serve import ServeServer, ServeService, TenantLimits
    limits = TenantLimits() if not args.no_limits else \
        TenantLimits(requests_per_window=None, stored_bytes=None,
                     compile_seconds=None)
    service = ServeService(store_dir=args.store,
                           signing_key=bytes.fromhex(args.key)
                           if args.key else b"repro-serve-dev-key",
                           limits=limits)
    server = ServeServer(service, host=args.host, port=args.port)
    print(f"repro-serve: listening on {args.host}:{args.port or '?'}"
          f" (store: {args.store or 'memory'})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


def cmd_publish(args) -> int:
    from repro.serve import ServeClient, ServeError
    client = ServeClient.for_url(args.url, tenant=args.tenant)
    try:
        if args.file.endswith((".stsa", ".bin")):
            entry = client.publish(args.name,
                                   wire=Path(args.file).read_bytes())
        else:
            entry = client.publish(args.name,
                                   source=Path(args.file).read_text(),
                                   optimize=args.optimize,
                                   wire_v2=args.wire_v2)
    except ServeError as error:
        print(f"REJECTED: {error}", file=sys.stderr)
        return 1
    manifest = entry["entry"]["manifest"]
    print(f"published {args.name}: seq {entry['seq']}, "
          f"{manifest['size']} bytes ({manifest['format']})")
    print(f"digest {entry['digest']}")
    print(f"head   {entry['head']}")
    return 0


def cmd_fetch(args) -> int:
    from repro.interp.interpreter import Interpreter
    from repro.loader import load_module
    from repro.serve import ServeClient, ServeError
    client = ServeClient.for_url(args.url, tenant=args.tenant)
    try:
        wire = client.fetch(args.digest)  # digest re-verified locally
    except ServeError as error:
        print(f"REJECTED: {error}", file=sys.stderr)
        return 1
    if args.output:
        Path(args.output).write_bytes(wire)
        print(f"{args.output}: {len(wire)} bytes "
              f"(digest verified)")
    if args.run:
        result = Interpreter(load_module(wire)).run_main(
            getattr(args, "class"))
        sys.stdout.write(result.stdout)
        if result.exception is not None:
            print(f"Exception in thread \"main\" "
                  f"{result.exception_name()}", file=sys.stderr)
            return 1
    elif not args.output:
        sys.stdout.buffer.write(wire)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cc",
        description="SafeTSA mobile-code toolchain (PLDI 2001 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="Java source -> .stsa wire file")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.add_argument("--optimize", action="store_true")
    p.add_argument("--passes", default=None, metavar="SPEC",
                   help="explicit pipeline spec, e.g. "
                        "'constprop,cse_fields,dce' ('' disables all "
                        "passes); overrides --optimize")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="optimize functions across N threads "
                        "(0 = one per CPU); output is identical to a "
                        "serial compile")
    p.add_argument("--no-prune", action="store_true",
                   help="keep eagerly inserted phis")
    p.add_argument("--report", action="store_true",
                   help="print the per-pass timing/statistics report")
    p.add_argument("--wire-v2", action="store_true",
                   help="emit a wire-format v2 distribution envelope "
                        "instead of the raw v1 stream")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("run", help="execute a program's static main")
    p.add_argument("file")
    p.add_argument("--class", default=None,
                   help="class whose main to run")
    p.add_argument("--optimize", action="store_true")
    p.add_argument("--max-steps", type=int, default=200_000_000)
    p.add_argument("--lazy", action="store_true",
                   help="decode .stsa function bodies on first touch")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="decode .stsa bodies across N threads on warm "
                        "loads (0 = one per CPU); for .java inputs, "
                        "optimize across N threads")
    p.add_argument("--stream", action="store_true",
                   help="read the wire from stdin in chunks through "
                        "the incremental streaming loader (FILE must "
                        "be '-')")
    p.add_argument("--chunk-size", type=int, default=4096, metavar="N",
                   help="stdin read granularity for --stream")
    p.add_argument("--trace", nargs="?", const=-1, type=int,
                   default=None, metavar="N",
                   help="enable the speculative trace tier; optional N "
                        "sets the hot-loop threshold (back-edge count "
                        "before recording)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("disasm", help="print SafeTSA disassembly")
    p.add_argument("file")
    p.add_argument("--optimize", action="store_true")
    p.add_argument("--lr", action="store_true",
                   help="use the paper's (l-r) register notation")
    p.set_defaults(fn=cmd_disasm)

    p = sub.add_parser("verify", help="decode + verify a .stsa file")
    p.add_argument("file")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser(
        "lint", help="verifier + analysis lint with structured diagnostics")
    p.add_argument("file")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report")
    p.add_argument("--optimize", action="store_true",
                   help="lint the optimized module")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("stats", help="Figure 5/6 metrics for one source")
    p.add_argument("file")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("bench", help="regenerate a paper table")
    p.add_argument("table", choices=["figure5", "figure6", "pruning",
                                     "ablation", "verifycost",
                                     "jitspeed", "codec", "analysis",
                                     "pipeline", "fuzz", "load", "wire",
                                     "serve", "all"])
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "fuzz", help="differential + wire-mutation fuzzing campaign")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (same seed => same campaign)")
    p.add_argument("--budget", type=int, default=1000,
                   help="iterations: programs generated / mutants tried")
    p.add_argument("--mode", default="all",
                   choices=["programs", "streams", "streams-v2", "all"],
                   help="differential oracle over generated programs, "
                        "wire-stream mutation (v1 or v2 envelope lane), "
                        "or everything")
    p.add_argument("--fixtures", default=None, metavar="DIR",
                   help="persist shrunken findings as regression "
                        "fixtures under DIR")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the machine-readable report")
    p.add_argument("--no-minimize", action="store_true",
                   help="skip delta-debugging shrinks of findings")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="suppress progress lines")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "serve", help="start the mobile-code distribution service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8737)
    p.add_argument("--store", default=None, metavar="DIR",
                   help="persist modules + publish log under DIR "
                        "(default: memory only)")
    p.add_argument("--key", default=None, metavar="HEX",
                   help="publisher signing key (hex); default is the "
                        "well-known development key")
    p.add_argument("--no-limits", action="store_true",
                   help="disable per-tenant quotas")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "publish", help="compile/upload a module to a serve instance")
    p.add_argument("file", help=".java source or pre-built .stsa wire")
    p.add_argument("--name", required=True,
                   help="module name recorded in the signed manifest")
    p.add_argument("--url", required=True,
                   help="serve instance, e.g. http://127.0.0.1:8737")
    p.add_argument("--tenant", default="cli")
    p.add_argument("--optimize", action="store_true")
    p.add_argument("--wire-v2", action="store_true",
                   help="publish as a wire-format v2 envelope")
    p.set_defaults(fn=cmd_publish)

    p = sub.add_parser(
        "fetch", help="download (and optionally run) a published module")
    p.add_argument("digest", help="content address from publish")
    p.add_argument("--url", required=True)
    p.add_argument("--tenant", default="cli")
    p.add_argument("-o", "--output", default=None,
                   help="write the verified wire bytes to FILE "
                        "(default: stdout)")
    p.add_argument("--run", action="store_true",
                   help="load and execute the fetched module")
    p.add_argument("--class", default=None,
                   help="class whose main to run with --run")
    p.set_defaults(fn=cmd_fetch)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
