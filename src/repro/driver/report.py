"""Structured per-function pass reports.

A :class:`PassReport` records, for one function, every pass that ran:
its name, wall-clock seconds, and the statistics dictionary the pass
returned.  The merged view reproduces the flat statistics dictionary
the legacy ``optimize_function`` returned, with one deliberate fix:
**boolean values overwrite, integer counters accumulate**.  The old
``_merge_stats`` summed booleans into int counters (``isinstance(True,
int)`` is true in Python), so two passes both reporting ``flag: True``
yielded the nonsense counter ``2``.

Report equality ignores wall-clock seconds: two sessions are considered
to have produced *identical* reports when every pass reports the same
statistics for the same function -- the determinism contract the
parallel fan-out is tested against.
"""

from __future__ import annotations


def merge_stats(stats: dict, update: dict) -> None:
    """Merge ``update`` into ``stats`` in place.

    Integer counters accumulate; booleans (and any non-int values)
    overwrite -- a ``bool`` is an ``int`` in Python, so the check must
    be explicit on both sides.
    """
    for key, value in update.items():
        if key in stats \
                and isinstance(value, int) \
                and not isinstance(value, bool) \
                and isinstance(stats[key], int) \
                and not isinstance(stats[key], bool):
            stats[key] += value
        else:
            stats[key] = value


class PassReport:
    """What the pass pipeline did to one function."""

    def __init__(self, function: str):
        self.function = function
        #: [{"pass": name, "seconds": float, "stats": dict}] in run order
        self.passes: list[dict] = []

    def record(self, name: str, stats: dict, seconds: float) -> None:
        self.passes.append({"pass": name, "seconds": seconds,
                            "stats": dict(stats)})

    # -- views ----------------------------------------------------------

    @property
    def stats(self) -> dict:
        """Merged statistics across all passes (no timing)."""
        merged: dict = {}
        for entry in self.passes:
            merge_stats(merged, entry["stats"])
        return merged

    @property
    def seconds(self) -> dict:
        """pass name -> wall-clock seconds (summed on repeats)."""
        out: dict[str, float] = {}
        for entry in self.passes:
            out[entry["pass"]] = out.get(entry["pass"], 0.0) \
                + entry["seconds"]
        return out

    @property
    def total_seconds(self) -> float:
        return sum(entry["seconds"] for entry in self.passes)

    def legacy_stats(self) -> dict:
        """The flat dict the pre-driver ``optimize_function`` returned."""
        merged = {"function": self.function}
        for entry in self.passes:
            merge_stats(merged, entry["stats"])
        return merged

    def as_dict(self, *, seconds: bool = True) -> dict:
        """JSON-shaped view; ``seconds=False`` gives the deterministic
        part only (what parallel-vs-serial comparisons use)."""
        entries = [
            {"pass": e["pass"], "stats": dict(e["stats"]),
             **({"seconds": round(e["seconds"], 6)} if seconds else {})}
            for e in self.passes]
        return {"function": self.function, "passes": entries}

    # -- equality: deterministic content only ---------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PassReport):
            return NotImplemented
        return self.as_dict(seconds=False) == other.as_dict(seconds=False)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:  # pragma: no cover
        names = ",".join(e["pass"] for e in self.passes)
        return f"<PassReport {self.function}: [{names}]>"
