// Stand-in for sun.math.BigInteger: arbitrary-precision unsigned
// arithmetic over int[] limbs (base 10000 for printable decimals).
// Dense array indexing: the paper's null-check and array-check
// elimination shows up here.
class BigInt {
    int[] limbs;   // little-endian, base 10000
    int length;

    BigInt(int value) {
        limbs = new int[4];
        length = 0;
        while (value > 0) {
            ensure(length + 1);
            limbs[length] = value % 10000;
            value = value / 10000;
            length = length + 1;
        }
    }

    BigInt(int[] limbs, int length) {
        this.limbs = limbs;
        this.length = length;
    }

    void ensure(int capacity) {
        if (capacity <= limbs.length) return;
        int newCapacity = limbs.length * 2;
        if (newCapacity < capacity) newCapacity = capacity;
        int[] grown = new int[newCapacity];
        for (int i = 0; i < length; i++) {
            grown[i] = limbs[i];
        }
        limbs = grown;
    }

    boolean isZero() {
        return length == 0;
    }

    static BigInt add(BigInt a, BigInt b) {
        int n = a.length;
        if (b.length > n) n = b.length;
        int[] out = new int[n + 1];
        int carry = 0;
        for (int i = 0; i < n; i++) {
            int sum = carry;
            if (i < a.length) sum = sum + a.limbs[i];
            if (i < b.length) sum = sum + b.limbs[i];
            out[i] = sum % 10000;
            carry = sum / 10000;
        }
        int outLength = n;
        if (carry > 0) {
            out[n] = carry;
            outLength = n + 1;
        }
        return new BigInt(out, outLength);
    }

    // a - b, requires a >= b
    static BigInt sub(BigInt a, BigInt b) {
        int[] out = new int[a.length];
        int borrow = 0;
        for (int i = 0; i < a.length; i++) {
            int diff = a.limbs[i] - borrow;
            if (i < b.length) diff = diff - b.limbs[i];
            if (diff < 0) {
                diff = diff + 10000;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out[i] = diff;
        }
        int outLength = a.length;
        while (outLength > 0 && out[outLength - 1] == 0) {
            outLength = outLength - 1;
        }
        return new BigInt(out, outLength);
    }

    static BigInt mul(BigInt a, BigInt b) {
        if (a.isZero() || b.isZero()) return new BigInt(0);
        int[] out = new int[a.length + b.length];
        for (int i = 0; i < a.length; i++) {
            int carry = 0;
            int limb = a.limbs[i];
            for (int j = 0; j < b.length; j++) {
                int cell = out[i + j] + limb * b.limbs[j] + carry;
                out[i + j] = cell % 10000;
                carry = cell / 10000;
            }
            int k = i + b.length;
            while (carry > 0) {
                int cell = out[k] + carry;
                out[k] = cell % 10000;
                carry = cell / 10000;
                k = k + 1;
            }
        }
        int outLength = out.length;
        while (outLength > 0 && out[outLength - 1] == 0) {
            outLength = outLength - 1;
        }
        return new BigInt(out, outLength);
    }

    static int compare(BigInt a, BigInt b) {
        if (a.length != b.length) {
            return a.length < b.length ? -1 : 1;
        }
        for (int i = a.length - 1; i >= 0; i--) {
            if (a.limbs[i] != b.limbs[i]) {
                return a.limbs[i] < b.limbs[i] ? -1 : 1;
            }
        }
        return 0;
    }

    // divide by a small int in place; returns the remainder
    int divSmall(int divisor) {
        int remainder = 0;
        for (int i = length - 1; i >= 0; i--) {
            int cell = remainder * 10000 + limbs[i];
            limbs[i] = cell / divisor;
            remainder = cell % divisor;
        }
        while (length > 0 && limbs[length - 1] == 0) {
            length = length - 1;
        }
        return remainder;
    }

    BigInt copy() {
        int[] out = new int[length > 0 ? length : 1];
        for (int i = 0; i < length; i++) {
            out[i] = limbs[i];
        }
        return new BigInt(out, length);
    }

    String toDecimalString() {
        if (isZero()) return "0";
        String out = "";
        for (int i = 0; i < length; i++) {
            int limb = limbs[i];
            if (i == length - 1) {
                out = "" + limb + out;
            } else {
                String chunk = "" + (limb + 10000);
                out = chunk.substring(1, 5) + out;
            }
        }
        return out;
    }

    static BigInt factorial(int n) {
        BigInt acc = new BigInt(1);
        for (int i = 2; i <= n; i++) {
            acc = mul(acc, new BigInt(i));
        }
        return acc;
    }

    static BigInt fib(int n) {
        BigInt a = new BigInt(0);
        BigInt b = new BigInt(1);
        for (int i = 0; i < n; i++) {
            BigInt next = add(a, b);
            a = b;
            b = next;
        }
        return a;
    }

    static void main() {
        BigInt f20 = factorial(20);
        System.out.println("20! = " + f20.toDecimalString());
        BigInt f25 = factorial(25);
        System.out.println("25! = " + f25.toDecimalString());
        System.out.println("fib(100) = " + fib(100).toDecimalString());

        BigInt x = factorial(15);
        BigInt y = mul(x, new BigInt(1000));
        BigInt z = sub(y, x);
        System.out.println("cmp = " + compare(z, y) + " " + compare(y, z)
                           + " " + compare(y, y));

        BigInt w = f20.copy();
        int digitSum = 0;
        while (!w.isZero()) {
            digitSum = digitSum + w.divSmall(10);
        }
        System.out.println("digitsum(20!) = " + digitSum);
    }
}
