"""Unit tests for the recursive-descent parser."""

import pytest

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.frontend.parser import parse_compilation_unit


def parse_expr(text: str) -> ast.Expr:
    unit = parse_compilation_unit(
        f"class T {{ static void f() {{ int z; z = {text}; }} }}")
    stmt = unit.classes[0].members[0].body.stmts[1]
    return stmt.expr.value


def parse_stmts(body: str):
    unit = parse_compilation_unit(f"class T {{ static void f() {{ {body} }} }}")
    return unit.classes[0].members[0].body.stmts


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-" and isinstance(expr.left, ast.Binary)
        assert expr.left.op == "-"

    def test_shift_binds_looser_than_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "+"

    def test_bitand_vs_equality(self):
        expr = parse_expr("a == b & c == d")
        assert expr.op == "&"

    def test_logical_or_lowest(self):
        expr = parse_expr("a && b || c && d")
        assert expr.op == "||"

    def test_ternary_right_associates(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.else_expr, ast.Ternary)

    def test_assignment_right_associates(self):
        stmts = parse_stmts("int a; int b; a = b = 1;")
        inner = stmts[2].expr
        assert isinstance(inner, ast.Assign)
        assert isinstance(inner.value, ast.Assign)

    def test_unary_minus_folds_int_min(self):
        expr = parse_expr("-2147483648")
        assert isinstance(expr, ast.Literal) and expr.value == -(2**31)

    def test_instanceof_in_comparison_position(self):
        expr = parse_expr("x instanceof String == true")
        assert isinstance(expr, ast.Binary) and expr.op == "=="
        assert isinstance(expr.left, ast.InstanceOf)

    def test_postfix_chain(self):
        expr = parse_expr("a.b.c[1].d(2)")
        assert isinstance(expr, ast.Call) and expr.name == "d"
        target = expr.target
        assert isinstance(target, ast.ArrayAccess)


class TestCastDisambiguation:
    def test_primitive_cast(self):
        expr = parse_expr("(int) x")
        assert isinstance(expr, ast.Cast)

    def test_reference_cast_before_ident(self):
        expr = parse_expr("(Foo) x")
        assert isinstance(expr, ast.Cast)

    def test_parenthesised_expression_plus(self):
        expr = parse_expr("(a) + b")
        assert isinstance(expr, ast.Binary) and expr.op == "+"

    def test_array_cast_always_cast(self):
        expr = parse_expr("(int[]) x")
        assert isinstance(expr, ast.Cast)
        assert isinstance(expr.type_ref, ast.ArrayTypeRef)

    def test_cast_of_parenthesised_cast(self):
        expr = parse_expr("((Foo) x).y")
        assert isinstance(expr, ast.FieldAccess)
        assert isinstance(expr.target, ast.Cast)

    def test_cast_before_call(self):
        expr = parse_expr("(Foo) f()")
        assert isinstance(expr, ast.Cast)
        assert isinstance(expr.operand, ast.Call)


class TestStatements:
    def test_local_declaration_multiple(self):
        stmts = parse_stmts("int a = 1, b, c = 3;")
        assert isinstance(stmts[0], ast.LocalVarDecl)
        assert len(stmts[0].declarators) == 3

    def test_if_else_binds_to_nearest(self):
        stmts = parse_stmts("if (a) if (b) x(); else y();")
        outer = stmts[0]
        assert outer.else_stmt is None
        assert outer.then_stmt.else_stmt is not None

    def test_for_with_decl_init(self):
        stmts = parse_stmts("for (int i = 0; i < 3; i++) ;")
        loop = stmts[0]
        assert isinstance(loop, ast.ForStmt)
        assert isinstance(loop.init[0], ast.LocalVarDecl)
        assert len(loop.update) == 1

    def test_for_all_parts_empty(self):
        loop = parse_stmts("for (;;) break;")[0]
        assert loop.init == [] and loop.cond is None and loop.update == []

    def test_labeled_loop(self):
        stmt = parse_stmts("outer: while (true) break outer;")[0]
        assert isinstance(stmt, ast.LabeledStmt) and stmt.label == "outer"
        inner = stmt.stmt.body
        assert isinstance(inner, ast.BreakStmt) and inner.label == "outer"

    def test_try_catch_finally(self):
        stmt = parse_stmts(
            "try { x(); } catch (E1 a) { } catch (E2 b) { } finally { }")[0]
        assert isinstance(stmt, ast.TryStmt)
        assert len(stmt.catches) == 2
        assert stmt.finally_block is not None

    def test_try_alone_rejected(self):
        with pytest.raises(CompileError):
            parse_stmts("try { }")

    def test_switch_cases(self):
        stmt = parse_stmts(
            "switch (x) { case 1: case 2: f(); break; default: g(); }")[0]
        assert isinstance(stmt, ast.SwitchStmt)
        assert len(stmt.cases) == 2
        assert len(stmt.cases[0].labels) == 2
        assert stmt.cases[1].is_default

    def test_throw(self):
        stmt = parse_stmts("throw new E();")[0]
        assert isinstance(stmt, ast.ThrowStmt)

    def test_do_while(self):
        stmt = parse_stmts("do { f(); } while (x < 3);")[0]
        assert isinstance(stmt, ast.DoWhileStmt)


class TestDeclarations:
    def test_class_with_extends(self):
        unit = parse_compilation_unit("class A extends B { }")
        assert unit.classes[0].super_name == "B"

    def test_constructor_detected(self):
        unit = parse_compilation_unit("class A { A(int x) { } }")
        ctor = unit.classes[0].members[0]
        assert ctor.is_constructor and ctor.name == "<init>"

    def test_method_with_throws(self):
        unit = parse_compilation_unit(
            "class A { void f() throws E1, E2 { } }")
        assert unit.classes[0].members[0].throws == ["E1", "E2"]

    def test_field_with_initializer(self):
        unit = parse_compilation_unit("class A { static int x = 5; }")
        field = unit.classes[0].members[0]
        assert isinstance(field, ast.FieldDecl) and field.is_static

    def test_array_return_type(self):
        unit = parse_compilation_unit("class A { int[][] f() { } }")
        ref = unit.classes[0].members[0].return_ref
        assert isinstance(ref, ast.ArrayTypeRef)
        assert isinstance(ref.element, ast.ArrayTypeRef)

    def test_package_and_imports_accepted(self):
        unit = parse_compilation_unit(
            "package com.example; import java.util.*; class A { }")
        assert unit.package == "com.example"

    def test_missing_brace_rejected(self):
        with pytest.raises(CompileError):
            parse_compilation_unit("class A { void f() { ")

    def test_new_array_with_dims(self):
        expr = parse_expr("new int[3][4]")
        assert isinstance(expr, ast.NewArray)
        assert len(expr.dims) == 2 and expr.extra_dims == 0

    def test_new_array_extra_dims(self):
        expr = parse_expr("new int[3][]")
        assert len(expr.dims) == 1 and expr.extra_dims == 1

    def test_sized_dim_after_empty_rejected(self):
        with pytest.raises(CompileError):
            parse_expr("new int[3][][4]")
