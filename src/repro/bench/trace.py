"""Trace-tier benchmark (E14): what speculative traces buy on loops.

For each loop-heavy corpus program the report times one ``main`` run
under the plain block-plan interpreter against the same run under
:class:`~repro.interp.trace.TracingInterpreter` with a warm
:class:`~repro.cache.TraceCache` -- the serve scenario the cache
exists for (record once, reuse across requests).  Short programs are
repeated enough times to amortise per-process fixed costs; every
traced run must match the untraced run on stdout, exception identity,
``steps``, *and* dynamic check counts (bit-identical fallback is an
assertion here, not a statistic).

Three further measurements keep the headline honest:

* **abort path**: an adversarial program whose hot loop branches on a
  linear-congruential bit -- no short block cycle exists, so recorded
  traces guard-abort until the header blacklists.  The report measures
  the all-overhead-no-benefit ratio and asserts the blacklist bound
  keeps it small.
* **dispatch micro-opt**: the block-plan interpreter against a legacy
  per-instruction ``getattr``-dispatch loop, so the trace speedup is
  measured against the *faster* baseline, not a strawman.
* **per-program stats**: compiled/preloaded/blacklisted trace counts,
  entries and committed trips, so a speedup (or its absence -- MiniVM's
  opcode cycle exceeds the trace length budget and correctly
  blacklists) is attributable.

Perf guards: geomean speedup >= 1.25 (full) / > 1.0 (smoke), the abort
program's overhead bounded, and blacklisting actually engaged on the
abort program.  Any parity mismatch raises immediately.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from repro.bench.corpus import corpus_source
from repro.bench.loops import LOOP_PROGRAMS
from repro.cache import TraceCache
from repro.interp.interpreter import (
    Interpreter,
    InterpreterError,
    JavaError,
    StepLimitExceeded,
)
from repro.interp.trace import TracingInterpreter
from repro.loader import load_module
from repro.pipeline import compile_to_module

_MAX_STEPS = 80_000_000

#: repetitions per program: short runs are repeated so fixed costs
#: (module walk, plan building, trace preload) amortise the way they
#: do in a warm serving process
_REPS = {"Linpack": 1, "BitSieve": 1, "MiniVM": 20}

#: hot loop with a branch driven by a linear congruential generator:
#: there is no short repeating block cycle, so every recorded trace
#: guard-aborts until the header blacklists -- the pure-overhead case
ABORT_SOURCE = """\
class AbortStorm {
    static int storm(int rounds) {
        int x = 12345;
        int acc = 0;
        for (int i = 0; i < rounds; i++) {
            x = x * 1103515245 + 12345;
            if (((x >> 16) & 1) != 0) {
                acc = acc + i;
            } else {
                acc = acc - 1;
            }
        }
        return acc;
    }

    public static void main(String[] args) {
        System.out.println(storm(60000));
    }
}
"""


class _LegacyInterpreter(Interpreter):
    """The pre-block-plan execution loop: per-instruction ``getattr``
    dispatch, per-transfer successor list comprehensions.  Kept only as
    the micro-opt baseline so BENCH_trace.json records what prebound
    block plans are worth on their own."""

    def call(self, function, args: list):
        from repro.ssa import ir
        frame: dict[int, object] = {}
        for param in function.params:
            frame[param.id] = args[param.index]
        block = function.entry
        came_from = None
        exception = None
        while True:
            self.steps += 1
            if self.steps > self.max_steps:
                raise StepLimitExceeded(
                    f"exceeded {self.max_steps} steps in {function.name}")
            if block.phis:
                edge = self._edge_index(block, came_from)
                values = [frame[phi.operands[edge].id]
                          for phi in block.phis]
                for phi, value in zip(block.phis, values):
                    frame[phi.id] = value
            trapped = False
            for instr in block.instrs:
                if isinstance(instr, ir.CaughtExc):
                    frame[instr.id] = exception
                    continue
                try:
                    result = self._execute(instr, frame)
                except JavaError as error:
                    target = self._exc_edge_target(block)
                    if target is None:
                        raise
                    exception = error.value
                    came_from = (block, "exc")
                    block = target
                    trapped = True
                    break
                if instr.plane is not None:
                    frame[instr.id] = result
            if trapped:
                continue
            term = block.term
            if term is None:
                raise InterpreterError(
                    f"block B{block.id} has no terminator")
            if term.kind == "return":
                return frame[term.value.id] \
                    if term.value is not None else None
            if term.kind == "throw":
                target = self._exc_edge_target(block)
                if target is None:
                    raise JavaError(frame[term.value.id])
                exception = frame[term.value.id]
                came_from = (block, "exc")
                block = target
                continue
            if term.kind == "unreachable":
                raise InterpreterError(
                    f"reached unreachable terminator in {function.name}")
            if term.kind == "branch":
                taken = bool(frame[term.value.id])
                normal = [s for s, kind in block.succs if kind == "norm"]
                next_block = normal[0] if taken else normal[1]
            else:  # fall / break / continue
                normal = [s for s, kind in block.succs if kind == "norm"]
                if len(normal) != 1:
                    raise InterpreterError(
                        f"B{block.id} ({term.kind}) has {len(normal)} "
                        "normal successors")
                next_block = normal[0]
            came_from = (block, "norm")
            block = next_block


def _observe(interp, name: Optional[str]):
    result = interp.run_main(name)
    return (result.stdout, result.exception_name(), interp.steps,
            dict(interp.check_counts))


def _digest_module(source: str):
    """Compile and round-trip through the wire so the module carries a
    ``wire_digest`` -- the trace cache key (matching the serve path)."""
    from repro.encode.serializer import encode_module
    wire = encode_module(compile_to_module(source))
    return load_module(wire, cache=False)


def _measure_pair(module, name: Optional[str], reps: int,
                  threshold: Optional[int] = None):
    """(untraced seconds, traced seconds, stats) over ``reps`` runs of
    one module, asserting bit-identical observables each run.  The
    trace cache is shared across the traced runs: the first records,
    the rest preload -- the warm serving scenario."""
    kwargs = {} if threshold is None else {"threshold": threshold}
    started = time.perf_counter()
    for _ in range(reps):
        untraced = Interpreter(module, max_steps=_MAX_STEPS)
        expected = _observe(untraced, name)
    untraced_s = time.perf_counter() - started
    cache = TraceCache()
    cold_stats = None
    started = time.perf_counter()
    for _ in range(reps):
        traced = TracingInterpreter(module, max_steps=_MAX_STEPS,
                                    trace_cache=cache, **kwargs)
        observed = _observe(traced, name)
        assert observed == expected, (
            f"trace parity violation on {name}: "
            f"{observed[:2]} != {expected[:2]} or accounting differs")
        if cold_stats is None:
            # the first run records/compiles/blacklists; later runs
            # preload its verdicts from the shared cache
            cold_stats = traced.trace_stats()
    traced_s = time.perf_counter() - started
    return untraced_s, traced_s, cold_stats, traced.trace_stats()


def _measure_dispatch(module, name: Optional[str], reps: int):
    """(legacy seconds, plan seconds): the interpreter micro-opt's own
    contribution, measured on the same module and rep count."""
    started = time.perf_counter()
    for _ in range(reps):
        legacy = _LegacyInterpreter(module, max_steps=_MAX_STEPS)
        expected = _observe(legacy, name)
    legacy_s = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(reps):
        plan = Interpreter(module, max_steps=_MAX_STEPS)
        observed = _observe(plan, name)
        assert observed == expected, \
            f"block-plan dispatch diverged from legacy loop on {name}"
    plan_s = time.perf_counter() - started
    return legacy_s, plan_s


def trace_report(programs=None, *, reps=None,
                 dispatch_program: str = "MiniVM",
                 dispatch_reps: int = 10,
                 abort_reps: int = 3) -> dict:
    programs = tuple(programs) if programs is not None else LOOP_PROGRAMS
    per_program: dict[str, dict] = {}
    speedups = []
    for name in programs:
        module = _digest_module(corpus_source(name))
        count = (reps or _REPS).get(name, 1)
        untraced_s, traced_s, cold, warm = _measure_pair(
            module, name, count)
        speedup = untraced_s / traced_s if traced_s else 0.0
        speedups.append(speedup)
        per_program[name] = {
            "reps": count,
            "untraced_s": round(untraced_s, 4),
            "traced_s": round(traced_s, 4),
            "speedup": round(speedup, 4),
            "cold_stats": cold,
            "warm_stats": warm,
        }
    geomean = math.exp(sum(math.log(s) for s in speedups)
                       / len(speedups)) if speedups else 0.0

    # the abort path: pure overhead, bounded by blacklisting
    abort_module = _digest_module(ABORT_SOURCE)
    abort_untraced, abort_traced, abort_stats, abort_warm = \
        _measure_pair(abort_module, "AbortStorm", abort_reps,
                      threshold=8)
    abort_overhead = (abort_traced / abort_untraced
                      if abort_untraced else 0.0)

    # the interpreter micro-opt note: legacy getattr dispatch vs plans
    dispatch_module = _digest_module(corpus_source(dispatch_program))
    legacy_s, plan_s = _measure_dispatch(dispatch_module,
                                         dispatch_program,
                                         dispatch_reps)

    return {
        "max_steps": _MAX_STEPS,
        "programs": per_program,
        "geomean_speedup": round(geomean, 4),
        "abort": {
            "program": "AbortStorm",
            "reps": abort_reps,
            "untraced_s": round(abort_untraced, 4),
            "traced_s": round(abort_traced, 4),
            "overhead": round(abort_overhead, 4),
            "cold_stats": abort_stats,
            "warm_stats": abort_warm,
        },
        "dispatch_microopt": {
            "program": dispatch_program,
            "reps": dispatch_reps,
            "legacy_getattr_s": round(legacy_s, 4),
            "block_plan_s": round(plan_s, 4),
            "speedup": round(legacy_s / plan_s, 4) if plan_s else 0.0,
        },
        "guard": {
            # the acceptance bar for the full corpus; smoke asks only
            # for strictly-better-than-even (fewer reps, noisier box)
            "geomean_speedup": round(geomean, 4),
            "abort_overhead": round(abort_overhead, 4),
            "abort_blacklisted": abort_stats["blacklisted"] >= 1,
            "abort_entries": abort_stats["entries"],
            "parity": True,  # asserted per run; reaching here means OK
        },
    }


def trace_table(report: dict) -> str:
    lines = [
        f"{'program':<12} {'reps':>4} {'untraced':>10} {'traced':>10} "
        f"{'speedup':>8}  traces (live/bl)  entries  trips",
    ]
    for name, row in report["programs"].items():
        cold, warm = row["cold_stats"], row["warm_stats"]
        lines.append(
            f"{name:<12} {row['reps']:>4} {row['untraced_s']:>9.3f}s "
            f"{row['traced_s']:>9.3f}s {row['speedup']:>7.2f}x  "
            f"{cold['compiled']:>6}/{cold['blacklisted']:<9} "
            f"{warm['entries']:>7}  {warm['trips']}")
    lines.append(f"{'geomean':<12} {'':>4} {'':>10} {'':>10} "
                 f"{report['geomean_speedup']:>7.2f}x")
    abort = report["abort"]
    lines.append("")
    lines.append(
        f"abort path   {abort['reps']:>4} {abort['untraced_s']:>9.3f}s "
        f"{abort['traced_s']:>9.3f}s {abort['overhead']:>7.2f}x  "
        f"overhead (blacklisted={abort['cold_stats']['blacklisted']}, "
        f"entries={abort['cold_stats']['entries']})")
    micro = report["dispatch_microopt"]
    lines.append(
        f"dispatch     {micro['reps']:>4} "
        f"{micro['legacy_getattr_s']:>9.3f}s "
        f"{micro['block_plan_s']:>9.3f}s {micro['speedup']:>7.2f}x  "
        f"legacy getattr loop vs block plans ({micro['program']})")
    return "\n".join(lines)
