"""The fused verifying loader (``repro.loader``).

The acceptance contract: the fused single-pass loader rejects exactly
the streams the legacy two-pass consumer (``decode_module`` +
``verify_module``) rejects, with the same stable code modulo the
documented ``DEC-*`` <-> ``STSA-*`` aliasing -- over the benchmark
corpus, the attack-fixture corpus, and a seeded stream-mutation
campaign.  Honest streams must come back bit-identical under every
load path (cold, warm, warm-parallel, lazy cold, lazy warm).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis.diagnostics import STABLE_CODES, codes_equivalent
from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.cache import VerifiedModuleCache
from repro.encode.deserializer import DecodeError, decode_module
from repro.encode.serializer import encode_module
from repro.fuzz.gen import RandomSource
from repro.fuzz.mutate import mutate_stream
from repro.loader import ModuleLoader, load_module
from repro.loader.lazy import LazyFunctions
from repro.pipeline import compile_to_module
from repro.tsa.verifier import VerifyError, verify_module

ATTACKS_DIR = Path(__file__).parent / "golden" / "attacks"

# ======================================================================
# artifacts


def _encode(source: str, optimize: bool) -> bytes:
    return encode_module(compile_to_module(source, optimize=optimize))


@pytest.fixture(scope="module")
def corpus_wires():
    """The 20 benchmark artifacts: every corpus program, unoptimised
    and optimised."""
    wires = {}
    for name in CORPUS_PROGRAMS:
        source = corpus_source(name)
        for optimize in (False, True):
            wires[(name, optimize)] = _encode(source, optimize)
    return wires


_MUTATION_BASES = (
    "class A { static int f(int a, int b) { return a / b + a % b; } }",
    "class B { static int f(int n) { int[] xs = new int[n];"
    "  int s = 0; try { for (int i = 0; i <= n; i = i + 1)"
    "  { xs[i] = i; s = s + xs[i]; } } catch (Exception e)"
    "  { s = -s; } return s; } }",
    "class C { int v; int get() { return v; }"
    "  static int f(C c, boolean p) { int r;"
    "  if (p) { r = c.get(); } else { r = 7; } return r; } }",
)


@pytest.fixture(scope="module")
def mutation_wires():
    wires = []
    for source in _MUTATION_BASES:
        for optimize in (False, True):
            wires.append(_encode(source, optimize))
    return wires


# ======================================================================
# verdicts


def two_pass_verdict(data: bytes):
    """The reference oracle: decode, then verify."""
    try:
        module = decode_module(data)
    except DecodeError as error:
        return ("reject", error.code)
    try:
        verify_module(module)
    except VerifyError as error:
        return ("reject", error.code)
    return ("accept", None)


def fused_verdict(data: bytes, **kwargs):
    kwargs.setdefault("cache", False)
    try:
        module = load_module(data, **kwargs)
        if kwargs.get("lazy"):
            module.functions.materialize_all()
    except (DecodeError, VerifyError) as error:
        return ("reject", error.code)
    return ("accept", None)


def assert_same_rejection(reference, fused, context: str) -> None:
    assert reference[0] == fused[0], \
        f"{context}: two-pass {reference} vs fused {fused}"
    if reference[0] == "reject":
        assert codes_equivalent(reference[1], fused[1]), \
            f"{context}: code {reference[1]} vs {fused[1]}"


# ======================================================================
# differential gate: honest artifacts


class TestHonestArtifacts:
    def test_corpus_accepted_and_bit_identical(self, corpus_wires,
                                               tmp_path):
        """Every load path reproduces the two-pass module bit for bit,
        over all 20 corpus artifacts."""
        cache = VerifiedModuleCache(str(tmp_path))
        for (name, optimize), wire in corpus_wires.items():
            context = f"{name} optimize={optimize}"
            reference = encode_module(decode_module(wire))
            assert reference == wire, context  # round-trip sanity

            cold = ModuleLoader(wire, cache=cache)
            assert encode_module(cold.load()) == wire, context
            assert not cold.cache_hit and cold.verified, context

            warm = ModuleLoader(wire, cache=cache)
            assert encode_module(warm.load()) == wire, context
            assert warm.cache_hit and not warm.verified, context

            parallel = ModuleLoader(wire, cache=cache, jobs=4)
            assert encode_module(parallel.load()) == wire, context
            assert parallel.cache_hit, context

            lazy = load_module(wire, lazy=True, cache=cache)
            assert encode_module(lazy) == wire, context

            lazy_cold = load_module(wire, lazy=True, cache=False)
            assert encode_module(lazy_cold) == wire, context

    def test_corpus_verdicts_agree(self, corpus_wires):
        for (name, optimize), wire in corpus_wires.items():
            assert two_pass_verdict(wire) == ("accept", None)
            assert fused_verdict(wire) == ("accept", None)


# ======================================================================
# differential gate: attack fixtures


def _attack_fixtures():
    manifest = json.loads((ATTACKS_DIR / "manifest.json").read_text())
    return sorted(manifest)


class TestAttackFixtures:
    @pytest.mark.parametrize("fixture", _attack_fixtures())
    def test_fused_rejects_like_two_pass(self, fixture):
        data = (ATTACKS_DIR / f"{fixture}.bin").read_bytes()
        reference = two_pass_verdict(data)
        assert reference[0] == "reject"
        assert_same_rejection(reference, fused_verdict(data), fixture)

    @pytest.mark.parametrize("fixture", _attack_fixtures())
    def test_manifest_code_matches(self, fixture):
        manifest = json.loads((ATTACKS_DIR / "manifest.json").read_text())
        data = (ATTACKS_DIR / f"{fixture}.bin").read_bytes()
        verdict = fused_verdict(data)
        assert verdict[0] == "reject"
        assert codes_equivalent(verdict[1], manifest[fixture]["code"])

    @pytest.mark.parametrize("fixture", _attack_fixtures())
    def test_lazy_load_rejects(self, fixture):
        data = (ATTACKS_DIR / f"{fixture}.bin").read_bytes()
        assert fused_verdict(data, lazy=True)[0] == "reject"


# ======================================================================
# differential gate: seeded stream-mutation campaign


@pytest.mark.slow
class TestMutationCampaign:
    CAMPAIGN_SEED = 20010620  # PLDI 2001
    BUDGET = 1200

    def test_campaign_verdicts_agree(self, mutation_wires):
        """>= 1000 seeded mutants: the fused loader and the two-pass
        oracle accept/reject in lockstep with equivalent codes."""
        src = RandomSource(self.CAMPAIGN_SEED)
        per_base = self.BUDGET // len(mutation_wires)
        accepted = rejected = 0
        for base_index, base in enumerate(mutation_wires):
            for case in range(per_base):
                mutator, mutant = mutate_stream(base, src)
                context = f"base {base_index} case {case} ({mutator})"
                reference = two_pass_verdict(mutant)
                assert_same_rejection(reference, fused_verdict(mutant),
                                      context)
                if reference[0] == "accept":
                    accepted += 1
                    # a surviving mutant is an honest stream: it must
                    # still round-trip bit-identically through the loader
                    assert encode_module(
                        load_module(mutant, cache=False)) == mutant, \
                        context
                else:
                    rejected += 1
        assert accepted + rejected >= 1000
        assert rejected > 0

    def test_campaign_lazy_verdicts_agree(self, mutation_wires):
        """Lazy loads reject exactly the streams eager loads reject
        (the first-reported *code* may differ: residual rules fire per
        function at materialization, a documented ordering change)."""
        src = RandomSource(self.CAMPAIGN_SEED + 1)
        for base in mutation_wires:
            for _ in range(25):
                _, mutant = mutate_stream(base, src)
                eager = fused_verdict(mutant)
                lazy = fused_verdict(mutant, lazy=True)
                assert eager[0] == lazy[0]


# ======================================================================
# truncation: every prefix dies with a coded DecodeError


class TestTruncation:
    SOURCE = ("class T { static int f(int a, int b) { return a / b; }"
              "  static int g(int n) { int s = 0;"
              "  for (int i = 0; i < n; i = i + 1) { s = s + i; }"
              "  return s; } }")

    def test_every_byte_prefix_rejected_with_code(self):
        wire = _encode(self.SOURCE, optimize=False)
        for cut in range(len(wire)):
            with pytest.raises(DecodeError) as info:
                load_module(wire[:cut], cache=False)
            assert info.value.code in STABLE_CODES, f"cut at {cut}"

    def test_every_byte_prefix_rejected_lazily(self):
        """A truncated stream must never give the consumer a partial
        module: the lazy path raises a coded DecodeError no later than
        full materialization."""
        wire = _encode(self.SOURCE, optimize=False)
        for cut in range(len(wire)):
            with pytest.raises(DecodeError) as info:
                module = load_module(wire[:cut], lazy=True, cache=False)
                module.functions.materialize_all()
            assert info.value.code in STABLE_CODES, f"cut at {cut}"

    def test_section_boundary_cuts(self):
        """Cuts exactly at the header end and at every per-function
        body boundary (the places a malicious packager would split)."""
        wire = _encode(self.SOURCE, optimize=False)
        loader = ModuleLoader(wire, cache=False)
        loader.load()
        boundaries = loader.boundaries
        assert boundaries  # two bodies
        header_end = boundaries[0][0]
        for bits in [0, len(b"SafeTSA") * 8, header_end] + \
                [end for _, end in boundaries[:-1]]:
            cut = wire[:(bits + 7) // 8][:-1 if bits % 8 else None] \
                if bits else b""
            with pytest.raises(DecodeError) as info:
                load_module(cut, cache=False)
            assert info.value.code in STABLE_CODES, f"cut at bit {bits}"

    def test_truncation_mid_body_carries_location(self):
        wire = _encode(self.SOURCE, optimize=False)
        with pytest.raises(DecodeError) as info:
            load_module(wire[:-1], cache=False)
        error = info.value
        assert error.code in STABLE_CODES
        assert error.function is not None
        assert error.location()


# ======================================================================
# error context


class TestDecodeErrorContext:
    def test_context_fields_default_to_none(self):
        error = DecodeError("boom", "DEC-IO")
        assert (error.function, error.block, error.instr) == \
            (None, None, None)

    def test_attach_fills_only_unknowns(self):
        error = DecodeError("boom", "DEC-REF", function="T.f",
                            instr=3)
        error.attach(function="T.g", block=2, instr=9)
        assert error.function == "T.f"  # inner raise site wins
        assert error.block == 2
        assert error.instr == 3

    def test_message_format_is_stable(self):
        error = DecodeError("bad stream", "DEC-MALFORMED")
        assert str(error) == "bad stream [DEC-MALFORMED]"


# ======================================================================
# verified-module cache


class TestVerifiedModuleCache:
    def test_key_is_digest_of_wire(self):
        assert VerifiedModuleCache.key(b"abc") == \
            VerifiedModuleCache.key(b"abc")
        assert VerifiedModuleCache.key(b"abc") != \
            VerifiedModuleCache.key(b"abd")

    def test_put_get_roundtrip(self, tmp_path):
        cache = VerifiedModuleCache(str(tmp_path))
        key = VerifiedModuleCache.key(b"wire")
        assert cache.get(key) is None
        cache.put(key, [(64, 128), (128, 200)])
        assert cache.get(key) == [(64, 128), (128, 200)]
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_persists_across_instances(self, tmp_path):
        key = VerifiedModuleCache.key(b"wire")
        VerifiedModuleCache(str(tmp_path)).put(key, [(8, 9)])
        assert VerifiedModuleCache(str(tmp_path)).get(key) == [(8, 9)]

    def test_damaged_entry_is_a_miss(self, tmp_path):
        cache = VerifiedModuleCache(str(tmp_path))
        key = VerifiedModuleCache.key(b"wire")
        cache.put(key, [(8, 9)])
        path = next(Path(str(tmp_path)).glob("*.verified"))
        path.write_text("stsa1\n8 not-a-number\n")
        assert VerifiedModuleCache(str(tmp_path)).get(key) is None
        path.write_text("other-version\n8 9\n")
        assert VerifiedModuleCache(str(tmp_path)).get(key) is None

    def test_clear(self, tmp_path):
        cache = VerifiedModuleCache(str(tmp_path))
        key = VerifiedModuleCache.key(b"wire")
        cache.put(key, [(8, 9)])
        cache.clear()
        assert cache.get(key) is None


class TestCacheCorruptionSafety:
    """A stale or tampered cache entry may cost time, never soundness."""

    SOURCE = TestTruncation.SOURCE

    def test_implausible_boundaries_fall_back_cold(self, tmp_path):
        wire = _encode(self.SOURCE, optimize=False)
        cache = VerifiedModuleCache(str(tmp_path))
        cache.put(VerifiedModuleCache.key(wire), [(0, 1)])
        loader = ModuleLoader(wire, cache=cache)
        module = loader.load()
        assert not loader.cache_hit and loader.verified
        assert encode_module(module) == wire

    def test_shifted_boundaries_fall_back_cold(self, tmp_path):
        wire = _encode(self.SOURCE, optimize=False)
        honest = ModuleLoader(wire, cache=False)
        honest.load()
        lying = list(honest.boundaries)
        assert len(lying) >= 2
        (s0, e0), (_, e1) = lying[0], lying[1]
        # contiguous and in-stream (passes the shape check), but the
        # split point is wrong: body decode must disagree
        lying[0] = (s0, e0 + 8)
        lying[1] = (e0 + 8, e1)
        cache = VerifiedModuleCache(str(tmp_path))
        cache.put(VerifiedModuleCache.key(wire), lying)
        loader = ModuleLoader(wire, cache=cache)
        module = loader.load()
        assert not loader.cache_hit and loader.verified
        assert encode_module(module) == wire

    def test_lazy_load_survives_bad_cache_entry(self, tmp_path):
        wire = _encode(self.SOURCE, optimize=False)
        cache = VerifiedModuleCache(str(tmp_path))
        cache.put(VerifiedModuleCache.key(wire), [(0, 1)])
        module = load_module(wire, lazy=True, cache=cache)
        module.functions.materialize_all()
        assert encode_module(module) == wire

    def test_corrupt_version_byte_misses_and_rejects(self, tmp_path):
        """The cache key covers the wire format version, so a stream
        whose version byte was flipped can never reuse the honest
        entry's boundary index -- it misses, decodes cold, and dies on
        the magic check."""
        wire = _encode(self.SOURCE, optimize=False)
        cache = VerifiedModuleCache(str(tmp_path))
        load_module(wire, cache=cache)  # publish the honest index
        corrupt = bytes([wire[0] ^ 0xFF]) + wire[1:]
        assert VerifiedModuleCache.key(corrupt) != \
            VerifiedModuleCache.key(wire)
        with pytest.raises(DecodeError) as info:
            load_module(corrupt, cache=cache)
        assert info.value.code == "DEC-MAGIC"


# ======================================================================
# lazy loading


class TestLazyLoading:
    SOURCE = TestTruncation.SOURCE

    def test_header_available_without_body_decode(self):
        wire = _encode(self.SOURCE, optimize=False)
        module = load_module(wire, lazy=True, cache=False)
        functions = module.functions
        assert isinstance(functions, LazyFunctions)
        names = [method.name for method in functions]
        assert len(names) == len(functions)
        assert {"f", "g"} <= set(names)
        assert all(fn is None for fn in functions._state.decoded)

    def test_cold_touch_is_prefix_lazy(self, tmp_path):
        wire = _encode(self.SOURCE, optimize=False)
        cache = VerifiedModuleCache(str(tmp_path))
        loader = ModuleLoader(wire, lazy=True, cache=cache)
        module = loader.load()
        first = next(iter(module.functions))
        module.functions[first]
        state = module.functions._state
        assert state.decoded[0] is not None
        assert state.decoded[1] is None  # only the prefix decoded
        assert not loader.verified      # trailing check still pending
        last = list(module.functions)[-1]
        module.functions[last]
        assert loader.verified          # full stream consumed + checked
        # full materialization published the boundary index
        assert cache.get(VerifiedModuleCache.key(wire)) == \
            loader.boundaries

    def test_warm_touch_is_random_access(self, tmp_path):
        wire = _encode(self.SOURCE, optimize=False)
        cache = VerifiedModuleCache(str(tmp_path))
        load_module(wire, cache=cache)  # publish the index
        loader = ModuleLoader(wire, lazy=True, cache=cache)
        module = loader.load()
        assert loader.cache_hit
        last = list(module.functions)[-1]
        module.functions[last]
        state = module.functions._state
        assert state.decoded[-1] is not None
        assert state.decoded[0] is None  # earlier body untouched

    def test_failed_touch_poisons_later_touches(self):
        wire = _encode(self.SOURCE, optimize=False)
        module = load_module(wire[:-1], lazy=True, cache=False)
        methods = list(module.functions)
        with pytest.raises(DecodeError) as first:
            module.functions[methods[-1]]
        with pytest.raises(DecodeError) as second:
            module.functions[methods[-1]]
        assert second.value is first.value

    def test_lazy_module_runs(self):
        source = ("class Main { static int helper(int x) { return x * 3; }"
                  "  static void main() {"
                  "  System.out.println(helper(14)); } }")
        wire = _encode(source, optimize=True)
        from repro.interp.interpreter import Interpreter
        module = load_module(wire, lazy=True, cache=False)
        result = Interpreter(module).run_main()
        assert result.stdout == "42\n"


# ======================================================================
# parallel warm decode


class TestParallelDecode:
    def test_jobs_match_serial(self, corpus_wires, tmp_path):
        cache = VerifiedModuleCache(str(tmp_path))
        wire = corpus_wires[("BigInt", True)]
        load_module(wire, cache=cache)  # publish the index
        for jobs in (1, 2, 4, 0):
            loader = ModuleLoader(wire, cache=cache, jobs=jobs)
            module = loader.load()
            assert loader.cache_hit, f"jobs={jobs}"
            assert encode_module(module) == wire, f"jobs={jobs}"


# ======================================================================
# the unified code registry (raise-site scan)


SRC_ROOT = Path(__file__).parent.parent / "src" / "repro"
_CODE_LITERAL = re.compile(
    r'"((?:DEC|STSA|SERVE)-[A-Z]+(?:-[A-Z0-9]+)*)"')


class TestCodeRegistry:
    def test_every_raise_site_code_is_registered(self):
        """Any ``"DEC-…"``/``"STSA-…"`` string literal anywhere in the
        source tree must be in the unified registry -- an unregistered
        raise site fails here, in CI."""
        unregistered = {}
        for path in sorted(SRC_ROOT.rglob("*.py")):
            for code in _CODE_LITERAL.findall(path.read_text()):
                if code not in STABLE_CODES:
                    unregistered.setdefault(code, []).append(
                        str(path.relative_to(SRC_ROOT)))
        assert not unregistered, \
            f"codes missing from STABLE_CODES: {unregistered}"

    def test_layers_partition_the_registry(self):
        from repro.analysis.diagnostics import (
            DIAGNOSTIC_CODES,
            LAYER_DECODER,
            LAYER_SERVE,
            layer_of,
        )
        for code in STABLE_CODES:
            if code.startswith("DEC-"):
                assert layer_of(code) == LAYER_DECODER
                assert code not in DIAGNOSTIC_CODES
            elif code.startswith("SERVE-"):
                assert layer_of(code) == LAYER_SERVE
                assert code not in DIAGNOSTIC_CODES
            else:
                assert layer_of(code) not in (LAYER_DECODER, LAYER_SERVE)
                assert code in DIAGNOSTIC_CODES

    def test_alias_classes(self):
        from repro.analysis.diagnostics import CODE_ALIASES, alias_class
        assert codes_equivalent("DEC-TRAP-REF", "STSA-REF-004")
        assert codes_equivalent("DEC-REF", "STSA-REF-001")
        assert codes_equivalent("DEC-IO", "DEC-IO")
        assert not codes_equivalent("DEC-IO", "STSA-REF-001")
        for aliases in CODE_ALIASES:
            for code in aliases:
                assert code in STABLE_CODES
                assert alias_class(code) == aliases


# ======================================================================
# session + API integration


class TestConsumerIntegration:
    def test_session_load_credits_load_stage(self):
        from repro.driver import CompilationSession
        session = CompilationSession(cache=False)
        wire = _encode(TestTruncation.SOURCE, optimize=False)
        module = session.load(wire)
        assert encode_module(module) == wire
        assert "load" in session.stage_seconds

    def test_api_load_module(self):
        from repro.api import load_module as api_load
        wire = _encode(TestTruncation.SOURCE, optimize=False)
        assert encode_module(api_load(wire)) == wire

    def test_jvm_verify_classfile_set(self):
        from repro.driver import CompilationSession
        from repro.jvm.verifier import verify_class, verify_classfile_set
        source = TestTruncation.SOURCE
        session = CompilationSession(cache=False)
        _, world = session.frontend(source)
        classes = session.compile_to_classfiles(source)
        total = verify_classfile_set(world, classes)
        assert total == sum(verify_class(world, c) for c in classes)
        assert total > 0
