"""Dead-code elimination (paper Section 8: most effective on phis).

Mark-and-sweep over the SSA graph.  Roots are the instructions whose
removal would be observable: memory writes, calls, allocations, every
trapping instruction (exceptions are observable), and terminator
operands.  Everything unreachable from a root -- including eagerly
inserted phis that survive pruning, and pure loads made redundant by CSE
-- is deleted.  Type separation is what makes ``getfield``/``getelt``
loads removable at all: their object operands are already on safe
planes, so a dead load provably cannot trap.
"""

from __future__ import annotations

from repro.ssa import ir
from repro.ssa.ir import Function, Instr


def _is_root(instr: Instr) -> bool:
    if instr.traps:
        return True  # the potential exception is observable
    if isinstance(instr, (ir.SetField, ir.SetElt, ir.SetStatic, ir.New)):
        return True
    if isinstance(instr, ir.CaughtExc):
        return True  # positional: heads its dispatch block
    return False


def run_dce(function: Function, observable: set | None = None) -> dict:
    """Remove dead instructions; returns per-kind removal counts.

    ``observable`` is an optional precomputed observability closure (the
    ``observable`` analysis of :mod:`repro.analysis.manager`); when
    omitted the mark phase computes it here.  Sweeping keeps exactly the
    closure, so a caller-supplied result must be current.
    """
    reachable = function.reachable_blocks()
    reachable_ids = {block.id for block in reachable}
    if observable is not None:
        live = observable
    else:
        live = set()
        worklist: list[Instr] = []

        def mark(instr: Instr) -> None:
            if instr.id not in live:
                live.add(instr.id)
                worklist.append(instr)

        for block in reachable:
            for instr in block.all_instrs():
                if _is_root(instr):
                    mark(instr)
            if block.term is not None and block.term.value is not None:
                mark(block.term.value)
        while worklist:
            instr = worklist.pop()
            for operand in instr.operands:
                mark(operand)

    removed: dict[str, int] = {}
    for block in function.blocks:
        if block.id not in reachable_ids:
            continue  # unreachable blocks are skipped by the encoder
        keep_phis = []
        for phi in block.phis:
            if phi.id in live:
                keep_phis.append(phi)
            else:
                phi.drop_operands()
                removed["phi"] = removed.get("phi", 0) + 1
        block.phis = keep_phis
        keep = []
        for instr in block.instrs:
            if instr.id in live:
                keep.append(instr)
            else:
                instr.drop_operands()
                removed[instr.opcode] = removed.get(instr.opcode, 0) + 1
        block.instrs = keep
    return removed
