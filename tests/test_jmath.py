"""Unit tests for Java numeric semantics (repro.jmath)."""

import math

import pytest

from repro import jmath


class TestIntTruncation:
    def test_i32_wraps_positive(self):
        assert jmath.i32(2**31) == -(2**31)

    def test_i32_wraps_negative(self):
        assert jmath.i32(-(2**31) - 1) == 2**31 - 1

    def test_i32_identity_in_range(self):
        for value in (0, 1, -1, 2**31 - 1, -(2**31)):
            assert jmath.i32(value) == value

    def test_i64_wraps(self):
        assert jmath.i64(2**63) == -(2**63)
        assert jmath.i64(2**64) == 0

    def test_i64_identity(self):
        assert jmath.i64(jmath.LONG_MAX) == jmath.LONG_MAX


class TestDivision:
    def test_idiv_truncates_toward_zero(self):
        assert jmath.idiv(7, 2) == 3
        assert jmath.idiv(-7, 2) == -3
        assert jmath.idiv(7, -2) == -3
        assert jmath.idiv(-7, -2) == 3

    def test_irem_sign_of_dividend(self):
        assert jmath.irem(7, 3) == 1
        assert jmath.irem(-7, 3) == -1
        assert jmath.irem(7, -3) == 1
        assert jmath.irem(-7, -3) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            jmath.idiv(1, 0)
        with pytest.raises(ZeroDivisionError):
            jmath.irem(1, 0)

    def test_idiv_rem_invariant(self):
        for a in (-17, -5, 0, 3, 17, 2**31 - 1):
            for b in (-7, -1, 1, 3, 9):
                assert jmath.idiv(a, b) * b + jmath.irem(a, b) == a


class TestShifts:
    def test_shift_count_masked_32(self):
        assert jmath.ishl(1, 33, 32) == 2
        assert jmath.ishl(1, 32, 32) == 1

    def test_shift_count_masked_64(self):
        assert jmath.ishl(1, 65, 64) == 2

    def test_arithmetic_shift_preserves_sign(self):
        assert jmath.ishr(-8, 1, 32) == -4

    def test_logical_shift_zero_extends(self):
        assert jmath.iushr(-1, 28, 32) == 15
        assert jmath.iushr(-1, 0, 32) == -1  # count 0: unchanged

    def test_long_unsigned_shift(self):
        assert jmath.iushr(-1, 32, 64) == 0xFFFFFFFF


class TestFloating:
    def test_fdiv_by_zero_gives_infinity(self):
        assert jmath.fdiv(1.0, 0.0) == math.inf
        assert jmath.fdiv(-1.0, 0.0) == -math.inf

    def test_zero_over_zero_is_nan(self):
        assert math.isnan(jmath.fdiv(0.0, 0.0))

    def test_frem_is_fmod_not_python_mod(self):
        assert jmath.frem(-7.0, 2.0) == -1.0  # Python % gives 1.0

    def test_frem_nan_cases(self):
        assert math.isnan(jmath.frem(1.0, 0.0))
        assert math.isnan(jmath.frem(math.inf, 2.0))
        assert jmath.frem(3.5, math.inf) == 3.5

    def test_f32_rounds(self):
        assert jmath.f32(0.1) != 0.1
        assert abs(jmath.f32(0.1) - 0.1) < 1e-8


class TestNarrowing:
    def test_d2i_saturates(self):
        assert jmath.d2i(1e20) == jmath.INT_MAX
        assert jmath.d2i(-1e20) == jmath.INT_MIN

    def test_d2i_nan_is_zero(self):
        assert jmath.d2i(math.nan) == 0

    def test_d2i_truncates(self):
        assert jmath.d2i(-2.9) == -2
        assert jmath.d2i(2.9) == 2

    def test_d2l_saturates(self):
        assert jmath.d2l(1e30) == jmath.LONG_MAX

    def test_l2i_truncates(self):
        assert jmath.l2i(2**32 + 5) == 5
        assert jmath.l2i(2**31) == -(2**31)

    def test_i2c_zero_extends(self):
        assert jmath.i2c(-1) == 0xFFFF
        assert jmath.i2c(65) == 65
        assert jmath.i2c(0x12345) == 0x2345
