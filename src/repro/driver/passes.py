"""Pass objects, the pass registry, and the pipeline-spec grammar.

Every optimisation pass is a registered :class:`Pass` with metadata the
pass manager uses to schedule work and keep the shared analysis cache
sound:

``name``
    The spec name (``constprop``, ``safephi``, ``cse``, ``cse_fields``,
    ``dce``, ``cleanup``).
``slot``
    The canonical-order slot the pass occupies.  ``cse`` and
    ``cse_fields`` share the ``cse`` slot: they are variants, and at
    most one runs per pipeline (``cse_fields`` wins when both are
    selected, matching the historical behaviour).
``requires``
    Analyses the pass consumes through the :class:`~repro.analysis.
    manager.AnalysisManager` (advisory; passes also run stand-alone).
``preserves``
    Analyses still valid after the pass *even when it changed the
    function*.  A pass whose statistics are all falsy changed nothing
    and implicitly preserves everything.  When any of the CFG-shape
    statistics (:data:`CFG_CHANGE_STATS`) is nonzero the pass rewired
    edges, so ``domtree`` is dropped from the preserved set regardless.

The pipeline spec grammar is a comma-separated list of pass names, e.g.
``"constprop,safephi,cse_fields,dce,cleanup"``.  Whitespace around
names is ignored; empty segments are dropped, so ``""`` is the explicit
no-op pipeline.  Iterables of names are accepted anywhere a spec string
is.  Passes always execute in canonical slot order regardless of the
order written, so two spellings of the same pass set hash to the same
compilation-cache key.

Execution is routed through :data:`STEP_FUNCTIONS` so tests can
monkeypatch a step (e.g. to inject a deliberately invariant-breaking
pass and assert blame attribution); ``repro.opt.pipeline.PASS_FUNCTIONS``
is the same dictionary object, kept as a compatibility alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.analysis.diagnostics import Diagnostic

#: Canonical execution order (one name per slot).  ``hoist_checks``
#: runs before ``cse`` so a check hoisted to a preheader dominates --
#: and therefore subsumes, via CSE's memory dependence -- the redundant
#: in-loop checks of the same value; ``licm`` runs after ``cse`` so
#: reads whose checks were just eliminated or hoisted (now invariant
#: operands) can migrate out in the same pipeline run.
ALL_PASSES = ("constprop", "safephi", "hoist_checks", "cse", "licm",
              "dce", "cleanup")

#: The pipeline ``optimize=True`` selects when no explicit spec is
#: given.  The loop tier (``licm``, ``hoist_checks``) is opt-in via
#: ``--passes``: it inserts preheader blocks, so enabling it by default
#: would change every golden wire fixture.
DEFAULT_PASSES = ("constprop", "safephi", "cse", "dce", "cleanup")

#: The default pipeline as a spec string (stable cache-key alias).
CANONICAL_SPEC = ",".join(DEFAULT_PASSES)

#: Statistics keys whose nonzero value means the pass rewired CFG edges.
CFG_CHANGE_STATS = ("stale_exc_edges", "dead_handlers", "preheaders")


class PassCheckError(Exception):
    """``check_after_each_pass`` caught a pass breaking the invariants.

    ``pass_name`` is the blamed pass (``"input"`` when the function was
    already ill-formed before any pass ran); ``diagnostics`` holds every
    error-severity finding the verifier collected afterwards.
    """

    def __init__(self, pass_name: str, function_name: str,
                 diagnostics: list):
        self.pass_name = pass_name
        self.function = function_name
        self.diagnostics = diagnostics
        self.diagnostic = Diagnostic(
            "STSA-PASS-001",
            f"pass '{pass_name}' left {function_name} ill-formed: "
            f"{diagnostics[0] if diagnostics else 'unknown violation'}",
            function=function_name)
        super().__init__(str(self.diagnostic))


# ---------------------------------------------------------------------------
# step functions (the callables that actually mutate a function)
# ---------------------------------------------------------------------------

def _uses_analyses(fn):
    """Mark a step as accepting the ``analyses`` keyword.  Steps without
    the mark -- including test monkeypatches -- are called as plain
    ``step(function)``, the historical contract."""
    fn.uses_analyses = True
    return fn


def _step_constprop(function) -> dict:
    from repro.opt.cleanup import remove_stale_exception_edges
    from repro.opt.constprop import run_constprop
    folded = run_constprop(function)
    # folding a trapping op (e.g. div by a non-zero constant) removes an
    # exception point; repair the edges so the IR stays verifiable
    return {"constprop_folded": folded,
            "stale_exc_edges": remove_stale_exception_edges(function)}


def _step_safephi(function) -> dict:
    from repro.opt.safephi import run_safe_phi_propagation
    return {"safephi_promoted": run_safe_phi_propagation(function)}


@_uses_analyses
def _step_licm(function, analyses=None) -> dict:
    from repro.opt.licm import run_licm
    forest = analyses.get("loops", function) \
        if analyses is not None else None
    return run_licm(function, forest=forest)


@_uses_analyses
def _step_hoist_checks(function, analyses=None) -> dict:
    from repro.opt.hoist_checks import run_hoist_checks
    forest = analyses.get("loops", function) \
        if analyses is not None else None
    return run_hoist_checks(function, forest=forest)


@_uses_analyses
def _step_cse(function, analyses=None, partition_memory=False) -> dict:
    from repro.opt.cleanup import remove_stale_exception_edges
    from repro.opt.cse import run_cse
    domtree = analyses.get("domtree", function) \
        if analyses is not None else None
    cse_stats = run_cse(function, partition_memory=partition_memory,
                        domtree=domtree)
    stats = {f"cse_{k}": v for k, v in cse_stats.as_dict().items()}
    # check elimination removes trapping instructions; see above
    stats["stale_exc_edges"] = remove_stale_exception_edges(function)
    return stats


@_uses_analyses
def _step_cse_fields(function, analyses=None) -> dict:
    return _step_cse(function, analyses, partition_memory=True)


@_uses_analyses
def _step_dce(function, analyses=None) -> dict:
    from repro.opt.dce import run_dce
    observable = analyses.get("observable", function) \
        if analyses is not None else None
    return {"dce_removed": run_dce(function, observable=observable)}


def _step_cleanup(function) -> dict:
    from repro.opt.cleanup import remove_dead_handlers, \
        remove_stale_exception_edges
    return {"stale_exc_edges": remove_stale_exception_edges(function),
            "dead_handlers": remove_dead_handlers(function)}


#: pass name -> step callable; monkeypatchable so tests can inject a
#: deliberately invariant-breaking pass and assert blame attribution.
#: ``repro.opt.pipeline.PASS_FUNCTIONS`` aliases this very dictionary.
STEP_FUNCTIONS = {
    "constprop": _step_constprop,
    "safephi": _step_safephi,
    "licm": _step_licm,
    "hoist_checks": _step_hoist_checks,
    "cse": _step_cse,
    "cse_fields": _step_cse_fields,
    "dce": _step_dce,
    "cleanup": _step_cleanup,
}


def run_step(name: str, function, analyses=None) -> dict:
    """Execute one registered step, honouring monkeypatched entries."""
    step = STEP_FUNCTIONS[name]
    if analyses is not None and getattr(step, "uses_analyses", False):
        return step(function, analyses)
    return step(function)


# ---------------------------------------------------------------------------
# pass metadata
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Pass:
    """Registered pass metadata (execution goes through
    :data:`STEP_FUNCTIONS`, which this class deliberately does not
    capture, so monkeypatching a step keeps working)."""

    name: str
    slot: str
    requires: frozenset = field(default_factory=frozenset)
    preserves: frozenset = field(default_factory=frozenset)

    def preserved_after(self, stats: dict) -> Optional[frozenset]:
        """Analyses still valid after this pass produced ``stats``.

        Returns None for "everything" (the pass changed nothing).
        """
        if not any(bool(value) for value in stats.values()):
            return None  # no observable change: all results stay valid
        preserved = set(self.preserves)
        if any(stats.get(key) for key in CFG_CHANGE_STATS):
            preserved.discard("domtree")
        return frozenset(preserved)


#: name -> Pass, populated below; open for extension via register_pass.
PASS_REGISTRY: dict[str, Pass] = {}


def register_pass(pass_: Pass) -> Pass:
    if pass_.slot not in ALL_PASSES:
        raise ValueError(f"unknown canonical slot {pass_.slot!r}")
    PASS_REGISTRY[pass_.name] = pass_
    return pass_


register_pass(Pass("constprop", "constprop",
                   preserves=frozenset({"domtree"})))
register_pass(Pass("safephi", "safephi",
                   preserves=frozenset({"domtree"})))
# the loop tier preserves the dominator tree only when it did not have
# to materialise a preheader; ``preheaders`` is in CFG_CHANGE_STATS, so
# preserved_after() withdraws "domtree" exactly in that case.
register_pass(Pass("licm", "licm",
                   requires=frozenset({"loops"}),
                   preserves=frozenset({"domtree"})))
register_pass(Pass("hoist_checks", "hoist_checks",
                   requires=frozenset({"loops", "nullness", "range"}),
                   preserves=frozenset({"domtree"})))
register_pass(Pass("cse", "cse",
                   requires=frozenset({"domtree"}),
                   preserves=frozenset({"domtree"})))
register_pass(Pass("cse_fields", "cse",
                   requires=frozenset({"domtree"}),
                   preserves=frozenset({"domtree"})))
# DCE removes only values outside the observability closure: the
# closure itself and the CFG are untouched, so both results stay valid.
register_pass(Pass("dce", "dce",
                   requires=frozenset({"observable"}),
                   preserves=frozenset({"domtree", "observable"})))
register_pass(Pass("cleanup", "cleanup"))


# ---------------------------------------------------------------------------
# the pipeline-spec grammar
# ---------------------------------------------------------------------------

PassSpec = Union[None, str, Iterable[str]]


def parse_pass_spec(spec: PassSpec) -> tuple[str, ...]:
    """Resolve a pipeline spec to the canonically ordered pass tuple.

    ``None`` selects the default pipeline; a string is split on
    commas (``"constprop, dce"``); any iterable of names is accepted.
    Unknown names raise ``ValueError``.  At most one pass per slot
    survives; for the ``cse`` slot the ``cse_fields`` variant wins when
    both are named (historical behaviour of the ablation driver).
    """
    if spec is None:
        return DEFAULT_PASSES
    if isinstance(spec, str):
        names = [part.strip() for part in spec.split(",")]
        names = [part for part in names if part]
    else:
        names = list(spec)
    unknown = sorted(set(names) - set(PASS_REGISTRY))
    if unknown:
        raise ValueError(
            f"unknown pass name(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(PASS_REGISTRY))}")
    by_slot: dict[str, str] = {}
    for name in names:
        slot = PASS_REGISTRY[name].slot
        current = by_slot.get(slot)
        if current is None or name == "cse_fields":
            by_slot[slot] = name
    return tuple(by_slot[slot] for slot in ALL_PASSES if slot in by_slot)


def effective_passes(optimize: bool, passes: PassSpec) -> tuple[str, ...]:
    """The pass tuple a compilation with these flags actually runs:
    an explicit ``passes`` spec wins; otherwise ``optimize`` selects the
    default pipeline or nothing."""
    if passes is None:
        return DEFAULT_PASSES if optimize else ()
    return parse_pass_spec(passes)


def spec_string(passes: Iterable[str]) -> str:
    """Canonical spec-string form (stable cache-key component)."""
    return ",".join(passes)
