"""Shared analysis results: compute once per function, reuse everywhere.

Every consumer of a dataflow analysis used to run the solver itself --
CSE computed its own dominator tree, DCE its own observability closure,
and each lint rule re-solved nullness or range from scratch, so the same
facts were derived three or four times per compilation.  *The ART of
Sharing Points-to Analysis* (Halalingaiah et al.) makes the case that
safely reusing analysis results across passes and compilations is where
industrial compile-time goes; this module is that idea for the SafeTSA
pipeline.

:class:`AnalysisManager` caches analysis results per ``(analysis,
function)`` pair.  Consumers call :meth:`AnalysisManager.get`; the pass
manager invalidates after every pass that does not declare the analysis
preserved (see :class:`repro.driver.passes.Pass`).  A pass whose
statistics show it changed nothing implicitly preserves everything.

The registry is open: :func:`register_analysis` adds a new analysis
under a name, mirroring the lint-rule registry.  Built-in analyses:

=============  ====================================================
``domtree``    :func:`repro.ssa.dominators.compute_dominators`
``observable`` :func:`repro.analysis.liveness.observable_values`
``liveness``   :func:`repro.analysis.liveness.analyze_liveness`
``nullness``   :func:`repro.analysis.nullness.analyze_nullness`
``range``      :func:`repro.analysis.range.analyze_ranges`
=============  ====================================================

The manager is thread-safe for the driver's per-function fan-out:
worker threads operate on disjoint functions, so the lock only guards
the shared cache dictionary and the hit/computed counters.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.ssa.ir import Function

#: analysis name -> solver(function); see :func:`register_analysis`.
ANALYSES: dict[str, Callable[[Function], object]] = {}


def register_analysis(name: str, solver: Optional[Callable] = None):
    """Register ``solver`` under ``name`` (usable as a decorator)."""
    def register(fn):
        ANALYSES[name] = fn
        return fn
    if solver is not None:
        return register(solver)
    return register


@register_analysis("domtree")
def _domtree(function: Function):
    from repro.ssa.dominators import compute_dominators
    return compute_dominators(function)


@register_analysis("observable")
def _observable(function: Function):
    from repro.analysis.liveness import observable_values
    return observable_values(function)


@register_analysis("liveness")
def _liveness(function: Function):
    from repro.analysis.liveness import analyze_liveness
    return analyze_liveness(function)


@register_analysis("nullness")
def _nullness(function: Function):
    from repro.analysis.nullness import analyze_nullness
    return analyze_nullness(function)


@register_analysis("range")
def _range(function: Function):
    from repro.analysis.range import analyze_ranges
    return analyze_ranges(function)


@register_analysis("loops")
def _loops(function: Function):
    from repro.analysis.loops import find_loops
    return find_loops(function)


class AnalysisManager:
    """Per-function cache of analysis results with hit accounting.

    Results are keyed by function *identity*: a manager outlives any
    number of modules, and two functions never alias.  The functions
    themselves are pinned so an ``id()`` can never be recycled while its
    cache entries are alive.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[str, int], object] = {}
        self._pinned: dict[int, Function] = {}
        self._lock = threading.Lock()
        self.computed = 0
        self.hits = 0
        self.invalidations = 0
        #: analysis name -> {"computed": n, "hits": n}
        self.per_analysis: dict[str, dict[str, int]] = {}

    # -- lookup ---------------------------------------------------------

    def get(self, name: str, function: Function):
        """The ``name`` analysis result for ``function``, cached."""
        solver = ANALYSES.get(name)
        if solver is None:
            raise KeyError(
                f"unknown analysis {name!r}; known: {sorted(ANALYSES)}")
        key = (name, id(function))
        with self._lock:
            if key in self._cache:
                self.hits += 1
                self._account(name)["hits"] += 1
                return self._cache[key]
        # compute outside the lock: parallel workers own disjoint
        # functions, so no two threads ever solve the same problem
        value = solver(function)
        with self._lock:
            self._cache[key] = value
            self._pinned[id(function)] = function
            self.computed += 1
            self._account(name)["computed"] += 1
        return value

    def cached(self, name: str, function: Function):
        """The cached result, or None without computing anything."""
        return self._cache.get((name, id(function)))

    def _account(self, name: str) -> dict:
        stats = self.per_analysis.get(name)
        if stats is None:
            stats = self.per_analysis[name] = {"computed": 0, "hits": 0}
        return stats

    # -- invalidation ---------------------------------------------------

    def invalidate(self, function: Function,
                   preserved: frozenset = frozenset()) -> None:
        """Drop ``function``'s results except the ``preserved`` names."""
        target = id(function)
        with self._lock:
            stale = [key for key in self._cache
                     if key[1] == target and key[0] not in preserved]
            for key in stale:
                del self._cache[key]
                self.invalidations += 1
            if not any(key[1] == target for key in self._cache):
                self._pinned.pop(target, None)

    def invalidate_all(self) -> None:
        with self._lock:
            self.invalidations += len(self._cache)
            self._cache.clear()
            self._pinned.clear()

    # -- accounting -----------------------------------------------------

    @property
    def consumers_per_computed(self) -> float:
        """Average number of consumers each computed result served."""
        if not self.computed:
            return 0.0
        return (self.hits + self.computed) / self.computed

    def stats(self) -> dict:
        return {
            "computed": self.computed,
            "hits": self.hits,
            "invalidations": self.invalidations,
            "consumers_per_computed": round(
                self.consumers_per_computed, 3),
            "per_analysis": {
                name: dict(counts)
                for name, counts in sorted(self.per_analysis.items())},
        }
