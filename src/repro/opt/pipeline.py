"""Producer-side optimisation pipeline (paper Section 8) -- legacy API.

The pipeline itself now lives in :mod:`repro.driver`: passes are
registered :class:`~repro.driver.passes.Pass` objects with
requires/preserves metadata, a :class:`~repro.driver.manager.PassManager`
runs a declarative pipeline spec, and a shared
:class:`~repro.analysis.manager.AnalysisManager` caches the dataflow
results passes consume.  This module keeps the historical entry points
as thin wrappers:

* :func:`optimize_function` / :func:`optimize_module` build a
  :class:`~repro.driver.manager.PassManager` per call and return the
  same flat statistics dictionaries they always have;
* :data:`PASS_FUNCTIONS` is the *same dictionary object* as
  :data:`repro.driver.passes.STEP_FUNCTIONS`, so monkeypatching a step
  here (as the invariant-blame tests do) affects every execution path;
* :data:`ALL_PASSES` and :class:`PassCheckError` re-export the
  canonical definitions.

Default order: constant propagation, safe-phi promotion, CSE (with check
elimination over the ``Mem``-threaded memory dependence), dead-code
elimination, then exception-edge cleanup.  Each pass -- ``cleanup``
included -- can be toggled for the ablation study (experiment E4), so an
explicit ``passes=()`` really is a no-op baseline.

Every pass is required to leave the function in a verifiable state;
``check_after_each_pass`` turns that contract into an enforced
invariant, attributing the first violation -- as a
:class:`PassCheckError` carrying the collected diagnostics -- to the
pass that introduced it.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.driver.manager import PassManager
from repro.driver.passes import (
    ALL_PASSES,
    PassCheckError,
    STEP_FUNCTIONS,
    _step_cleanup,
    _step_constprop,
    _step_cse,
    _step_cse_fields,
    _step_dce,
    _step_safephi,
)
from repro.driver.report import merge_stats

#: pass name -> step callable; monkeypatchable so tests can inject a
#: deliberately invariant-breaking pass and assert blame attribution.
#: The same object as ``repro.driver.passes.STEP_FUNCTIONS``.
PASS_FUNCTIONS = STEP_FUNCTIONS

#: legacy alias for the (bool-safe) statistics merge
_merge_stats = merge_stats


def optimize_function(function, passes: Optional[Iterable[str]] = None, *,
                      module=None,
                      check_after_each_pass: bool = False) -> dict:
    """Run the selected passes on one function; returns statistics.

    Passes always run in canonical :data:`ALL_PASSES` order regardless of
    the order of ``passes``; ``cse_fields`` selects the
    partitioned-memory variant of ``cse``.  With
    ``check_after_each_pass=True`` (requires ``module``) the function is
    verified before the first pass and after every pass, raising
    :class:`PassCheckError` blaming the pass that broke it.
    """
    manager = PassManager(passes,
                          check_after_each_pass=check_after_each_pass)
    return manager.run_function(function, module=module).legacy_stats()


def optimize_module(module, passes: Optional[Iterable[str]] = None,
                    check_after_each_pass: bool = False) -> list[dict]:
    """Optimise every function of a module; returns per-function stats."""
    manager = PassManager(passes,
                          check_after_each_pass=check_after_each_pass)
    return [report.legacy_stats()
            for report in manager.run_module(module)]
