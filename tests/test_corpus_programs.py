"""Corpus programs: golden outputs and four-way execution equality.

The paper's safety argument rests on the transmitted code being the
*same program*; these tests pin every corpus program's behaviour across
the plain SafeTSA interpreter, the optimised module, the decoded module
and the Java-bytecode interpreter.
"""

import pytest

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.encode.deserializer import decode_module
from repro.encode.serializer import encode_module
from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze
from repro.interp.interpreter import Interpreter
from repro.jvm.codegen import compile_unit
from repro.jvm.interp import BytecodeInterpreter
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module
from repro.uast.builder import UastBuilder

MAX_STEPS = 80_000_000

#: first lines of each program's expected output (golden pins)
GOLDEN_FIRST_LINES = {
    "Scanner": "tokens=36",
    "Parser": "0: 7 = 7 (size 5->1)",
    "Environment": "symbols=15",
    "BinaryCode": "true ok(sum=20)",
    "BigInt": "20! = 2432902008176640000",
    "MutableBigInt": "30! = 265252859812191058636308480000000",
    "BigDecimalLite": "price=19.99",
    "BitSieve": "primes=2262",
    "MiniVM": "10! = 3628800 in 118 steps",
    "Linpack": "info=0",
}


@pytest.fixture(scope="module")
def outputs():
    """Reference stdout for every corpus program (plain pipeline)."""
    results = {}
    for name in CORPUS_PROGRAMS:
        module = compile_to_module(corpus_source(name))
        result = Interpreter(module, max_steps=MAX_STEPS).run_main(name)
        assert result.exception is None, (name, result.exception_name())
        results[name] = result.stdout
    return results


@pytest.mark.parametrize("program", CORPUS_PROGRAMS)
def test_golden_first_line(outputs, program):
    first = outputs[program].splitlines()[0]
    assert first == GOLDEN_FIRST_LINES[program]


@pytest.mark.parametrize("program", CORPUS_PROGRAMS)
def test_optimized_equals_plain(outputs, program):
    module = compile_to_module(corpus_source(program), optimize=True)
    verify_module(module)
    result = Interpreter(module, max_steps=MAX_STEPS).run_main(program)
    assert result.stdout == outputs[program]


@pytest.mark.parametrize("program", CORPUS_PROGRAMS)
def test_decoded_equals_plain(outputs, program):
    module = compile_to_module(corpus_source(program), optimize=True)
    decoded = decode_module(encode_module(module))
    verify_module(decoded)
    result = Interpreter(decoded, max_steps=MAX_STEPS).run_main(program)
    assert result.stdout == outputs[program]


@pytest.mark.parametrize("program", CORPUS_PROGRAMS)
def test_bytecode_equals_plain(outputs, program):
    source = corpus_source(program)
    unit = parse_compilation_unit(source)
    world = analyze(unit)
    builder = UastBuilder(world)
    classes = compile_unit(world, {decl.info: builder.build_class(decl)
                                   for decl in unit.classes})
    result = BytecodeInterpreter(classes, world,
                                 max_steps=MAX_STEPS).run_main(program)
    assert result.stdout == outputs[program]


@pytest.mark.parametrize("program", CORPUS_PROGRAMS)
def test_optimized_runs_fewer_dynamic_checks(program):
    source = corpus_source(program)
    plain = Interpreter(compile_to_module(source), max_steps=MAX_STEPS)
    plain.run_main(program)
    optimized = Interpreter(compile_to_module(source, optimize=True),
                            max_steps=MAX_STEPS)
    optimized.run_main(program)
    plain_total = sum(plain.check_counts.values())
    opt_total = sum(optimized.check_counts.values())
    assert opt_total <= plain_total
    # programs with real field/array traffic show a strict win
    if plain.check_counts["nullcheck"] > 50:
        assert optimized.check_counts["nullcheck"] \
            < plain.check_counts["nullcheck"], program


@pytest.mark.parametrize("program", CORPUS_PROGRAMS)
def test_full_golden_output(outputs, program):
    """Byte-exact full stdout, pinned in tests/golden/."""
    from pathlib import Path
    golden = Path(__file__).parent / "golden" / f"{program}.out"
    assert outputs[program] == golden.read_text()
