"""``repro.fuzz``: differential conformance + wire-mutation fuzzing.

The paper's headline safety claim -- "even a hand-crafted malicious
program cannot undermine type safety" (Sections 3, 9) -- is exercised
here mechanically and at scale:

* :mod:`repro.fuzz.gen` -- a seeded, deterministic MiniJava++ program
  generator (one grammar shared with the hypothesis property tests);
* :mod:`repro.fuzz.oracle` -- a differential oracle running every
  generated program through each pipeline pair the repo claims agree
  (interpreter vs JIT vs bytecode baseline, plain vs each pass spec,
  serial vs parallel, encode/decode/re-encode bit identity);
* :mod:`repro.fuzz.mutate` -- a wire-stream mutation fuzzer whose
  invariant is *reject-or-equivalent*: every mutated stream either
  raises :class:`~repro.encode.deserializer.DecodeError` /
  :class:`~repro.tsa.verifier.VerifyError` or decodes to a module that
  verifies and executes identically across re-encoding;
* :mod:`repro.fuzz.minimize` -- delta-debugging shrinkers persisting
  findings as regression fixtures under ``tests/golden/attacks/``;
* :mod:`repro.fuzz.campaign` -- the budgeted driver behind
  ``repro-cc fuzz`` and ``python -m repro.bench.runner fuzz``.
"""

from repro.fuzz.campaign import CampaignResult, run_campaign
from repro.fuzz.gen import GeneratedProgram, generate_seeded, program_strategy
from repro.fuzz.mutate import StreamOutcome, check_stream, mutate_stream
from repro.fuzz.oracle import Divergence, OracleResult, check_program

__all__ = [
    "CampaignResult",
    "Divergence",
    "GeneratedProgram",
    "OracleResult",
    "StreamOutcome",
    "check_program",
    "check_stream",
    "generate_seeded",
    "mutate_stream",
    "program_strategy",
    "run_campaign",
]
