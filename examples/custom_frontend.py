"""A non-Java producer: building SafeTSA through the programmatic API.

The paper designed the UAST for "input languages other than Java"
(Section 7).  This example plays the role of such a front-end: it
compiles a tiny stack-calculator language straight into SafeTSA with
:class:`repro.tsa.builder.ModuleBuilder`, then ships and runs the result
exactly like Java-sourced code.

Run with:  python examples/custom_frontend.py
"""

from repro.encode.deserializer import decode_module
from repro.encode.serializer import encode_module
from repro.interp.interpreter import Interpreter
from repro.tsa.builder import ModuleBuilder
from repro.typesys.types import ArrayType, INT


def compile_calculator(program: str):
    """Compile a postfix-calculator program (digits and + - *) into a
    SafeTSA method ``Calc.run(int[] stack) -> int``."""
    mb = ModuleBuilder()
    calc = mb.new_class("Calc")
    with calc.method("run", [("stack", ArrayType(INT))], INT) as b:
        sp = b.local(INT, "sp", b.const(0))

        def push(value):
            b.array_set(b.arg("stack"), b.get(sp), value)
            b.set(sp, b.add(b.get(sp), b.const(1)))

        def pop():
            b.set(sp, b.sub(b.get(sp), b.const(1)))
            return b.array_get(b.arg("stack"), b.get(sp))

        for token in program.split():
            if token.isdigit():
                push(b.const(int(token)))
            else:
                right = b.local(INT, f"r{len(program)}_{id(token)}", pop())
                left = b.local(INT, f"l{len(program)}_{id(token)}", pop())
                op = {"+": b.add, "-": b.sub, "*": b.mul}[token]
                push(op(b.get(left), b.get(right)))
        b.set(sp, b.sub(b.get(sp), b.const(1)))
        b.ret(b.array_get(b.arg("stack"), b.get(sp)))
    return mb.build(optimize=True)


def main() -> None:
    program = "3 4 + 5 2 - *"       # (3+4) * (5-2) = 21
    module = compile_calculator(program)
    wire = encode_module(module)
    print(f"calculator program {program!r} compiled to {len(wire)} "
          "bytes of SafeTSA")
    received = decode_module(wire)
    from repro.interp.heap import ArrayRef
    stack = ArrayRef(ArrayType(INT), 16)
    function = received.function_named("Calc", "run")
    result = Interpreter(received).run_function(function, [stack])
    print(f"evaluated: {result.value}")
    assert result.value == 21


if __name__ == "__main__":
    main()
