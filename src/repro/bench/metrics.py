"""Per-class measurements behind Figures 5 and 6.

For every corpus program this module compiles three artifacts from the
same source -- the Java-bytecode baseline, plain SafeTSA, and optimised
SafeTSA -- and collects, per class:

* file size in bytes (real ``.class`` bytes vs attributed SafeTSA wire
  bits) and instruction counts (Figure 5);
* phi, null-check and array-check instruction counts before and after
  producer-side optimisation (Figure 6).
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Optional

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.encode.serializer import encode_module
from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze
from repro.jvm.classfile import class_file_bytes
from repro.jvm.codegen import compile_unit
from repro.pipeline import compile_to_module, pipeline_cache_key
from repro.ssa.ir import Module
from repro.uast.builder import UastBuilder

#: The two transmitted forms every corpus program is compiled to.
TRANSMITTED_FLAGS = ({"prune_phis": False}, {"optimize": True})


class ClassMetrics:
    """One row of the Figure 5 / Figure 6 tables."""

    def __init__(self, program: str, class_name: str):
        self.program = program
        self.class_name = class_name
        # Figure 5 columns
        self.bytecode_size = 0
        self.bytecode_insns = 0
        self.tsa_size = 0
        self.tsa_insns = 0
        self.tsa_opt_size = 0
        self.tsa_opt_insns = 0
        # Figure 6 columns
        self.phis_before = 0
        self.phis_after = 0
        self.nullchecks_before = 0
        self.nullchecks_after = 0
        self.idxchecks_before = 0
        self.idxchecks_after = 0

    def delta_pct(self, before: int, after: int) -> Optional[int]:
        """Percent change (rounded), or None when before == 0 (N/A)."""
        if before == 0:
            return None
        return round(100 * (after - before) / before)

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{self.class_name}: bc {self.bytecode_insns}i/"
                f"{self.bytecode_size}B tsa {self.tsa_insns}i/"
                f"{self.tsa_size}B opt {self.tsa_opt_insns}i/"
                f"{self.tsa_opt_size}B>")


def _class_opcode_counts(module: Module, class_name: str,
                         *opcodes: str) -> int:
    total = 0
    for method, function in module.functions.items():
        if method.declaring.name != class_name:
            continue
        for block in function.reachable_blocks():
            for instr in block.all_instrs():
                if instr.opcode in opcodes:
                    total += 1
    return total


def _class_instruction_count(module: Module, class_name: str) -> int:
    total = 0
    for method, function in module.functions.items():
        if method.declaring.name != class_name:
            continue
        for block in function.reachable_blocks():
            total += len(block.phis) + len(block.instrs)
    return total


def _tsa_sizes(module: Module) -> dict[str, int]:
    """Per-class SafeTSA size in bytes (shared header apportioned)."""
    report: dict[str, int] = {}
    encode_module(module, size_report=report)
    header_bits = report.pop("_header", 0)
    report.pop("_phases", None)
    class_count = max(len(report), 1)
    out = {}
    for name, bits in report.items():
        out[name] = (bits + header_bits // class_count + 7) // 8
    return out


def measure_program(program: str, source: Optional[str] = None, *,
                    cache=None) -> list[ClassMetrics]:
    """Compile one corpus program three ways and measure every class.

    ``cache`` is forwarded to the two SafeTSA compiles; ``None`` keeps
    the process default, ``False`` forces cold compiles.
    """
    if source is None:
        source = corpus_source(program)

    # bytecode baseline
    unit = parse_compilation_unit(source)
    world = analyze(unit)
    builder = UastBuilder(world)
    per_class = {decl.info: builder.build_class(decl)
                 for decl in unit.classes}
    compiled = compile_unit(world, per_class)

    # the unoptimised transmitted form keeps the eager (B&M) phis;
    # pruning is part of the producer-side optimisation (Figure 6)
    plain = compile_to_module(source, prune_phis=False, cache=cache)
    optimized = compile_to_module(source, optimize=True, cache=cache)
    plain_sizes = _tsa_sizes(plain)
    opt_sizes = _tsa_sizes(optimized)

    rows: list[ClassMetrics] = []
    for compiled_class in compiled:
        name = compiled_class.info.name
        row = ClassMetrics(program, name)
        row.bytecode_size = len(class_file_bytes(compiled_class))
        row.bytecode_insns = compiled_class.instruction_count()
        row.tsa_size = plain_sizes.get(name, 0)
        row.tsa_insns = _class_instruction_count(plain, name)
        row.tsa_opt_size = opt_sizes.get(name, 0)
        row.tsa_opt_insns = _class_instruction_count(optimized, name)
        row.phis_before = _class_opcode_counts(plain, name, "phi")
        row.phis_after = _class_opcode_counts(optimized, name, "phi")
        row.nullchecks_before = _class_opcode_counts(plain, name,
                                                     "nullcheck")
        row.nullchecks_after = _class_opcode_counts(optimized, name,
                                                    "nullcheck")
        row.idxchecks_before = _class_opcode_counts(plain, name, "idxcheck")
        row.idxchecks_after = _class_opcode_counts(optimized, name,
                                                   "idxcheck")
        rows.append(row)
    return rows


def _compile_wire_job(job) -> bytes:
    """Worker: one cold compile, returned as picklable wire bytes."""
    source, flags = job
    return encode_module(compile_to_module(source, cache=False, **flags))


def warm_cache(cache, jobs, max_workers: Optional[int] = None) -> int:
    """Fill ``cache`` by compiling ``jobs`` (source, flags) pairs
    concurrently.  Already-cached jobs are skipped; returns how many
    compiles actually ran.

    Compilation is pure CPU, so a process pool is the right executor;
    the wire bytes are the natural picklable result.  Falls back to a
    thread pool where subprocesses are unavailable (restricted
    sandboxes), which still overlaps the small I/O fraction.
    """
    pending = [(source, flags) for source, flags in jobs
               if cache.get(pipeline_cache_key(cache, source, **flags))
               is None]
    if not pending:
        return 0
    if max_workers == 1 or (max_workers is None
                            and (os.cpu_count() or 1) == 1):
        # no parallelism to exploit: skip the worker-process overhead
        for source, flags in pending:
            cache.put(pipeline_cache_key(cache, source, **flags),
                      _compile_wire_job((source, flags)))
        return len(pending)
    try:
        executor = concurrent.futures.ProcessPoolExecutor(max_workers)
    except (OSError, PermissionError, NotImplementedError):
        executor = concurrent.futures.ThreadPoolExecutor(max_workers)
    try:
        with executor:
            for (source, flags), wire in zip(
                    pending, executor.map(_compile_wire_job, pending)):
                cache.put(pipeline_cache_key(cache, source, **flags),
                          wire)
    except concurrent.futures.process.BrokenProcessPool:
        # e.g. fork blocked after executor creation: degrade to threads
        with concurrent.futures.ThreadPoolExecutor(max_workers) as pool:
            for (source, flags), wire in zip(
                    pending, pool.map(_compile_wire_job, pending)):
                cache.put(pipeline_cache_key(cache, source, **flags),
                          wire)
    return len(pending)


def corpus_compile_jobs(programs=None) -> list:
    """(source, flags) for every transmitted form of the corpus."""
    return [(corpus_source(program), dict(flags))
            for program in (programs or CORPUS_PROGRAMS)
            for flags in TRANSMITTED_FLAGS]


def measure_corpus(programs=None, *, cache=None,
                   max_workers: Optional[int] = None) -> list[ClassMetrics]:
    """Measure every corpus program (the full Figure 5 / 6 data set).

    With a ``cache``, the corpus's SafeTSA compiles are first warmed
    concurrently, so the serial measurement loop below runs on cache
    hits (decode-only).
    """
    programs = programs or CORPUS_PROGRAMS
    if cache:
        warm_cache(cache, corpus_compile_jobs(programs), max_workers)
    rows: list[ClassMetrics] = []
    for program in programs:
        rows.extend(measure_program(program, cache=cache))
    return rows
