# Convenience targets for the SafeTSA reproduction.

PYTHON ?= python3

.PHONY: test bench tables examples all clean

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

tables:
	$(PYTHON) -m repro.bench.runner all

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

all: test bench tables

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +; rm -rf .pytest_cache .hypothesis
