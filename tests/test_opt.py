"""Optimizer unit tests: memdep, constprop, CSE, check elimination, DCE."""

import pytest

from repro.interp.interpreter import Interpreter
from repro.opt.cse import run_cse
from repro.opt.constprop import run_constprop
from repro.opt.dce import run_dce
from repro.opt.memdep import MemDep
from repro.opt.pipeline import optimize_module
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module


def compiled(source: str, cls: str, method: str):
    module = compile_to_module(source)
    return module, module.function_named(cls, method)


def count(function, opcode: str) -> int:
    return sum(1 for b in function.reachable_blocks()
               for i in b.all_instrs() if i.opcode == opcode)


class TestMemDep:
    def test_loads_same_version_without_store(self):
        _, fn = compiled(
            "class T { int a; static int f(T t) {"
            "int x = t.a; int y = t.a; return x + y; } }", "T", "f")
        memdep = MemDep(fn)
        loads = [i for b in fn.blocks for i in b.instrs
                 if i.opcode == "getfield"]
        assert len(loads) == 2
        assert memdep.version_before(loads[0]) == \
            memdep.version_before(loads[1])

    def test_store_invalidates(self):
        _, fn = compiled(
            "class T { int a; static int f(T t) {"
            "int x = t.a; t.a = 5; int y = t.a; return x + y; } }",
            "T", "f")
        memdep = MemDep(fn)
        loads = [i for b in fn.blocks for i in b.instrs
                 if i.opcode == "getfield"]
        assert memdep.version_before(loads[0]) != \
            memdep.version_before(loads[1])

    def test_call_invalidates(self):
        _, fn = compiled(
            "class T { int a; static void g() { } static int f(T t) {"
            "int x = t.a; g(); int y = t.a; return x + y; } }", "T", "f")
        memdep = MemDep(fn)
        loads = [i for b in fn.blocks for i in b.instrs
                 if i.opcode == "getfield"]
        assert memdep.version_before(loads[0]) != \
            memdep.version_before(loads[1])

    def test_join_without_stores_preserves_version(self):
        _, fn = compiled(
            "class T { int a; static int f(T t, boolean c) {"
            "int x = t.a; int y = 0; if (c) y = 1; else y = 2;"
            "int z = t.a; return x + y + z; } }", "T", "f")
        memdep = MemDep(fn)
        loads = [i for b in fn.blocks for i in b.instrs
                 if i.opcode == "getfield"]
        assert memdep.version_before(loads[0]) == \
            memdep.version_before(loads[1])

    def test_store_in_one_branch_invalidates_join(self):
        _, fn = compiled(
            "class T { int a; static int f(T t, boolean c) {"
            "int x = t.a; if (c) t.a = 9;"
            "int z = t.a; return x + z; } }", "T", "f")
        memdep = MemDep(fn)
        loads = [i for b in fn.blocks for i in b.instrs
                 if i.opcode == "getfield"]
        assert memdep.version_before(loads[0]) != \
            memdep.version_before(loads[1])


class TestCse:
    def test_pure_expression_merged(self):
        module, fn = compiled(
            "class T { static int f(int a, int b) {"
            "int x = a * b + 1; int y = a * b + 1; return x + y; } }",
            "T", "f")
        before = count(fn, "primitive")
        stats = run_cse(fn)
        assert stats.eliminated >= 2
        assert count(fn, "primitive") < before
        verify_module(module)

    def test_commutative_operands_normalised(self):
        module, fn = compiled(
            "class T { static int f(int a, int b) {"
            "return a * b + b * a; } }", "T", "f")
        run_cse(fn)
        muls = [i for b in fn.blocks for i in b.instrs
                if i.opcode == "primitive" and i.operation.name == "mul"]
        assert len(muls) == 1
        verify_module(module)

    def test_non_commutative_not_merged(self):
        module, fn = compiled(
            "class T { static int f(int a, int b) {"
            "return (a - b) + (b - a); } }", "T", "f")
        run_cse(fn)
        subs = [i for b in fn.blocks for i in b.instrs
                if i.opcode == "primitive" and i.operation.name == "sub"]
        assert len(subs) == 2

    def test_load_merged_when_no_store_between(self):
        module, fn = compiled(
            "class T { int a; static int f(T t) {"
            "return t.a + t.a; } }", "T", "f")
        run_cse(fn)
        assert count(fn, "getfield") == 1
        verify_module(module)

    def test_load_not_merged_across_store(self):
        module, fn = compiled(
            "class T { int a; static int f(T t) {"
            "int x = t.a; t.a = x + 1; return x + t.a; } }", "T", "f")
        run_cse(fn)
        assert count(fn, "getfield") == 2

    def test_load_not_merged_across_call(self):
        module, fn = compiled(
            "class T { int a; void bump() { a++; }"
            "static int f(T t) { int x = t.a; t.bump(); return x + t.a; } }",
            "T", "f")
        run_cse(fn)
        assert count(fn, "getfield") == 2

    def test_arraylen_merged_despite_stores(self):
        # array lengths are immutable (Appendix A)
        module, fn = compiled(
            "class T { static int f(int[] a) {"
            "a[0] = a.length; a[1] = a.length; return a.length; } }",
            "T", "f")
        run_cse(fn)
        assert count(fn, "arraylen") == 1
        verify_module(module)

    def test_nullcheck_subsumed_by_dominating_check(self):
        module, fn = compiled(
            "class T { int a; int b; static int f(T t) {"
            "return t.a + t.b; } }", "T", "f")
        assert count(fn, "nullcheck") == 2
        run_cse(fn)
        assert count(fn, "nullcheck") == 1
        verify_module(module)

    def test_nullcheck_through_new_removed(self):
        module, fn = compiled(
            "class T { int a; static int f() {"
            "T t = new T(); return t.a; } }", "T", "f")
        assert count(fn, "nullcheck") == 1
        from repro.opt.cleanup import remove_stale_exception_edges
        run_cse(fn)
        remove_stale_exception_edges(fn)
        assert count(fn, "nullcheck") == 0
        verify_module(module)

    def test_idxcheck_subsumed_same_array_and_index(self):
        module, fn = compiled(
            "class T { static int f(int[] a, int i) {"
            "a[i] = a[i] + 1; return a[i]; } }", "T", "f")
        before = count(fn, "idxcheck")
        assert before == 3
        run_cse(fn)
        assert count(fn, "idxcheck") == 1
        verify_module(module)

    def test_checks_not_merged_across_branches(self):
        module, fn = compiled(
            "class T { int a; static int f(T t, boolean c) {"
            "if (c) return t.a; else return t.a; } }", "T", "f")
        run_cse(fn)
        # neither branch dominates the other: both checks stay
        assert count(fn, "nullcheck") == 2

    def test_check_hoisting_is_never_performed(self):
        # CSE only reuses *dominating* checks; it must not move them
        module, fn = compiled(
            "class T { int a; static int f(T t, boolean c) {"
            "int r = 0; if (c) r = t.a; return r; } }", "T", "f")
        run_cse(fn)
        assert count(fn, "nullcheck") == 1
        result = Interpreter(module).run_function(
            fn, [None, False])
        assert result.exception is None and result.value == 0


class TestConstProp:
    def test_folds_constant_tree(self):
        module, fn = compiled(
            "class T { static int f() { return (3 + 4) * 2; } }", "T", "f")
        folded = run_constprop(fn)
        assert folded >= 2
        assert count(fn, "primitive") == 0
        verify_module(module)

    def test_division_by_zero_not_folded(self):
        module, fn = compiled(
            "class T { static int f() { int z = 0; return 1 / z; } }",
            "T", "f")
        run_constprop(fn)
        assert count(fn, "xprimitive") == 1
        result = Interpreter(module).run_function(fn, [])
        assert result.exception_name() == "java.lang.ArithmeticException"

    def test_division_by_nonzero_constant_folded(self):
        module, fn = compiled(
            "class T { static int f() { int d = 4; return 12 / d; } }",
            "T", "f")
        run_constprop(fn)
        assert count(fn, "xprimitive") == 0
        verify_module(module)

    def test_instanceof_null_folds_false(self):
        module, fn = compiled(
            "class T { static boolean f() {"
            "String s = null; return s instanceof String; } }", "T", "f")
        run_constprop(fn)
        assert count(fn, "instanceof") == 0
        result = Interpreter(module).run_function(fn, [])
        assert result.value is False


class TestDce:
    def test_dead_pure_code_removed(self):
        module, fn = compiled(
            "class T { static int f(int a) {"
            "int unused = a * a + 7; return a; } }", "T", "f")
        removed = run_dce(fn)
        assert removed.get("primitive", 0) >= 2
        verify_module(module)

    def test_stores_and_calls_kept(self):
        module, fn = compiled(
            "class T { static int calls; static int g() "
            "{ calls++; return 1; }"
            "static int f() { int unused = g(); return 2; } }", "T", "f")
        run_dce(fn)
        assert count(fn, "xcall") == 1

    def test_trapping_instructions_kept(self):
        module, fn = compiled(
            "class T { static int f(int a, int b) {"
            "int unused = a / b; return a; } }", "T", "f")
        run_dce(fn)
        assert count(fn, "xprimitive") == 1  # the division may throw

    def test_dead_load_removed(self):
        # safe operands mean a dead getfield provably cannot trap
        module, fn = compiled(
            "class T { int a; static int f(T t, int k) {"
            "int unused = t.a; return k; } }", "T", "f")
        run_dce(fn)
        assert count(fn, "getfield") == 0
        # the nullcheck stays: it can throw
        assert count(fn, "nullcheck") == 1


class TestPipeline:
    def test_full_pipeline_preserves_corpus_behaviour(self):
        from repro.bench.corpus import corpus_source
        source = corpus_source("Environment")
        plain = compile_to_module(source)
        expected = Interpreter(plain, max_steps=50_000_000) \
            .run_main("Environment")
        optimized = compile_to_module(source)
        optimize_module(optimized)
        verify_module(optimized)
        actual = Interpreter(optimized, max_steps=50_000_000) \
            .run_main("Environment")
        assert actual.stdout == expected.stdout

    def test_pipeline_is_idempotent(self):
        module = compile_to_module(
            "class T { int a; static int f(T t) { return t.a + t.a; } }")
        optimize_module(module)
        first = module.instruction_count()
        optimize_module(module)
        assert module.instruction_count() == first
        verify_module(module)

    def test_pass_selection(self):
        module = compile_to_module(
            "class T { static int f() { return 1 + 2; } }")
        stats = optimize_module(module, passes=["constprop"])
        assert any("constprop_folded" in s for s in stats)
        assert not any("cse_eliminated" in s for s in stats)


class TestDeadHandlerRemoval:
    def test_fully_eliminated_try_drops_handler(self):
        from repro.encode.deserializer import decode_module
        from repro.encode.serializer import encode_module
        source = """
        class T {
            int a;
            static int f(T t) {
                int before = t.a;
                int result = 0;
                try { result = t.a; }
                catch (NullPointerException e) { result = -1; }
                return before + result;
            }
            static void main() {
                T t = new T(); t.a = 21;
                System.out.println(f(t));
            }
        }
        """
        plain = compile_to_module(source)
        optimized = compile_to_module(source, optimize=True)
        verify_module(optimized)
        # handler is gone: no caughtexc survives
        assert optimized.count_opcodes("caughtexc") == 0
        assert optimized.count_opcodes("nullcheck") \
            < plain.count_opcodes("nullcheck")
        decoded = decode_module(encode_module(optimized))
        verify_module(decoded)
        result = Interpreter(decoded).run_main("T")
        assert result.stdout == "42\n"

    def test_partially_eliminated_try_keeps_handler(self):
        source = """
        class T {
            int a;
            static int f(T t, int d) {
                int before = t.a;
                int result = 0;
                try { result = t.a / d; }   // division still traps
                catch (ArithmeticException e) { result = -1; }
                return before + result;
            }
        }
        """
        optimized = compile_to_module(source, optimize=True)
        verify_module(optimized)
        assert optimized.count_opcodes("caughtexc") == 1
        fn = optimized.function_named("T", "f")
        from repro.interp.heap import ObjectRef
        obj = ObjectRef(optimized.world.require("T"))
        obj.fields[0] = 10
        result = Interpreter(optimized).run_function(fn, [obj, 0])
        assert result.value == 9  # 10 + (-1) via the handler

    def test_dead_handler_inside_loop(self):
        source = """
        class T {
            int a;
            static int f(T t, int n) {
                int total = t.a;
                for (int i = 0; i < n; i++) {
                    try { total += t.a; }
                    catch (NullPointerException e) { total = -1; }
                }
                return total;
            }
            static void main() {
                T t = new T(); t.a = 2;
                System.out.println(f(t, 5));
            }
        }
        """
        plain = Interpreter(compile_to_module(source)).run_main("T")
        optimized_module = compile_to_module(source, optimize=True)
        verify_module(optimized_module)
        optimized = Interpreter(optimized_module).run_main("T")
        assert plain.stdout == optimized.stdout == "12\n"

    def test_cascading_dead_handlers(self):
        # eliminating the inner try's checks can orphan the OUTER
        # dispatch too (its only exception points were in the inner
        # handler); removal must iterate to a fixpoint
        from repro.encode.deserializer import decode_module
        from repro.encode.serializer import encode_module
        source = """
        class T {
            int a;
            static int f(T t) {
                int r = t.a;                       // dominating check
                try {
                    try { r += t.a; }              // eliminated
                    catch (NullPointerException inner) { r = -1; }
                } catch (NullPointerException outer) { r = -2; }
                return r;
            }
            static void main() {
                T t = new T(); t.a = 3;
                System.out.println(f(t));
            }
        }
        """
        plain = Interpreter(compile_to_module(source)).run_main("T")
        optimized = compile_to_module(source, optimize=True)
        verify_module(optimized)
        assert optimized.count_opcodes("caughtexc") == 0
        decoded = decode_module(encode_module(optimized))
        verify_module(decoded)
        result = Interpreter(decoded).run_main("T")
        assert result.stdout == plain.stdout == "6\n"

    def test_nested_dead_handlers_with_trapping_handlers(self):
        # Found by the wire fuzz lane (seed 90): three nested tries
        # where every handler still contains a live exception point.
        # Excising the innermost try discards the mid dispatch's only
        # exc predecessors; the mid and outer dispatches are then
        # unreachable but still in the CST, so the fixpoint must keep
        # re-deriving their edges rather than dropping them from the
        # block list with stale preds — otherwise the outer try
        # survives and the join phis keep operands for dead handler
        # edges that the dominator-relative encoder cannot number.
        from repro.encode.deserializer import decode_module
        from repro.encode.serializer import encode_module
        source = """
        class T {
            static int f(int d) {
                int r = 9;
                try {
                    try {
                        try { r = 84 / 2; }            // folds away
                        catch (ArithmeticException e1) { r = 100 / d; }
                    } catch (ArithmeticException e2) { r = 200 / d; }
                } catch (ArithmeticException e3) { r = -1; }
                return r;
            }
            static void main() {
                System.out.println(f(0));
            }
        }
        """
        plain = Interpreter(compile_to_module(source)).run_main("T")
        optimized = compile_to_module(source, optimize=True)
        verify_module(optimized)
        assert optimized.count_opcodes("caughtexc") == 0
        wire = encode_module(optimized)
        decoded = decode_module(wire)
        verify_module(decoded)
        assert encode_module(decoded) == wire
        result = Interpreter(decoded).run_main("T")
        assert result.stdout == plain.stdout == "42\n"
