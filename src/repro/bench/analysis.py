"""Benchmark for the analysis layer: verify + lint cost per artifact.

Complements E5 (verifycost): E5 compares SafeTSA verification against
JVM bytecode dataflow verification, this report measures the *new*
diagnostics stack -- fail-fast verification, collect-all verification,
and the full lint driver (nullness + range + liveness dataflow) -- over
every corpus artifact (each program in its plain and optimized variant,
the same 20 modules the codec benchmark times), together with the
diagnostic counts each artifact produces.  The numbers land in
``BENCH_analysis.json``.
"""

from __future__ import annotations

import os

from repro.analysis.diagnostics import count_by_severity
from repro.analysis.lint import lint_module
from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module


def _artifact_report(name: str, variant: str, module, repeats: int,
                     best_of) -> dict:
    verify_s = best_of(lambda: verify_module(module), repeats=repeats)
    holder = []
    lint_s = best_of(lambda: (holder.clear(),
                              holder.extend(lint_module(module))),
                     repeats=repeats)
    diagnostics = holder
    codes: dict[str, int] = {}
    for diagnostic in diagnostics:
        codes[diagnostic.code] = codes.get(diagnostic.code, 0) + 1
    return {
        "program": name,
        "variant": variant,
        "functions": len(module.functions),
        "instructions": module.instruction_count(),
        "verify_ms": round(verify_s * 1000, 3),
        "lint_ms": round(lint_s * 1000, 3),
        "diagnostics": len(diagnostics),
        "counts": count_by_severity(diagnostics),
        "codes": dict(sorted(codes.items())),
    }


def analysis_report(programs=None, repeats=None, cache=None) -> dict:
    """All the numbers behind ``BENCH_analysis.json``."""
    from repro.bench.runner import best_of

    if repeats is None:
        repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    programs = list(programs or CORPUS_PROGRAMS)
    artifacts = []
    for name in programs:
        source = corpus_source(name)
        for variant, optimize in (("plain", False), ("optimized", True)):
            module = compile_to_module(source, optimize=optimize,
                                       cache=cache)
            artifacts.append(_artifact_report(name, variant, module,
                                              repeats, best_of))
    totals = {
        "artifacts": len(artifacts),
        "verify_ms": round(sum(a["verify_ms"] for a in artifacts), 3),
        "lint_ms": round(sum(a["lint_ms"] for a in artifacts), 3),
        "diagnostics": sum(a["diagnostics"] for a in artifacts),
        "errors": sum(a["counts"]["error"] for a in artifacts),
        "warnings": sum(a["counts"]["warning"] for a in artifacts),
        "infos": sum(a["counts"]["info"] for a in artifacts),
    }
    return {
        "schema": "repro-analysis/1",
        "programs": programs,
        "repeats": repeats,
        "artifacts": artifacts,
        "totals": totals,
    }
