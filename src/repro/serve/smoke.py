"""Serving smoke check: ``python -m repro.serve.smoke``.

Starts a real server on an ephemeral port, then walks the whole
distribution lifecycle once over HTTP -- compile, publish (single and
v2 batch), fetch (digest re-verified client-side), verify, run, a
rejected hostile stream, a quota rejection, and a full client-side
chain audit.  Exits nonzero on the first broken invariant; CI runs
this as the fast serving gate (``make serve-smoke``) next to the
sharded pytest lanes.
"""

from __future__ import annotations

import sys

from repro.serve import (
    ManualClock,
    ServeClient,
    ServeError,
    ServeServer,
    ServeService,
    TenantLimits,
)

SOURCE = """\
class Main {
    static int main() {
        int total = 0;
        for (int i = 0; i < 10; i = i + 1) { total = total + i; }
        return total;
    }
}
"""


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL: {message}")
    raise SystemExit(1)


def main() -> int:
    clock = ManualClock()
    service = ServeService(
        clock=clock,
        limits=TenantLimits(requests_per_window=64, window_seconds=60.0))
    server = ServeServer(service).start()
    try:
        client = ServeClient("127.0.0.1", server.port, tenant="smoke")
        if not client.healthz()["ok"]:
            fail("healthz not ok")

        compiled = client.compile(SOURCE, optimize=True,
                                  return_bytes=True)
        published = client.publish("sum", source=SOURCE, optimize=True)
        if published["digest"] != compiled["digest"]:
            fail("publish digest disagrees with compile digest")
        wire = client.fetch(published["digest"])
        if wire != compiled["wire"]:
            fail("fetched bytes are not the compiled bytes")
        if client.verify(digest=published["digest"])["classes"] != 1:
            fail("verify miscounted classes")
        if client.run(digest=published["digest"])["value"] != 45:
            fail("run returned the wrong value")

        batch = client.publish_batch(
            [{"name": f"m{i}", "source": SOURCE.replace("10", str(i))}
             for i in range(2, 5)], wire_v2=True)
        for entry in batch["published"]:
            if entry["entry"]["manifest"]["format"] != "stsa2":
                fail("batch publish did not produce v2 envelopes")
            client.verify(digest=entry["digest"])

        try:
            client.verify(wire=b"not a module at all")
        except ServeError as error:
            if error.code != "SERVE-REJECTED":
                fail(f"hostile stream raised {error.code}, "
                     f"not SERVE-REJECTED")
        else:
            fail("hostile stream was accepted")

        head = client.audit(key=b"repro-serve-dev-key")
        if head != client.healthz()["log_head"]:
            fail("audited head does not match the server head")

        try:
            while True:  # the rate window must close eventually
                client.healthz()
        except ServeError as error:
            if error.code != "SERVE-RATE":
                fail(f"rate exhaustion raised {error.code}")

        total = len(batch["published"]) + 1
        print(f"serve-smoke: OK: published {total} modules, "
              f"head {head[:16]}..., rate limit enforced")
        return 0
    finally:
        server.stop()


if __name__ == "__main__":
    sys.exit(main())
