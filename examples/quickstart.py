"""Quickstart: compile Java source to SafeTSA, ship it, run it.

Run with:  python examples/quickstart.py
"""

from repro import compile_source, decode_module, encode_module
from repro.interp.interpreter import Interpreter
from repro.ssa.printer import format_function

SOURCE = """
class Greeter {
    String name;

    Greeter(String name) { this.name = name; }

    String greet(int times) {
        String out = "";
        for (int i = 0; i < times; i++) {
            out = out + "hello, " + name + "! ";
        }
        return out;
    }

    static void main() {
        Greeter greeter = new Greeter("SafeTSA");
        System.out.println(greeter.greet(3));
        int[] squares = new int[10];
        for (int i = 0; i < squares.length; i++) {
            squares[i] = i * i;
        }
        System.out.println("sum of squares: " + sum(squares));
    }

    static int sum(int[] values) {
        int total = 0;
        for (int i = 0; i < values.length; i++) {
            total += values[i];
        }
        return total;
    }
}
"""


def main() -> None:
    # 1. producer: compile (and optimise) to the SafeTSA representation
    module = compile_source(SOURCE, optimize=True)
    print(f"compiled {len(module.functions)} methods, "
          f"{module.instruction_count()} SafeTSA instructions")

    # 2. look at one method in SSA form
    greet = module.function_named("Greeter", "greet")
    print()
    print(format_function(greet))

    # 3. externalise: every reference becomes a dominator-relative (l, r)
    #    pair, so ill-formed programs have no encoding at all
    wire = encode_module(module)
    print(f"\nwire format: {len(wire)} bytes")

    # 4. consumer: decoding *is* the safety check
    received = decode_module(wire)

    # 5. execute
    result = Interpreter(received).run_main("Greeter")
    print("\nprogram output:")
    print(result.stdout, end="")


if __name__ == "__main__":
    main()
