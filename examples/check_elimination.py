"""Transporting the results of check elimination (paper Sections 1 and 4).

The paper's headline optimisation: because null-checked values live on
separate ``safe-ref`` register planes and bounds-checked indices on
per-array ``safe-index`` planes, the *producer* can eliminate redundant
checks and the consumer can trust the result without re-analysis --
a malicious producer cannot falsely claim a check is redundant, because
skipping a required check leaves an operand on the wrong plane, which is
unrepresentable in the wire format.

This example shows the static and dynamic effect on Linpack, the paper's
array-check showcase.

Run with:  python examples/check_elimination.py
"""

from repro.bench.corpus import corpus_source
from repro.interp.interpreter import Interpreter
from repro.pipeline import compile_to_module


def measure(label: str, optimize: bool) -> None:
    source = corpus_source("Linpack")
    module = compile_to_module(source, optimize=optimize)
    interp = Interpreter(module, max_steps=50_000_000)
    result = interp.run_main("Linpack")
    assert result.exception is None
    print(f"{label}:")
    print(f"  static  null checks: {module.count_opcodes('nullcheck'):5}   "
          f"bounds checks: {module.count_opcodes('idxcheck'):5}")
    print(f"  dynamic null checks: {interp.check_counts['nullcheck']:5}   "
          f"bounds checks: {interp.check_counts['idxcheck']:5}")
    print(f"  output: {result.stdout.splitlines()[1]}")


def inspect_daxpy() -> None:
    """daxpy reads dy[i] twice (load + store): one bounds check after
    optimisation, two before."""
    source = corpus_source("Linpack")
    for optimize in (False, True):
        module = compile_to_module(source, optimize=optimize)
        daxpy = module.function_named("Linpack", "daxpy")
        nullchecks = sum(1 for b in daxpy.reachable_blocks()
                         for i in b.instrs if i.opcode == "nullcheck")
        idxchecks = sum(1 for b in daxpy.reachable_blocks()
                        for i in b.instrs if i.opcode == "idxcheck")
        label = "optimised" if optimize else "plain    "
        print(f"  daxpy {label}: {nullchecks} null checks, "
              f"{idxchecks} bounds checks, "
              f"{daxpy.instruction_count()} instructions")


def main() -> None:
    measure("before producer-side optimisation", optimize=False)
    print()
    measure("after  producer-side optimisation", optimize=True)
    print()
    print("the daxpy kernel (dy[i] = dy[i] + da*dx[i]):")
    inspect_daxpy()
    print()
    print("The eliminated checks are *gone from the transmitted code*;")
    print("the consumer executes fewer checks without re-deriving the")
    print("analysis, and cannot be tricked into skipping a required one.")


if __name__ == "__main__":
    main()
