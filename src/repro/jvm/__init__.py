"""The Java-bytecode baseline.

A stack-machine compiler from the same UAST the SafeTSA pipeline uses,
plus everything needed to compare against it the way the paper does:

- :mod:`repro.jvm.opcodes`   -- the JVM instruction subset with real byte
  sizes;
- :mod:`repro.jvm.codegen`   -- UAST -> bytecode (javac-shaped output:
  comparison-fused branches, exception tables, ``multianewarray``);
- :mod:`repro.jvm.classfile` -- a faithful class-file writer (constant
  pool, method_info, Code attributes; ``javac -g:none`` equivalent) for
  the Figure 5 size columns;
- :mod:`repro.jvm.interp`    -- a bytecode interpreter sharing the heap
  and runtime with the SafeTSA interpreter (the differential oracle);
- :mod:`repro.jvm.verifier`  -- the stack/local dataflow verifier whose
  cost SafeTSA's counter check is compared against (experiment E5).
"""

from repro.jvm.codegen import CompiledClass, CompiledMethod, compile_unit
from repro.jvm.classfile import class_file_bytes
from repro.jvm.interp import BytecodeInterpreter
from repro.jvm.verifier import BytecodeVerifyError, verify_method

__all__ = [
    "CompiledClass",
    "CompiledMethod",
    "compile_unit",
    "class_file_bytes",
    "BytecodeInterpreter",
    "BytecodeVerifyError",
    "verify_method",
]
