"""Property-based tests (hypothesis) over the core invariants.

The headline property: for *arbitrary generated programs*, the SafeTSA
pipeline (construct, optimise, encode, decode, execute) agrees with the
independent bytecode pipeline, and every artifact verifies.
"""

import pytest

from hypothesis import example, given, settings, strategies as st

from repro import jmath
from repro.encode.bitio import BitReader, BitWriter
from repro.encode.deserializer import DecodeError, decode_module
from repro.encode.serializer import encode_module
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module


# ======================================================================
# bit-level codes

@given(st.lists(st.tuples(st.integers(min_value=1, max_value=300),
                          st.integers(min_value=0))))
def test_bounded_code_round_trip(pairs):
    normalized = [(alphabet, value % alphabet) for alphabet, value in pairs]
    writer = BitWriter()
    for alphabet, value in normalized:
        writer.write_bounded(value, alphabet)
    reader = BitReader(writer.getvalue())
    for alphabet, value in normalized:
        assert reader.read_bounded(alphabet) == value


@given(st.lists(st.integers(min_value=0, max_value=2**40)))
def test_gamma_round_trip(values):
    writer = BitWriter()
    for value in values:
        writer.write_gamma(value)
    reader = BitReader(writer.getvalue())
    for value in values:
        assert reader.read_gamma() == value


@given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1)))
def test_signed_gamma_round_trip(values):
    writer = BitWriter()
    for value in values:
        writer.write_signed_gamma(value)
    reader = BitReader(writer.getvalue())
    for value in values:
        assert reader.read_signed_gamma() == value


@given(st.integers(min_value=1, max_value=1000))
def test_phase_in_code_is_near_optimal(alphabet):
    """No symbol costs more than ceil(log2 n) bits."""
    import math
    ceiling = math.ceil(math.log2(alphabet)) if alphabet > 1 else 0
    for value in range(0, alphabet, max(alphabet // 17, 1)):
        writer = BitWriter()
        writer.write_bounded(value, alphabet)
        assert writer.bit_length() <= ceiling


# ======================================================================
# Java arithmetic

@given(st.integers(), st.integers())
def test_i32_is_32_bit_ring_homomorphism(a, b):
    assert jmath.i32(a + b) == jmath.i32(jmath.i32(a) + jmath.i32(b))
    assert jmath.i32(a * b) == jmath.i32(jmath.i32(a) * jmath.i32(b))
    assert jmath.INT_MIN <= jmath.i32(a) <= jmath.INT_MAX


@given(st.integers(min_value=jmath.INT_MIN, max_value=jmath.INT_MAX),
       st.integers(min_value=jmath.INT_MIN, max_value=jmath.INT_MAX))
def test_div_rem_reconstruct(a, b):
    if b == 0:
        return
    assert jmath.idiv(a, b) * b + jmath.irem(a, b) == a
    assert abs(jmath.irem(a, b)) < abs(b)


@given(st.integers(min_value=jmath.INT_MIN, max_value=jmath.INT_MAX),
       st.integers())
def test_shifts_match_mask_semantics(a, s):
    assert jmath.ishl(a, s, 32) == jmath.ishl(a, s & 31, 32)
    assert jmath.iushr(a, s, 32) == jmath.iushr(a, s & 31, 32)


# ======================================================================
# random-program differential testing
#
# The program grammar lives in repro.fuzz.gen (one grammar, two
# frontends: a seeded random.Random for campaigns, a hypothesis draw
# here -- so shrinking still works); the agreement matrix lives in
# repro.fuzz.oracle.  These tests drive both through hypothesis.

from repro.fuzz.gen import GeneratedProgram, program_strategy
from repro.fuzz.oracle import check_program


@pytest.mark.slow
@given(program_strategy())
@settings(max_examples=40, deadline=None)
@example(
    generated=GeneratedProgram(source='class Shape {\n    int tag;\n    int weigh(int x) { return ((tag <= tag) ? x : x); }\n}\nclass Ring extends Shape {\n    int weigh(int x) { return (tag % (x | 1)); }\n}\nclass Main {\n    static int h(int x) {\n        int a = x; int b = x - 1; int c = 7;\n        return ((-20 - a) | a);\n    }\n    static void main() {\n        int a = -96;\n        int b = 82;\n        int c = 78;\n        int[] arr = new int[8];\n        for (int f0 = 0; f0 < 8; f0++) {\n            arr[f0] = f0 * 5 + 3;\n        }\n        Shape s = new Shape();\n        s.tag = -12;\n        switch (a & 3) { case 0: a = 1; case 1: a = 2; break; case 2: arr[(1 & 7)] = -57; break; default: a = 15; }\n        { int d1 = 2; do { d1 = d1 - 1; for (int lo2 = 0; lo2 < 4; lo2++) { for (int ln3 = 0; ln3 < arr.length; ln3++) { c = c + arr[lo2 & 7]; } arr[lo2 & 7] = c; } } while (d1 > 0); }\n        c = (-83 % ((a * ((c > 0) ? b : a)) | 1));\n        for (int lo4 = 0; lo4 < 3; lo4++) { for (int ln5 = 0; ln5 < arr.length; ln5++) { b = b + arr[lo4 & 7]; } arr[lo4 & 7] = b; }\n        int sum = 0;\n        for (int f1 = 0; f1 < 8; f1++) { sum += arr[f1]; }\n        System.out.println(a + " " + b + " " + c + " " + sum\n                           + " " + s.weigh(a) + " " + s.tag);\n    }\n}\n',
     main_class='Main',
     seed=None),
).via('discovered failure')
def test_generated_programs_agree_across_pipelines(generated):
    result = check_program(generated.source, generated.main_class)
    assert not result.invalid, "generator produced an uncompilable program"
    assert result.ok, str(result.divergence)
    # the full matrix ran: reference + optimised + pass specs + wire +
    # jobs + jit + bytecode
    assert result.pipelines >= 7


@given(program_strategy())
@settings(max_examples=15, deadline=None)
def test_generated_programs_reencode_identically(generated):
    module = compile_to_module(generated.source)
    wire = encode_module(module)
    assert encode_module(decode_module(wire)) == wire


# ======================================================================
# wire-format mutation safety

@given(st.binary(min_size=0, max_size=300))
@settings(max_examples=60, deadline=None)
def test_arbitrary_bytes_never_yield_invalid_module(data):
    try:
        module = decode_module(data)
    except DecodeError:
        return
    verify_module(module)  # whatever decodes must verify


@given(st.integers(min_value=0), st.integers(min_value=1, max_value=255))
@settings(max_examples=80, deadline=None)
def test_single_byte_mutations_safe(position, xor):
    source = ("class T { static int f(int[] a, int i) "
              "{ return a[i] + a[i]; } }")
    module = compile_to_module(source, optimize=True)
    wire = bytearray(encode_module(module))
    wire[position % len(wire)] ^= xor
    try:
        mutated = decode_module(bytes(wire))
    except DecodeError:
        return
    verify_module(mutated)
