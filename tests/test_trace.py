"""Speculative trace tier (repro.interp.trace) tests.

The tracing interpreter speculates: it compiles the hot path of a
loop into straight-line Python and keeps the interpreter semantics
behind guards.  Every test here pins the commit/abort contract -- a
guard that fails mid-trace must fall back to the interpreter
*bit-identically*: same stdout, same trap identity, same ``steps``,
same dynamic ``check_counts``.  The matrix covers every guard kind
the compiler emits (branch, nullcheck, idxcheck, cast, arithmetic
trap, negative allocation, covariant store, throwing call), plus the
blacklist protocol, the warm trace cache, the serve endpoint, and the
CLI flag.
"""

import pytest

from repro.cache import TraceCache
from repro.encode.serializer import encode_module
from repro.interp.interpreter import Interpreter, StepLimitExceeded
from repro.interp.trace import TracingInterpreter
from repro.loader.fused import load_module
from repro.pipeline import compile_to_module


#: low enough that a few dozen loop iterations tier up
THRESHOLD = 4


def observe(interp, class_name=None):
    """Everything the oracle's trace lane compares."""
    result = interp.run_main(class_name)
    return (result.stdout, result.exception_name(), interp.steps,
            dict(interp.check_counts))


def assert_parity(source, *, class_name=None, optimize=False,
                  max_steps=5_000_000, threshold=THRESHOLD):
    """Run untraced and traced; the observations must be identical.

    Returns ``(tracing_interpreter, observation)`` so tests can also
    assert on the trace statistics (the parity alone would pass
    vacuously if no trace ever ran).
    """
    module = compile_to_module(source, optimize=optimize)
    plain = observe(Interpreter(module, max_steps=max_steps),
                    class_name)
    traced_interp = TracingInterpreter(module, max_steps=max_steps,
                                       threshold=threshold,
                                       trace_cache=TraceCache())
    traced = observe(traced_interp, class_name)
    assert traced == plain, (
        f"traced execution diverged:\n  traced:   {traced!r}\n"
        f"  untraced: {plain!r}")
    return traced_interp, plain


def loop_main(body, extra_classes="", setup="", after=""):
    return (f"{extra_classes}\n"
            f"class Main {{ static void main() {{\n"
            f"{setup}\n"
            f"int s = 0;\n"
            f"for (int i = 0; i < 200; i = i + 1) {{\n{body}\n}}\n"
            f"{after}\n"
            f"System.out.println(s);\n"
            f"}} }}")


# ======================================================================
# guard exits: every guard kind fails mid-trace after the loop tiered up

class TestGuardExits:
    def assert_traced_trap(self, source, exception, **kwargs):
        interp, plain = assert_parity(source, **kwargs)
        stats = interp.trace_stats()
        assert stats["entries"] > 0, \
            f"loop never entered its trace: {stats}"
        assert plain[1] == exception
        return interp, plain

    def test_branch_guard_exits_and_loop_continues(self):
        # the branch is stable for 150 iterations, then flips: the
        # guard exits mid-trace and the interpreter finishes the loop
        interp, plain = assert_parity(loop_main(
            "if (i < 150) { s = s + 1; } else { s = s + 1000; }"))
        assert plain[0] == "50150\n"
        assert interp.trace_stats()["entries"] > 0

    def test_idxcheck_guard_trap(self):
        self.assert_traced_trap(loop_main(
            "s = s + a[i];",
            setup="int[] a = new int[150];"),
            "java.lang.ArrayIndexOutOfBoundsException")

    def test_nullcheck_guard_trap(self):
        self.assert_traced_trap(loop_main(
            "if (i == 150) { b = null; }\ns = s + b.v;",
            extra_classes="class Box { int v = 1; }",
            setup="Box b = new Box();"),
            "java.lang.NullPointerException")

    def test_cast_guard_trap(self):
        self.assert_traced_trap(loop_main(
            "A x;\nif (i < 150) { x = new B(); } else { x = new A(); }\n"
            "B y = (B) x;\ns = s + y.v;",
            extra_classes="class A { }\nclass B extends A { int v = 1; }"),
            "java.lang.ClassCastException")

    def test_division_trap_mid_trace(self):
        self.assert_traced_trap(loop_main(
            "s = s + 1000 / (150 - i);"),
            "java.lang.ArithmeticException")

    def test_negative_allocation_trap_mid_trace(self):
        self.assert_traced_trap(loop_main(
            "int[] a = new int[150 - i];\ns = s + a.length;"),
            "java.lang.NegativeArraySizeException")

    def test_covariant_store_trap_mid_trace(self):
        self.assert_traced_trap(loop_main(
            "A x;\nif (i < 150) { x = new B(); } else { x = new A(); }\n"
            "arr[0] = x;\ns = s + 1;",
            extra_classes="class A { }\nclass B extends A { }",
            setup="A[] arr = new B[1];"),
            "java.lang.ArrayStoreException")

    def test_call_throws_late(self):
        # a call inside the trace body throws only after the loop
        # tiered up; the trap must carry the interpreter's identity
        self.assert_traced_trap(loop_main(
            "s = s + Main.step(i);",
            extra_classes="",
            setup="").replace(
                "class Main { static void main() {",
                "class Main {\n"
                "static int step(int i) {\n"
                "  if (i > 150) { throw new IllegalStateException"
                "(\"late\"); }\n  return 1;\n}\n"
                "static void main() {"),
            "java.lang.IllegalStateException")

    def test_trap_caught_inside_loop_body(self):
        # the handler is *inside* the loop: control re-enters the loop
        # after the guard exit, and the trace keeps re-entering too
        interp, plain = assert_parity(loop_main(
            "try { s = s + 1000 / (i % 7 - 3); }\n"
            "catch (ArithmeticException e) { s = s + 1; }"))
        assert plain[1] is None
        assert interp.trace_stats()["entries"] > 0

    def test_step_limit_identical(self):
        # the step budget must deplete identically through the trace
        source = loop_main("s = s + i;")
        module = compile_to_module(source)
        with pytest.raises(StepLimitExceeded):
            Interpreter(module, max_steps=300).run_main()
        with pytest.raises(StepLimitExceeded):
            TracingInterpreter(module, max_steps=300,
                               threshold=THRESHOLD,
                               trace_cache=TraceCache()).run_main()


# ======================================================================
# abort + blacklist protocol

class TestBlacklist:
    def test_unstable_branch_aborts_then_blacklists(self):
        from repro.bench.trace import ABORT_SOURCE
        interp, plain = assert_parity(ABORT_SOURCE,
                                      class_name="AbortStorm",
                                      max_steps=50_000_000)
        stats = interp.trace_stats()
        assert stats["entries"] > 0, "trace never entered"
        assert stats["blacklisted"] >= 1, \
            f"unstable loop was never blacklisted: {stats}"
        assert plain[1] is None

    def test_blacklist_stops_retrying(self):
        # after the blacklist, the header stops counting entirely: a
        # second run through the same manager compiles nothing new and
        # never re-enters the dead trace
        from repro.bench.trace import ABORT_SOURCE
        module = compile_to_module(ABORT_SOURCE)
        interp = TracingInterpreter(module, max_steps=50_000_000,
                                    threshold=THRESHOLD,
                                    trace_cache=TraceCache())
        first = interp.run_main("AbortStorm")
        stats = interp.trace_stats()
        assert stats["blacklisted"] >= 1
        second = interp.run_main("AbortStorm")
        again = interp.trace_stats()
        # the runtime's stdout accumulates across runs on one
        # interpreter; the second run must append the same line
        assert second.stdout == first.stdout * 2
        assert again["compiled"] == stats["compiled"]
        assert again["blacklisted"] == stats["blacklisted"]
        assert again["entries"] == stats["entries"], \
            "blacklisted header re-entered its trace"


# ======================================================================
# the trace cache: warm processes skip the count/record cycle

WARM_SOURCE = """
class Warm {
    static void main() {
        int s = 0;
        for (int i = 0; i < 400; i = i + 1) { s = s + i * 3; }
        System.out.println(s);
    }
}
"""


class TestTraceCache:
    def test_warm_load_preloads_traces(self):
        wire = encode_module(compile_to_module(WARM_SOURCE))
        cache = TraceCache()

        cold = TracingInterpreter(load_module(wire), threshold=THRESHOLD,
                                  trace_cache=cache)
        first = observe(cold, "Warm")
        cold_stats = cold.trace_stats()
        assert cold_stats["recordings_finished"] > 0
        assert cold_stats["entries"] > 0

        warm = TracingInterpreter(load_module(wire), threshold=THRESHOLD,
                                  trace_cache=cache)
        second = observe(warm, "Warm")
        warm_stats = warm.trace_stats()
        assert second == first
        assert warm_stats["preloaded"] > 0
        assert warm_stats["recordings_finished"] == 0, \
            "warm process re-recorded instead of preloading"
        assert warm_stats["entries"] > 0

    def test_blacklist_persists_as_negative_entry(self):
        from repro.bench.trace import ABORT_SOURCE
        wire = encode_module(compile_to_module(ABORT_SOURCE))
        cache = TraceCache()

        cold = TracingInterpreter(load_module(wire),
                                  max_steps=50_000_000,
                                  threshold=THRESHOLD,
                                  trace_cache=cache)
        first = observe(cold, "AbortStorm")
        assert cold.trace_stats()["blacklisted"] >= 1

        warm = TracingInterpreter(load_module(wire),
                                  max_steps=50_000_000,
                                  threshold=THRESHOLD,
                                  trace_cache=cache)
        second = observe(warm, "AbortStorm")
        warm_stats = warm.trace_stats()
        assert second == first
        # the persisted verdict skips the whole count/record/abort
        # cycle: the warm process never records and never aborts
        assert warm_stats["recordings_finished"] == 0
        assert warm_stats["recording_aborts"] == 0

    def test_persisted_cache_round_trips_blacklist(self, tmp_path):
        wire = encode_module(compile_to_module(WARM_SOURCE))
        cache = TraceCache(cache_dir=str(tmp_path))
        cold = TracingInterpreter(load_module(wire), threshold=THRESHOLD,
                                  trace_cache=cache)
        first = observe(cold, "Warm")
        # a fresh cache object over the same directory: disk round trip
        reopened = TraceCache(cache_dir=str(tmp_path))
        warm = TracingInterpreter(load_module(wire), threshold=THRESHOLD,
                                  trace_cache=reopened)
        assert observe(warm, "Warm") == first
        assert warm.trace_stats()["preloaded"] > 0


# ======================================================================
# the wiring: serve endpoint and CLI flag

LOOP_SOURCE = """
class Hot {
    static void main() {
        int s = 0;
        for (int i = 0; i < 300; i = i + 1) { s = s + i; }
        System.out.println("s=" + s);
    }
}
"""


class TestWiring:
    def test_serve_run_with_trace(self, serve_client):
        entry = serve_client.publish("Hot", source=LOOP_SOURCE)
        plain = serve_client.run(digest=entry["digest"])
        traced = serve_client.run(digest=entry["digest"], trace=4)
        assert "trace" not in plain
        assert traced["stdout"] == plain["stdout"] == "s=44850\n"
        assert traced["steps"] == plain["steps"]
        assert traced["exception"] is None
        assert traced["trace"]["entries"] > 0

    def test_serve_rejects_bad_trace_value(self, serve_client):
        from repro.serve.errors import ServeError
        entry = serve_client.publish("Hot2", source=LOOP_SOURCE)
        with pytest.raises(ServeError) as excinfo:
            serve_client.run(digest=entry["digest"], trace="yes")
        assert excinfo.value.code == "SERVE-BAD-REQUEST"

    def test_cli_run_trace_flag(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "Hot.java"
        path.write_text(LOOP_SOURCE)
        assert main(["run", str(path), "--trace=4"]) == 0
        assert capsys.readouterr().out == "s=44850\n"


# ======================================================================
# the campaign: traced vs untraced over generated programs

@pytest.mark.slow
class TestTracedDifferentialCampaign:
    def test_campaign_is_clean(self):
        """>=200 generated programs through the oracle matrix, whose
        trace lane compares traced vs untraced execution on stdout,
        trap identity, steps, and dynamic check counts."""
        from repro.fuzz.gen import generate_seeded
        from repro.fuzz.oracle import check_program

        failures = []
        for seed in range(200):
            program = generate_seeded(seed)
            result = check_program(program.source, program.main_class)
            if not result.ok:
                failures.append((seed, str(result.divergence)))
        assert not failures, failures[:5]
