"""Unit tests for the MiniJava++ lexer."""

import pytest

from repro.frontend.errors import CompileError
from repro.frontend.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop eof


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestBasics:
    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        tokens = tokenize("class Foo int x while whileFoo _bar $x")
        assert [t.kind for t in tokens[:-1]] == [
            "keyword", "ident", "keyword", "ident", "keyword", "ident",
            "ident", "ident"]

    def test_line_comment(self):
        assert kinds("a // comment to eol\n b") == ["ident", "ident"]

    def test_block_comment(self):
        assert kinds("a /* x\n y */ b") == ["ident", "ident"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError):
            tokenize("/* never closed")

    def test_positions_track_lines(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].pos.line == 1
        assert tokens[1].pos.line == 2
        assert tokens[1].pos.column == 3


class TestNumbers:
    def test_int_literal(self):
        assert values("42") == [42]

    def test_hex_literal(self):
        assert values("0x1F") == [31]

    def test_hex_high_bit_is_negative(self):
        assert values("0xFFFFFFFF") == [-1]
        assert values("0xCAFEBABE")[0] < 0

    def test_long_literal(self):
        tokens = tokenize("42L 0x10L")
        assert tokens[0].kind == "long" and tokens[0].value == 42
        assert tokens[1].kind == "long" and tokens[1].value == 16

    def test_double_literal_forms(self):
        tokens = tokenize("1.5 2e3 1.25e-2 7d")
        assert all(t.kind == "double" for t in tokens[:-1])
        assert tokens[1].value == 2000.0
        assert tokens[2].value == 0.0125

    def test_float_literal(self):
        tokens = tokenize("1.5f 2F")
        assert all(t.kind == "float" for t in tokens[:-1])

    def test_int_too_large_rejected(self):
        with pytest.raises(CompileError):
            tokenize("99999999999")

    def test_max_negative_boundary_allowed(self):
        # 2147483648 is only legal under unary minus; lexing it is fine
        assert values("2147483648") == [2**31]

    def test_member_access_not_float(self):
        assert kinds("a.b") == ["ident", "op", "ident"]


class TestCharsAndStrings:
    def test_char_literal(self):
        assert values("'a'") == [97]

    def test_char_escapes(self):
        assert values(r"'\n' '\t' '\\' '\''") == [10, 9, 92, 39]

    def test_unicode_escape(self):
        assert values(r"'A'") == [65]

    def test_string_literal(self):
        assert values('"hello"') == ["hello"]

    def test_string_escapes(self):
        assert values(r'"a\"b\n"') == ['a"b\n']

    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"abc')

    def test_string_may_not_span_lines(self):
        with pytest.raises(CompileError):
            tokenize('"ab\ncd"')

    def test_unknown_escape_rejected(self):
        with pytest.raises(CompileError):
            tokenize(r'"\q"')


class TestOperators:
    def test_maximal_munch(self):
        text = [t.text for t in tokenize("a >>> b >> c > d >= e")][:-1]
        assert text == ["a", ">>>", "b", ">>", "c", ">", "d", ">=", "e"]

    def test_compound_assignment_operators(self):
        text = [t.text for t in tokenize("x <<= 1; y >>>= 2; z %= 3")][:-1]
        assert "<<=" in text and ">>>=" in text and "%=" in text

    def test_increment_vs_plus(self):
        text = [t.text for t in tokenize("a++ + ++b")][:-1]
        assert text == ["a", "++", "+", "++", "b"]

    def test_unexpected_character(self):
        with pytest.raises(CompileError):
            tokenize("a ` b")
