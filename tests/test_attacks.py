"""E6 attack corpus: hand-crafted malicious programs and streams.

The paper: "even a hand-crafted malicious program cannot undermine type
safety" (Section 3) and "SafeTSA ... cannot be manipulated to give unsafe
programs" (Section 9).
"""

import pytest

from repro.encode.bitio import BitWriter
from repro.encode.common import MAGIC
from repro.encode.deserializer import DecodeError, decode_module
from repro.encode.serializer import encode_module
from repro.pipeline import compile_to_module
from repro.tsa.layout import FunctionLayout, LayoutError
from repro.tsa.verifier import VerifyError, verify_module


def _writer_with_magic() -> BitWriter:
    writer = BitWriter()
    writer.write_bytes(MAGIC)
    return writer


class TestStreamAttacks:
    def test_forged_cyclic_hierarchy_rejected(self):
        writer = _writer_with_magic()
        writer.write_gamma(2)  # two classes, A extends B extends A
        for name in (b"A", b"B"):
            writer.write_flag(False)
            writer.write_gamma(len(name))
            writer.write_bytes(name)
        # supers: table has prims(7) + builtins(N) + A + B
        from repro.typesys.table import TypeTable
        from repro.typesys.world import World
        table_size = len(TypeTable(World())) + 2
        index_a = table_size - 2
        index_b = table_size - 1
        writer.write_bounded(index_b, table_size)  # A extends B
        writer.write_flag(False)
        writer.write_bounded(index_a, table_size)  # B extends A
        writer.write_flag(False)
        with pytest.raises(DecodeError, match="cyclic"):
            decode_module(writer.getvalue())

    def test_class_extending_primitive_rejected(self):
        writer = _writer_with_magic()
        writer.write_gamma(1)
        writer.write_flag(False)
        writer.write_gamma(1)
        writer.write_bytes(b"A")
        from repro.typesys.table import TypeTable
        from repro.typesys.world import World
        table_size = len(TypeTable(World())) + 1
        writer.write_bounded(0, table_size)  # superclass = int
        writer.write_flag(False)
        with pytest.raises(DecodeError, match="class"):
            decode_module(writer.getvalue())

    def test_array_entry_cannot_reference_itself(self):
        writer = _writer_with_magic()
        writer.write_gamma(1)
        writer.write_flag(True)  # array entry
        # element index alphabet excludes the entry itself, so the worst
        # a stream can do is reference an earlier entry; self-reference
        # is unrepresentable.  Element index 6 = void -> rejected.
        from repro.typesys.table import TypeTable
        from repro.typesys.world import World
        writer.write_bounded(6, len(TypeTable(World())))
        with pytest.raises(DecodeError, match="void"):
            decode_module(writer.getvalue())

    def test_every_prefix_rejected(self):
        module = compile_to_module(
            "class T { static int f(int a, int b) { return a / b; } }")
        wire = encode_module(module)
        for cut in range(len(wire)):
            with pytest.raises(DecodeError):
                decode_module(wire[:cut])

    def test_mutations_cannot_produce_invalid_modules(self):
        module = compile_to_module(
            "class T { int x; int get() { return x; }"
            "static int f(T t) { return t.get(); } }")
        wire = encode_module(module)
        survived = 0
        for position in range(len(wire) * 8):
            mutated = bytearray(wire)
            mutated[position // 8] ^= 1 << (position % 8)
            try:
                decoded = decode_module(bytes(mutated))
            except DecodeError:
                continue
            verify_module(decoded)  # must never raise
            survived += 1
        # some mutations land in names/constants and stay well-formed
        assert survived >= 0


class TestSemanticAttacks:
    """Attacks expressed against the in-memory form (a malicious
    producer library) are caught by layout/verification."""

    def _hijack(self, mutate):
        module = compile_to_module(
            "class Box { int v; "
            "static int take(Box a, Box b) {"
            "  if (a == null) return b.v; return a.v; } }")
        function = module.function_named("Box", "take")
        mutate(module, function)
        verify_module(module)

    def test_swapping_phi_operands_is_detected_or_harmless(self):
        # swapping operands of a phi changes which value flows, but both
        # operands are on the same plane -- semantics change, safety holds
        module = compile_to_module(
            "class T { static int f(boolean c) {"
            "int x = 1; if (c) x = 2; else x = 3; return x; } }")
        function = module.function_named("T", "f")
        for block in function.blocks:
            for phi in block.phis:
                phi.operands.reverse()
        verify_module(module)  # still type-safe (only wrong-valued)

    def test_retargeting_operand_across_branches_rejected(self):
        module = compile_to_module(
            "class T { static int f(boolean c) {"
            "int r; if (c) { r = 10 / 2; } else { r = 20 / 4; }"
            "return r; } }")
        function = module.function_named("T", "f")
        # find two sibling branch blocks and cross-wire an operand
        divs = [i for b in function.blocks for i in b.instrs
                if i.opcode == "xprimitive"]
        assert len(divs) == 2
        victim, donor = divs
        victim.set_operand(0, donor)
        with pytest.raises(VerifyError):
            verify_module(module)

    def test_layout_cannot_express_cross_branch_reference(self):
        module = compile_to_module(
            "class T { static int f(boolean c) {"
            "int r; if (c) { r = 10 / 2; } else { r = 20 / 4; }"
            "return r; } }")
        function = module.function_named("T", "f")
        divs = [i for b in function.blocks for i in b.instrs
                if i.opcode == "xprimitive"]
        layout = FunctionLayout(function)
        with pytest.raises(LayoutError):
            layout.ref_of(divs[0].block, divs[1])

    def test_widening_a_field_write_rejected(self):
        # store a supertype value into a subtype-typed field
        module = compile_to_module(
            "class Node { Node next; "
            "void link(Node other) { next = other; } }")
        function = module.function_named("Node", "link")
        target = None
        for block in function.blocks:
            for instr in block.instrs:
                if instr.opcode == "setfield":
                    target = instr
        assert target is not None
        from repro.ssa.ir import Const
        from repro.typesys.types import ClassType
        evil = Const(ClassType("java.lang.Object"), None)
        function.entry.append(evil)
        target.set_operand(1, evil)
        with pytest.raises(VerifyError):
            verify_module(module)

    def test_calling_private_table_slot_out_of_range(self):
        # a method index beyond the method table cannot decode
        module = compile_to_module(
            "class T { int f() { return 1; } "
            "static int g(T t) { return t.f(); } }")
        wire = encode_module(module)
        decoded = decode_module(wire)
        verify_module(decoded)  # sanity: the honest stream is fine
