"""Producer-side optimisation pipeline (paper Section 8).

Default order: constant propagation, safe-phi promotion, CSE (with check
elimination over the ``Mem``-threaded memory dependence), dead-code
elimination, then exception-edge cleanup.  Each pass -- ``cleanup``
included -- can be toggled for the ablation study (experiment E4), so an
explicit ``passes=()`` really is a no-op baseline.

Every pass is required to leave the function in a verifiable state:
check elimination (CSE) and constant folding can delete the trapping
instruction that justified a subblock's exception edge, so those steps
repair stale edges themselves before returning.  The separate
``cleanup`` pass additionally excises handlers whose dispatch block
became unreachable.

``check_after_each_pass`` turns that contract into an enforced
invariant: the function is verified before the first pass and re-verified
after every pass, and the first violation is attributed -- as a
:class:`PassCheckError` carrying the collected diagnostics -- to the
pass that introduced it.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.opt.cleanup import remove_dead_handlers, \
    remove_stale_exception_edges
from repro.opt.constprop import run_constprop
from repro.opt.cse import run_cse
from repro.opt.dce import run_dce
from repro.opt.safephi import run_safe_phi_propagation

ALL_PASSES = ("constprop", "safephi", "cse", "dce", "cleanup")


class PassCheckError(Exception):
    """``check_after_each_pass`` caught a pass breaking the invariants.

    ``pass_name`` is the blamed pass (``"input"`` when the function was
    already ill-formed before any pass ran); ``diagnostics`` holds every
    error-severity finding the verifier collected afterwards.
    """

    def __init__(self, pass_name: str, function_name: str,
                 diagnostics: list):
        self.pass_name = pass_name
        self.function = function_name
        self.diagnostics = diagnostics
        self.diagnostic = Diagnostic(
            "STSA-PASS-001",
            f"pass '{pass_name}' left {function_name} ill-formed: "
            f"{diagnostics[0] if diagnostics else 'unknown violation'}",
            function=function_name)
        super().__init__(str(self.diagnostic))


def _step_constprop(function) -> dict:
    folded = run_constprop(function)
    # folding a trapping op (e.g. div by a non-zero constant) removes an
    # exception point; repair the edges so the IR stays verifiable
    return {"constprop_folded": folded,
            "stale_exc_edges": remove_stale_exception_edges(function)}


def _step_safephi(function) -> dict:
    return {"safephi_promoted": run_safe_phi_propagation(function)}


def _step_cse(function, partition_memory: bool = False) -> dict:
    cse_stats = run_cse(function, partition_memory=partition_memory)
    stats = {f"cse_{k}": v for k, v in cse_stats.as_dict().items()}
    # check elimination removes trapping instructions; see above
    stats["stale_exc_edges"] = remove_stale_exception_edges(function)
    return stats


def _step_cse_fields(function) -> dict:
    return _step_cse(function, partition_memory=True)


def _step_dce(function) -> dict:
    return {"dce_removed": run_dce(function)}


def _step_cleanup(function) -> dict:
    return {"stale_exc_edges": remove_stale_exception_edges(function),
            "dead_handlers": remove_dead_handlers(function)}


#: pass name -> step callable; monkeypatchable so tests can inject a
#: deliberately invariant-breaking pass and assert blame attribution
PASS_FUNCTIONS = {
    "constprop": _step_constprop,
    "safephi": _step_safephi,
    "cse": _step_cse,
    "cse_fields": _step_cse_fields,
    "dce": _step_dce,
    "cleanup": _step_cleanup,
}


def _merge_stats(stats: dict, update: dict) -> None:
    for key, value in update.items():
        if key in stats and isinstance(value, int) \
                and isinstance(stats[key], int):
            stats[key] += value
        else:
            stats[key] = value


def _check_invariants(module, function, pass_name: str) -> None:
    from repro.tsa.verifier import collect_diagnostics
    errors = [d for d in collect_diagnostics(module, function)
              if d.severity == Severity.ERROR]
    if errors:
        raise PassCheckError(pass_name, function.name, errors)


def optimize_function(function, passes: Optional[Iterable[str]] = None, *,
                      module=None,
                      check_after_each_pass: bool = False) -> dict:
    """Run the selected passes on one function; returns statistics.

    Passes always run in canonical :data:`ALL_PASSES` order regardless of
    the order of ``passes``; ``cse_fields`` selects the
    partitioned-memory variant of ``cse``.  With
    ``check_after_each_pass=True`` (requires ``module``) the function is
    verified before the first pass and after every pass, raising
    :class:`PassCheckError` blaming the pass that broke it.
    """
    selected = set(passes) if passes is not None else set(ALL_PASSES)
    if check_after_each_pass and module is None:
        raise ValueError("check_after_each_pass requires module=")
    stats: dict = {"function": function.name}
    if check_after_each_pass:
        _check_invariants(module, function, "input")
    for name in ALL_PASSES:
        if name == "cse":
            if "cse_fields" in selected:
                step = PASS_FUNCTIONS["cse_fields"]
            elif "cse" in selected:
                step = PASS_FUNCTIONS["cse"]
            else:
                continue
        elif name in selected:
            step = PASS_FUNCTIONS[name]
        else:
            continue
        _merge_stats(stats, step(function))
        if check_after_each_pass:
            _check_invariants(module, function, name)
    return stats


def optimize_module(module, passes: Optional[Iterable[str]] = None,
                    check_after_each_pass: bool = False) -> list[dict]:
    """Optimise every function of a module; returns per-function stats."""
    return [optimize_function(function, passes, module=module,
                              check_after_each_pass=check_after_each_pass)
            for function in module.functions.values()]
